//! Differential fleet for filter pushdown (late materialization).
//!
//! Pushing sargable conjuncts into the columnar scan is a pure
//! *performance* decision — it may never change an answer. This suite
//! locks that in:
//!
//! * a property test running random documents × range-heavy filters ×
//!   aggregates through both engines with pushdown on and off, across every
//!   layout (VB/APAX/AMAX) and a 4-way sharded target, against the
//!   materialised batch oracle — over *update-heavy* datasets, because the
//!   pushdown contract says only the reconciliation winner may be
//!   filter-evaluated (a shadowed old version that matches a filter the
//!   live version fails must stay invisible, and vice versa);
//! * deterministic shadowing regressions for exactly those resurrection
//!   hazards, including deletes (anti-matter must pass the pushed filter);
//! * I/O-level proof of the point of it all: a 0.1%-selectivity AMAX scan
//!   assembles ≈ the matching records (not the dataset), skips
//!   provably-empty leaves without reading their non-filter-column pages,
//!   and reports both effects exactly in `explain_analyze`;
//! * the `explain` rendering of the pushed/residual split.

mod support;

use proptest::prelude::*;

use docmodel::{doc, Value};
use lsm::{DatasetConfig, LsmDataset};
use query::{
    oracle, AccessPathChoice, ExecMode, Expr, PlannerOptions, Query, QueryEngine,
};
use storage::LayoutKind;

use support::{arb_aggregate, arb_doc_body, build_doc, range_heavy_expr};

/// An engine with pushdown forced on or off; everything else default.
fn engine(mode: ExecMode, pushdown: bool) -> QueryEngine {
    QueryEngine::with_options(
        mode,
        PlannerOptions {
            filter_pushdown: pushdown,
            ..Default::default()
        },
    )
}

fn layout_dataset(name: &str, layout: LayoutKind) -> LsmDataset {
    let mut config = DatasetConfig::new(name, layout)
        .with_memtable_budget(usize::MAX)
        .with_page_size(8 * 1024);
    config.amax.record_limit = 64;
    LsmDataset::new(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Pushdown on == pushdown off == batch oracle, on datasets where many
    // records exist in several versions spread across components (the
    // update pass rewrites half the ids with different bodies, the delete
    // pass drops a few) — the reconciliation × pushdown interaction under
    // maximum pressure.
    #[test]
    fn pushdown_never_changes_answers(
        bodies in prop::collection::vec(arb_doc_body(), 24..56),
        update_bodies in prop::collection::vec(arb_doc_body(), 8..16),
        deletes in prop::collection::vec(0usize..24, 0..6),
        filter in range_heavy_expr(),
        aggs in prop::collection::vec(arb_aggregate(), 1..3),
        group in prop_oneof![Just(false), Just(true)],
    ) {
        let mut query = Query::select(aggs).with_filter(filter);
        if group {
            query = query.group_by("grp");
        }

        let mut single_answer: Option<Vec<query::QueryRow>> = None;
        for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
            let ds = layout_dataset("pushdown-prop", layout);
            for (i, body) in bodies.iter().enumerate() {
                ds.insert(build_doc(i as i64, body)).unwrap();
            }
            ds.flush().unwrap();
            // Update-heavy: shadow half the ids with fresh bodies in a
            // second component, then delete a few in a third.
            for (i, body) in update_bodies.iter().enumerate() {
                ds.insert(build_doc((i * 2) as i64, body)).unwrap();
            }
            ds.flush().unwrap();
            for &id in &deletes {
                ds.delete(Value::Int(id as i64)).unwrap();
            }
            ds.flush().unwrap();

            let reference = oracle::execute_batch(&ds.snapshot(), &query).unwrap();
            for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                for pushdown in [true, false] {
                    let rows = engine(mode, pushdown).execute(&ds, &query).unwrap();
                    prop_assert_eq!(
                        &rows, &reference,
                        "{:?}/{:?}/pushdown={} disagrees with the oracle: {:?}",
                        layout, mode, pushdown, query
                    );
                }
            }
            // All layouts must agree with each other too.
            match &single_answer {
                Some(previous) => prop_assert_eq!(previous, &reference, "{:?}", layout),
                None => single_answer = Some(reference),
            }
        }

        // Sharded(4): the per-shard pushed scans merge to the same rows.
        let shards: Vec<LsmDataset> = (0..4)
            .map(|i| layout_dataset(&format!("pushdown-shard-{i}"), LayoutKind::Amax))
            .collect();
        for (i, body) in bodies.iter().enumerate() {
            shards[i % 4].insert(build_doc(i as i64, body)).unwrap();
        }
        for (i, body) in update_bodies.iter().enumerate() {
            let id = (i * 2) as i64;
            shards[(id as usize) % 4].insert(build_doc(id, body)).unwrap();
        }
        for &id in &deletes {
            shards[id % 4].delete(Value::Int(id as i64)).unwrap();
        }
        for shard in &shards {
            shard.flush().unwrap();
        }
        let refs: Vec<&LsmDataset> = shards.iter().collect();
        let expected = single_answer.expect("three layouts ran");
        for pushdown in [true, false] {
            let rows = engine(ExecMode::Compiled, pushdown)
                .execute(&refs[..], &query)
                .unwrap();
            prop_assert_eq!(
                &rows, &expected,
                "sharded(4)/pushdown={} disagrees: {:?}", pushdown, query
            );
        }
    }
}

/// The resurrection hazards, pinned deterministically: the pushed filter is
/// evaluated on the reconciliation *winner only*, so a shadowed old version
/// can neither leak through a filter its live version fails, nor suppress a
/// live version that matches.
#[test]
fn shadowed_versions_are_never_filter_evaluated() {
    for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
        let ds = layout_dataset("pushdown-shadow", layout);
        // Old versions in component 1.
        ds.insert(doc!({"id": 1, "score": 10})).unwrap(); // old matches score<=20
        ds.insert(doc!({"id": 2, "score": 90})).unwrap(); // old fails score<=20
        ds.insert(doc!({"id": 3, "score": 15})).unwrap(); // will be deleted
        ds.flush().unwrap();
        // Live versions / tombstone in component 2.
        ds.insert(doc!({"id": 1, "score": 95})).unwrap(); // live fails
        ds.insert(doc!({"id": 2, "score": 5})).unwrap(); // live matches
        ds.delete(Value::Int(3)).unwrap();
        ds.flush().unwrap();

        let q = Query::select_paths(["score"])
            .with_filter(Expr::le("score", 20))
            .order_by_key();
        for pushdown in [true, false] {
            let rows = engine(ExecMode::Compiled, pushdown).execute(&ds, &q).unwrap();
            // Only id 2's live version matches; id 1's old match is
            // shadowed and id 3 is deleted outright.
            assert_eq!(rows.len(), 1, "{layout:?}/pushdown={pushdown}: {rows:?}");
            assert_eq!(rows[0].group, Some(Value::Int(2)), "{layout:?}/pushdown={pushdown}");
        }
    }
}

/// A multi-leaf, single-component AMAX dataset: a narrow filter column
/// (`ts`, strictly increasing so every leaf's zone map is tight) plus a fat
/// payload column the filter never touches.
fn wide_amax(rows: i64) -> LsmDataset {
    let ds = layout_dataset("pushdown-io", LayoutKind::Amax);
    for i in 0..rows {
        ds.insert(doc!({
            "id": i,
            "ts": i,
            "payload": (format!("fat payload column for record {i}: {}", "x".repeat(120)))
        }))
        .unwrap();
    }
    ds.flush().unwrap();
    assert_eq!(ds.component_count(), 1);
    ds
}

/// The late-materialization I/O contract at 0.1% selectivity: assembly
/// tracks *matches*, not dataset size; leaves whose zone maps prove no
/// match are skipped without reading their pages; `explain_analyze`
/// reports both counters exactly.
#[test]
fn low_selectivity_scan_assembles_matches_and_skips_leaf_pages() {
    let ds = wide_amax(1000);
    // 64-record leaves → 16 leaves; `ts == 500` lives in exactly one.
    let q = Query::count_star().with_filter(Expr::eq("ts", 500));

    ds.cache().clear();
    ds.cache().store().reset_stats();
    let report = engine(ExecMode::Compiled, true).explain_analyze(&ds, &q).unwrap();
    let pushed_stats = ds.io_stats();
    assert_eq!(report.rows[0].agg(), &Value::Int(1));

    // Assembly ≈ matches: one record assembled out of 1000.
    assert_eq!(pushed_stats.records_assembled, 1, "{}", report.describe());
    // Every other leaf was either skipped whole (zone maps, 15 of 16) or
    // had its records rejected from the filter column alone.
    assert_eq!(report.leaves_skipped(), 15, "{}", report.describe());
    assert_eq!(pushed_stats.leaves_skipped, 15);
    assert_eq!(
        report.records_filtered_pre_assembly(),
        pushed_stats.records_filtered_pre_assembly,
        "analyze must report the exact counter"
    );
    assert_eq!(
        report.records_filtered_pre_assembly() + 1,
        64,
        "the one live leaf evaluates its 64 records and assembles 1"
    );
    // The annotated rendering carries the counters.
    let text = report.describe();
    assert!(text.contains("filtered pre-assembly 63"), "{text}");
    assert!(text.contains("leaves skipped 15"), "{text}");

    // The oracle run: same rows, strictly more pages (it reads the fat
    // payload column of every leaf).
    ds.cache().clear();
    ds.cache().store().reset_stats();
    let unpushed = engine(ExecMode::Compiled, false).explain_analyze(&ds, &q).unwrap();
    let unpushed_stats = ds.io_stats();
    assert_eq!(unpushed.rows, report.rows);
    assert_eq!(unpushed_stats.records_assembled, 1000);
    assert_eq!(unpushed.leaves_skipped(), 0);
    assert!(
        report.pages_read() < unpushed.pages_read(),
        "pushdown must read strictly fewer pages ({} vs {})",
        report.pages_read(),
        unpushed.pages_read()
    );
}

/// Skipped leaves read **zero** pages of any kind — filter columns
/// included: a filter disjoint from every leaf's zone map scans nothing.
#[test]
fn fully_skipped_scan_reads_zero_pages() {
    let ds = wide_amax(1000);
    // Zone-map pruning at the component level is what normally catches a
    // fully-disjoint filter; force the scan to rely on *leaf*-level skips.
    let eng = QueryEngine::with_options(
        ExecMode::Compiled,
        PlannerOptions {
            zone_map_pruning: false,
            access_path: AccessPathChoice::ForceScan,
            ..Default::default()
        },
    );
    let q = Query::count_star().with_filter(Expr::ge("ts", 5_000));
    ds.cache().clear();
    ds.cache().store().reset_stats();
    let report = eng.explain_analyze(&ds, &q).unwrap();
    assert_eq!(report.rows[0].agg(), &Value::Int(0));
    assert_eq!(report.leaves_skipped(), 16, "{}", report.describe());
    assert_eq!(
        report.pages_read(),
        0,
        "skipped leaves must not read filter-column pages either: {}",
        report.describe()
    );
    assert_eq!(ds.io_stats().records_assembled, 0);
}

/// `explain` renders the pushed/residual split; residual-only and
/// fully-pushed filters are labelled as such.
#[test]
fn explain_shows_the_pushed_residual_split() {
    let ds = wide_amax(100);
    let eng = QueryEngine::new(ExecMode::Compiled);

    // Sargable + non-sargable conjunct: both halves rendered.
    let mixed = Query::count_star()
        .with_filter(Expr::and([Expr::ge("ts", 10), Expr::exists("payload")]));
    let plan = eng.explain(&ds, &mixed).unwrap();
    assert!(plan.contains("pushed     : ts >= 10"), "{plan}");
    assert!(plan.contains("residual   : EXISTS(payload)"), "{plan}");

    // Fully sargable: no residual left.
    let sargable = Query::count_star().with_filter(Expr::between("ts", 10, 20));
    let plan = eng.explain(&ds, &sargable).unwrap();
    assert!(plan.contains("pushed     :"), "{plan}");
    assert!(plan.contains("residual   : - (fully pushed)"), "{plan}");

    // Nothing sargable (multi-valued path): everything stays residual.
    let residual_only = Query::count_star().with_filter(Expr::contains("payload[*]", "x"));
    let plan = eng.explain(&ds, &residual_only).unwrap();
    assert!(plan.contains("pushed     : - (nothing sargable)"), "{plan}");

    // Pushdown disabled: the split is not rendered at all.
    let off = QueryEngine::with_options(
        ExecMode::Compiled,
        PlannerOptions {
            filter_pushdown: false,
            ..Default::default()
        },
    );
    let plan = off.explain(&ds, &sargable).unwrap();
    assert!(plan.contains("pushed     : - (nothing sargable)"), "{plan}");
}
