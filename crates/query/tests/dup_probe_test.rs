use docmodel::{doc, Path};
use lsm::{DatasetConfig, LsmDataset};
use query::{ExecMode, Expr, PlannerOptions, Query, QueryEngine};
use storage::LayoutKind;

#[test]
fn multi_valued_probe_does_not_double_count() {
    let ds = LsmDataset::new(
        DatasetConfig::new("multi", LayoutKind::Amax)
            .with_page_size(8 * 1024)
            .with_secondary_index(Path::parse("ts[*]")),
    );
    // Both indexed values of this one record fall inside the probe range.
    ds.insert(doc!({"id": 1, "ts": [150, 160]})).unwrap();
    ds.flush().unwrap();
    let q = Query::count_star().with_filter(Expr::ge("ts[*]", 120));
    let engine = QueryEngine::new(ExecMode::Compiled);
    println!("{}", engine.explain(&ds, &q).unwrap());
    let via_index = engine.execute(&ds, &q).unwrap();
    let scan_engine = QueryEngine::with_options(
        ExecMode::Compiled,
        PlannerOptions { use_secondary_index: false, ..Default::default() },
    );
    let via_scan = scan_engine.execute(&ds, &q).unwrap();
    assert_eq!(via_index, via_scan, "index probe disagrees with scan");
}
