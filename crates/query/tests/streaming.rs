//! Differential fleet for the streaming execution refactor.
//!
//! The refactor replaced "materialise the scanned batch, then process" with
//! a pull-based pipeline over the snapshot's k-way merge-reconcile cursor.
//! That is a pure *execution-model* change — it may never change an answer.
//! This suite locks that in:
//!
//! * a property test running random documents × filters × select lists
//!   (aggregate **and** raw-column projection forms) × LIMIT values through
//!   both engines, sharded and unsharded, with zone-map pruning on and off,
//!   against the materialised batch oracle ([`query::oracle`]) — the seed's
//!   execution model kept alive verbatim for exactly this comparison;
//! * I/O-level assertions that `ORDER BY key LIMIT k` terminates early:
//!   the limited scan reads **strictly fewer pages** than the full scan,
//!   across layouts and engines, and the streaming scan's peak resident
//!   batch stays at one leaf per component while the oracle materialises
//!   everything.

mod support;

use proptest::prelude::*;

use docmodel::{doc, Value};
use lsm::{DatasetConfig, LsmDataset};
use query::{
    oracle, ExecMode, Expr, PlannerOptions, Query, QueryEngine, QueryRow,
};
use storage::LayoutKind;

use support::{arb_aggregate, arb_doc_body, arb_expr, build_doc, dataset};

fn engine(mode: ExecMode, pruning: bool) -> QueryEngine {
    QueryEngine::with_options(
        mode,
        PlannerOptions { zone_map_pruning: pruning, ..Default::default() },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    // Streaming execution == the materialised batch oracle, across engines ×
    // shards × pruning × LIMIT × both select forms. Documents arrive in two
    // flushes with interleaved updates, so the merge cursor reconciles
    // shadowed versions and anti-matter across real component overlap.
    #[test]
    fn streaming_matches_the_batch_oracle(
        bodies in prop::collection::vec(arb_doc_body(), 20..60),
        update_bodies in prop::collection::vec(arb_doc_body(), 0..10),
        deletes in prop::collection::vec(0usize..20, 0..4),
        filter in arb_expr(),
        aggs in prop::collection::vec(arb_aggregate(), 1..4),
        select_form in prop_oneof![Just(false), Just(true)],
        group in prop_oneof![Just(false), Just(true)],
        limit in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let reference = dataset("stream-reference", false);
        let shards: Vec<LsmDataset> =
            (0..4).map(|i| dataset(&format!("stream-shard-{i}"), false)).collect();
        let insert = |doc: Value, i: usize| {
            reference.insert(doc.clone()).unwrap();
            shards[i % 4].insert(doc).unwrap();
        };
        let half = bodies.len() / 2;
        for (i, body) in bodies[..half].iter().enumerate() {
            insert(build_doc(i as i64, body), i);
        }
        reference.flush().unwrap();
        for shard in &shards {
            shard.flush().unwrap();
        }
        // Updates + deletes overlap the first component's key range.
        for (i, body) in update_bodies.iter().enumerate() {
            let key = (i % half.max(1)) as i64;
            insert(build_doc(key, body), key as usize);
        }
        for &key in &deletes {
            let key = (key % half.max(1)) as i64;
            reference.delete(Value::Int(key)).unwrap();
            shards[(key as usize) % 4].delete(Value::Int(key)).unwrap();
        }
        for (i, body) in bodies[half..].iter().enumerate() {
            insert(build_doc((half + i) as i64, body), half + i);
        }
        reference.flush().unwrap();
        for shard in &shards {
            shard.flush().unwrap();
        }

        let mut query = if select_form {
            Query::select_paths(["score", "grp", "tags"])
                .with_filter(filter)
                .order_by_key()
        } else {
            let mut q = Query::select(aggs).with_filter(filter);
            if group {
                q = q.group_by("grp");
            }
            q
        };
        if let Some(k) = limit {
            query = if select_form { query.with_limit(k) } else { query.top_k(k) };
        }

        // The oracle: the seed's materialise-then-process model.
        let expected = oracle::execute_batch(&reference.snapshot(), &query).unwrap();

        let refs: Vec<&LsmDataset> = shards.iter().collect();
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            for pruning in [true, false] {
                let engine = engine(mode, pruning);
                let single = engine.execute(&reference, &query).unwrap();
                prop_assert_eq!(
                    &expected, &single,
                    "streaming vs batch oracle ({:?}, pruning={}) on {:?}",
                    mode, pruning, query
                );
                let sharded = engine.execute(&refs[..], &query).unwrap();
                prop_assert_eq!(
                    &expected, &sharded,
                    "sharded(4) streaming vs batch oracle ({:?}, pruning={}) on {:?}",
                    mode, pruning, query
                );
            }
        }
    }
}

/// Build a multi-leaf, multi-component AMAX dataset so `LIMIT` has a tail
/// to skip.
fn leafy_dataset(layout: LayoutKind) -> LsmDataset {
    let mut config = DatasetConfig::new("limit-io", layout)
        .with_memtable_budget(usize::MAX)
        .with_page_size(4 * 1024);
    config.amax.record_limit = 64;
    let ds = LsmDataset::new(config);
    for i in 0..600i64 {
        ds.insert(doc!({
            "id": i,
            "score": (i % 100),
            "grp": (format!("g{}", i % 7)),
            "text": (format!("padding text for record {i} to fill leaves with bytes"))
        }))
        .unwrap();
        if i == 299 {
            ds.flush().unwrap();
        }
    }
    ds.flush().unwrap();
    ds
}

/// `ORDER BY key LIMIT k` over the key-ordered merge stream terminates
/// after the k-th match: strictly fewer pages than the full scan, same
/// prefix of rows — across layouts and both engines.
#[test]
fn limited_key_ordered_scans_read_strictly_fewer_pages() {
    for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
        let ds = leafy_dataset(layout);
        let pages_for = |engine: &QueryEngine, q: &Query| -> (Vec<QueryRow>, u64) {
            ds.cache().clear();
            ds.cache().store().reset_stats();
            let rows = engine.execute(&ds, q).unwrap();
            (rows, ds.io_stats().pages_read)
        };
        let full = Query::select_paths(["score"])
            .with_filter(Expr::ge("score", 10))
            .order_by_key();
        let limited = full.clone().with_limit(5);
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let engine = QueryEngine::new(mode);
            let (all_rows, full_pages) = pages_for(&engine, &full);
            let (few_rows, few_pages) = pages_for(&engine, &limited);
            assert_eq!(
                &all_rows[..5],
                &few_rows[..],
                "{layout:?}/{mode:?}: LIMIT must return the first 5 matches"
            );
            assert!(
                few_pages < full_pages,
                "{layout:?}/{mode:?}: LIMIT 5 read {few_pages} pages, full scan {full_pages}"
            );
        }
    }
}

/// The k-th match must be the *last* entry ever pulled: a limit that lands
/// exactly on an AMAX leaf boundary (64-record leaves) reads the same
/// pages as one row fewer — pulling once more would decode the next leaf.
/// `LIMIT 0` answers without reading a single page.
#[test]
fn limit_never_pulls_past_the_kth_match() {
    let ds = leafy_dataset(LayoutKind::Amax);
    let pages_for = |q: &Query| {
        ds.cache().clear();
        ds.cache().store().reset_stats();
        let rows = QueryEngine::new(ExecMode::Compiled).execute(&ds, q).unwrap();
        (rows, ds.io_stats().pages_read)
    };
    let select = Query::select_paths(["score"]).order_by_key();
    let (rows_63, pages_63) = pages_for(&select.clone().with_limit(63));
    let (rows_64, pages_64) = pages_for(&select.clone().with_limit(64));
    assert_eq!(rows_63.len(), 63);
    assert_eq!(rows_64.len(), 64);
    assert_eq!(
        pages_63, pages_64,
        "the 64th row lives in the same leaf; reading more pages means the \
         pipeline pulled past the k-th match"
    );
    let (rows_0, pages_0) = pages_for(&select.clone().with_limit(0));
    assert!(rows_0.is_empty());
    assert_eq!(pages_0, 0, "LIMIT 0 must not touch storage");
}

/// The streaming scan's peak resident batch is bounded by one decoded leaf
/// per component — far below the materialised batch of the oracle's model.
#[test]
fn streaming_scan_memory_is_bounded_by_leaves_not_the_dataset() {
    let ds = leafy_dataset(LayoutKind::Amax);
    let snapshot = ds.snapshot();
    let mut cursor = snapshot.cursor(None).unwrap();
    let mut total = 0usize;
    for entry in cursor.by_ref() {
        entry.unwrap();
        total += 1;
    }
    assert_eq!(total, 600);
    let peak = cursor.peak_buffered();
    assert!(peak > 0, "the cursor decodes leaves");
    // Two components × 64-record AMAX leaves: the high-water mark stays at
    // about one leaf per component, nowhere near the 600-record dataset.
    assert!(
        peak <= 2 * 64,
        "peak resident batch {peak} exceeds one leaf per component"
    );
}

/// COUNT(*) streams the key-only cursor: the answer and the page count are
/// unchanged from the materialised implementation (Page 0 only for AMAX).
#[test]
fn streaming_count_still_reads_keys_only() {
    let ds = leafy_dataset(LayoutKind::Amax);
    ds.cache().clear();
    ds.cache().store().reset_stats();
    let count = QueryEngine::new(ExecMode::Compiled)
        .execute(&ds, &Query::count_star())
        .unwrap();
    assert_eq!(count[0].agg(), &Value::Int(600));
    let key_pages = ds.io_stats().pages_read;

    ds.cache().clear();
    ds.cache().store().reset_stats();
    let full: Vec<Value> = ds.scan(None).unwrap();
    assert_eq!(full.len(), 600);
    let full_pages = ds.io_stats().pages_read;
    assert!(
        key_pages < full_pages,
        "COUNT(*) ({key_pages} pages) must read fewer pages than a full scan ({full_pages})"
    );
}
