//! Flattening the schema tree into per-column metadata.
//!
//! Every atomic leaf of the schema is one column of the extended Dremel
//! format. The shredder, the page writers (APAX minipages / AMAX megapages)
//! and the readers need, per column:
//!
//! * a stable identifier ([`ColumnId`] — the leaf's `NodeId`),
//! * the value type (which picks the encoder/decoder),
//! * the column's *maximum definition level*,
//! * the definition levels of its enclosing array nodes (which determine the
//!   delimiter values, §3.2.1), and
//! * whether it is the primary-key column (whose definition level encodes
//!   anti-matter rather than nullability, §3.2.3).

use crate::node::{NodeId, Schema, SchemaNode};
use crate::types::AtomicType;
use docmodel::Path;

/// Identifier of a column: the `NodeId` of its atomic leaf. Stable across
/// schema evolution.
pub type ColumnId = NodeId;

/// Metadata of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Stable identifier (the leaf node id).
    pub id: ColumnId,
    /// Path from the record root to the leaf, including `[*]` and union
    /// steps, e.g. `games[*].consoles[*]` or `name<string>`.
    pub path: Path,
    /// Value type.
    pub ty: AtomicType,
    /// Maximum definition level: the leaf's level (number of field and
    /// array-item steps from the root). For the primary-key column this is 1
    /// and the level means record (1) vs anti-matter (0).
    pub max_def: u16,
    /// Definition levels of the enclosing array nodes, outermost first. The
    /// `k`-th entry is the level of the array whose end is signalled by
    /// delimiter value `k`; `max_delimiter = array_levels.len() - 1`.
    pub array_levels: Vec<u16>,
    /// `true` for the primary-key column.
    pub is_key: bool,
}

impl ColumnSpec {
    /// Maximum delimiter value, or `None` for non-repeated columns.
    pub fn max_delimiter(&self) -> Option<u16> {
        if self.array_levels.is_empty() {
            None
        } else {
            Some(self.array_levels.len() as u16 - 1)
        }
    }

    /// `true` if the column lies under at least one array.
    pub fn is_repeated(&self) -> bool {
        !self.array_levels.is_empty()
    }

    /// Number of bits needed for one definition-level entry of this column.
    pub fn def_bit_width(&self) -> u32 {
        encoding_bit_width(self.max_def)
    }
}

fn encoding_bit_width(max: u16) -> u32 {
    (16 - u16::leading_zeros(max.max(1))).max(1)
}

/// Extract the columns of `schema` in a deterministic order: the primary-key
/// column first (if declared and observed), then the remaining leaves in
/// depth-first, first-observation order.
pub fn columns_of(schema: &Schema) -> Vec<ColumnSpec> {
    let mut out = Vec::with_capacity(schema.column_count());
    let key_field = schema.key_field().map(str::to_string);
    walk(
        schema,
        schema.root(),
        &Path::root(),
        0,
        &mut Vec::new(),
        key_field.as_deref(),
        &mut out,
    );
    // Stable sort: key column first, everything else keeps DFS order.
    out.sort_by_key(|c| !c.is_key as u8);
    out
}

/// Find the primary-key column, if the schema has observed it.
pub fn key_column(schema: &Schema) -> Option<ColumnSpec> {
    columns_of(schema).into_iter().find(|c| c.is_key)
}

#[allow(clippy::too_many_arguments)]
fn walk(
    schema: &Schema,
    id: NodeId,
    path: &Path,
    level: u16,
    array_levels: &mut Vec<u16>,
    key_field: Option<&str>,
    out: &mut Vec<ColumnSpec>,
) {
    match schema.node(id) {
        SchemaNode::Object { fields } => {
            for (name, child) in fields {
                let child_path = path.child(name);
                let is_key_field =
                    level == 0 && key_field.is_some_and(|k| k == name.as_str());
                walk_child(
                    schema,
                    *child,
                    &child_path,
                    level + 1,
                    array_levels,
                    key_field,
                    is_key_field,
                    out,
                );
            }
        }
        SchemaNode::Array { item } => {
            if let Some(item) = item {
                array_levels.push(level);
                let child_path = path.elements();
                walk_child(
                    schema,
                    *item,
                    &child_path,
                    level + 1,
                    array_levels,
                    key_field,
                    false,
                    out,
                );
                array_levels.pop();
            }
        }
        SchemaNode::Union { branches } => {
            for (kind, child) in branches {
                let child_path = path.union_branch(kind.name());
                // Union steps do not change the level or the array stack.
                walk_child(
                    schema, *child, &child_path, level, array_levels, key_field, false, out,
                );
            }
        }
        SchemaNode::Atomic { ty } => {
            out.push(ColumnSpec {
                id,
                path: path.clone(),
                ty: *ty,
                max_def: level,
                array_levels: array_levels.clone(),
                is_key: false,
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_child(
    schema: &Schema,
    id: NodeId,
    path: &Path,
    level: u16,
    array_levels: &mut Vec<u16>,
    key_field: Option<&str>,
    is_key_field: bool,
    out: &mut Vec<ColumnSpec>,
) {
    if is_key_field {
        // The primary key must be an atomic root field; its definition level
        // encodes anti-matter (0) vs record (1), per §3.2.3.
        if let SchemaNode::Atomic { ty } = schema.node(id) {
            out.push(ColumnSpec {
                id,
                path: path.clone(),
                ty: *ty,
                max_def: 1,
                array_levels: Vec::new(),
                is_key: true,
            });
            return;
        }
    }
    walk(schema, id, path, level, array_levels, key_field, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::SchemaBuilder;
    use docmodel::doc;

    fn gamer_schema() -> Schema {
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe(&doc!({"id": 0, "games": [{"title": "NFL"}]}));
        b.observe(&doc!({
            "id": 1,
            "name": {"last": "Brown"},
            "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]
        }));
        b.observe(&doc!({
            "id": 2,
            "name": {"first": "John", "last": "Smith"},
            "games": [
                {"title": "NBA", "consoles": ["PS4", "PC"]},
                {"title": "NFL", "consoles": ["XBOX"]}
            ]
        }));
        b.observe(&doc!({"id": 3}));
        b.into_schema()
    }

    #[test]
    fn columns_match_figure_4b() {
        let cols = columns_of(&gamer_schema());
        let by_path: std::collections::HashMap<String, &ColumnSpec> =
            cols.iter().map(|c| (c.path.to_string(), c)).collect();

        let id = by_path["id"];
        assert!(id.is_key);
        assert_eq!(id.max_def, 1);
        assert_eq!(id.ty, AtomicType::Int);
        assert!(!id.is_repeated());

        let title = by_path["games[*].title"];
        assert_eq!(title.max_def, 3);
        assert_eq!(title.array_levels, vec![1]);
        assert_eq!(title.max_delimiter(), Some(0));

        let consoles = by_path["games[*].consoles[*]"];
        assert_eq!(consoles.max_def, 4);
        assert_eq!(consoles.array_levels, vec![1, 3]);
        assert_eq!(consoles.max_delimiter(), Some(1));

        let first = by_path["name.first"];
        assert_eq!(first.max_def, 2);
        assert!(!first.is_key);
        assert_eq!(first.max_delimiter(), None);
    }

    #[test]
    fn key_column_is_first_and_unique() {
        let cols = columns_of(&gamer_schema());
        assert!(cols[0].is_key);
        assert_eq!(cols.iter().filter(|c| c.is_key).count(), 1);
        assert_eq!(cols.len(), 5);
        let key = key_column(&gamer_schema()).unwrap();
        assert_eq!(key.path.to_string(), "id");
    }

    #[test]
    fn union_columns_from_figure_6() {
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"name": "John", "games": ["NBA", ["FIFA", "PES"], "NFL"]}));
        b.observe(&doc!({"name": {"first": "Ann", "last": "Brown"}, "games": ["NFL", "NBA"]}));
        let cols = columns_of(&b.into_schema());
        let by_path: std::collections::HashMap<String, &ColumnSpec> =
            cols.iter().map(|c| (c.path.to_string(), c)).collect();

        // Column 1 in Figure 7: name<string> with max def 1.
        let name_str = by_path["name<string>"];
        assert_eq!(name_str.max_def, 1);
        // Columns 2/3: name.first / name.last at def 2 (union ignored).
        assert_eq!(by_path["name<object>.first"].max_def, 2);
        // Column 4: games[*]<string>, max def 2, one enclosing array.
        let games_str = by_path["games[*]<string>"];
        assert_eq!(games_str.max_def, 2);
        assert_eq!(games_str.array_levels, vec![1]);
        // Column 5: games[*]<array>[*], max def 3, two enclosing arrays.
        let games_arr = by_path["games[*]<array>[*]"];
        assert_eq!(games_arr.max_def, 3);
        assert_eq!(games_arr.array_levels, vec![1, 2]);
        assert_eq!(games_arr.max_delimiter(), Some(1));
    }

    #[test]
    fn column_ids_are_stable_across_growth() {
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe(&doc!({"id": 1, "age": 25}));
        let before = columns_of(b.schema());
        let age_before = before.iter().find(|c| c.path.to_string() == "age").unwrap();

        b.observe(&doc!({"id": 2, "age": "old", "extra": true}));
        let after = columns_of(b.schema());
        let age_after = after
            .iter()
            .find(|c| c.path.to_string() == "age<int>")
            .unwrap();
        assert_eq!(age_before.id, age_after.id);
        assert_eq!(age_after.max_def, 1);
    }

    #[test]
    fn def_bit_width_is_sane() {
        let cols = columns_of(&gamer_schema());
        for c in &cols {
            assert!(c.def_bit_width() >= 1 && c.def_bit_width() <= 3);
        }
    }

    #[test]
    fn empty_schema_has_no_columns() {
        let s = Schema::new(Some("id".into()));
        assert!(columns_of(&s).is_empty());
        assert!(key_column(&s).is_none());
    }
}
