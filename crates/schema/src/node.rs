//! The arena-backed schema tree.
//!
//! Nodes are stored in a `Vec` and referenced by [`NodeId`]. The arena is
//! append-only: ids are never reused and never change, which gives every
//! atomic leaf a stable identity even as the schema evolves (new fields are
//! appended, and when a field's type changes the *parent edge* is redirected
//! to a freshly allocated union node whose first branch is the old child —
//! the old child's id, and therefore its column id, is untouched).

use crate::types::AtomicType;
use docmodel::{Path, Value, ValueKind};

/// Identifier of a schema node. Stable for the lifetime of a dataset.
pub type NodeId = u32;

/// Key of a union branch: the dynamic type the branch covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// An atomic branch of the given type.
    Atomic(AtomicType),
    /// An object branch.
    Object,
    /// An array branch.
    Array,
}

impl BranchKind {
    /// The branch kind a value would belong to, or `None` for nulls.
    pub fn of(value: &Value) -> Option<BranchKind> {
        match value.kind() {
            ValueKind::Null => None,
            ValueKind::Object => Some(BranchKind::Object),
            ValueKind::Array => Some(BranchKind::Array),
            _ => AtomicType::of(value).map(BranchKind::Atomic),
        }
    }

    /// Human-readable name, matching the paper's union-child keys.
    pub fn name(self) -> &'static str {
        match self {
            BranchKind::Atomic(t) => t.name(),
            BranchKind::Object => "object",
            BranchKind::Array => "array",
        }
    }
}

/// One node of the inferred schema tree.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaNode {
    /// An object with named, insertion-ordered children.
    Object {
        /// Field name → child node, in first-observation order.
        fields: Vec<(String, NodeId)>,
    },
    /// An array. `item` is `None` until a non-null element has been observed.
    Array {
        /// The element schema (possibly a union).
        item: Option<NodeId>,
    },
    /// A union of heterogeneous alternatives, keyed by type.
    Union {
        /// Branches in first-observation order.
        branches: Vec<(BranchKind, NodeId)>,
    },
    /// An atomic leaf — exactly one column.
    Atomic {
        /// The column's value type.
        ty: AtomicType,
    },
}

impl SchemaNode {
    /// The branch kind this node would occupy inside a union.
    pub fn branch_kind(&self) -> BranchKind {
        match self {
            SchemaNode::Object { .. } => BranchKind::Object,
            SchemaNode::Array { .. } => BranchKind::Array,
            SchemaNode::Atomic { ty } => BranchKind::Atomic(*ty),
            SchemaNode::Union { .. } => {
                unreachable!("unions are never nested directly inside unions")
            }
        }
    }
}

/// The inferred schema of one dataset (or one LSM component).
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    nodes: Vec<SchemaNode>,
    root: NodeId,
    /// Name of the root field that is the primary key, if declared.
    key_field: Option<String>,
}

impl Schema {
    /// Create an empty schema (a root object with no fields).
    pub fn new(key_field: Option<String>) -> Schema {
        Schema {
            nodes: vec![SchemaNode::Object { fields: Vec::new() }],
            root: 0,
            key_field,
        }
    }

    /// The root object node id (always 0).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The declared primary-key field, if any.
    pub fn key_field(&self) -> Option<&str> {
        self.key_field.as_deref()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &SchemaNode {
        &self.nodes[id as usize]
    }

    /// Mutably borrow a node (used by the inference pass).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut SchemaNode {
        &mut self.nodes[id as usize]
    }

    /// Append a node and return its id.
    pub(crate) fn push(&mut self, node: SchemaNode) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        id
    }

    /// Total number of nodes (atomic + nested).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of atomic leaves, i.e. of columns.
    pub fn column_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, SchemaNode::Atomic { .. }))
            .count()
    }

    /// Iterate over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &SchemaNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i as NodeId, n))
    }

    /// Look up the child of an object node by field name.
    pub fn object_field(&self, object: NodeId, name: &str) -> Option<NodeId> {
        match self.node(object) {
            SchemaNode::Object { fields } => {
                fields.iter().find(|(k, _)| k == name).map(|(_, id)| *id)
            }
            _ => None,
        }
    }

    /// Look up the branch of a union node by kind, or return the node itself
    /// if it is not a union but already has that kind. Convenience used by
    /// readers resolving paths through possibly-union nodes.
    pub fn resolve_branch(&self, id: NodeId, kind: BranchKind) -> Option<NodeId> {
        match self.node(id) {
            SchemaNode::Union { branches } => branches
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, id)| *id),
            node if node.branch_kind() == kind => Some(id),
            _ => None,
        }
    }

    /// Resolve a (field/array) [`Path`] to the node it addresses, looking
    /// *through* union nodes: at each step, if the current node is a union,
    /// every branch that can continue the path is considered and the first
    /// match wins (the query layer handles multi-branch access explicitly).
    pub fn resolve_path(&self, path: &Path) -> Option<NodeId> {
        let mut current = self.root;
        for step in path.steps() {
            current = self.step(current, step)?;
        }
        Some(current)
    }

    /// Resolve one path step from `id`, looking through unions.
    pub fn step(&self, id: NodeId, step: &docmodel::PathStep) -> Option<NodeId> {
        use docmodel::PathStep;
        // Candidate nodes to try the step against: the node itself, or every
        // branch when it is a union.
        let candidates: Vec<NodeId> = match self.node(id) {
            SchemaNode::Union { branches } => branches.iter().map(|(_, b)| *b).collect(),
            _ => vec![id],
        };
        for cand in candidates {
            match (step, self.node(cand)) {
                (PathStep::Field(name), SchemaNode::Object { fields }) => {
                    if let Some((_, child)) = fields.iter().find(|(k, _)| k == name) {
                        return Some(*child);
                    }
                }
                (PathStep::AllElements, SchemaNode::Array { item: Some(item) }) => {
                    return Some(*item);
                }
                (PathStep::Union(type_name), node)
                    if node.branch_kind().name() == *type_name => {
                        return Some(cand);
                    }
                _ => {}
            }
        }
        None
    }

    /// Definition level of a node: the number of field and array-item steps
    /// on the path from the root (union steps do not count, per §3.2.2).
    /// The root has level 0.
    pub fn level_of(&self, target: NodeId) -> Option<u16> {
        fn walk(schema: &Schema, id: NodeId, target: NodeId, level: u16) -> Option<u16> {
            if id == target {
                return Some(level);
            }
            match schema.node(id) {
                SchemaNode::Object { fields } => fields
                    .iter()
                    .find_map(|(_, child)| walk(schema, *child, target, level + 1)),
                SchemaNode::Array { item } => item
                    .and_then(|item| walk(schema, item, target, level + 1)),
                SchemaNode::Union { branches } => branches
                    .iter()
                    .find_map(|(_, child)| walk(schema, *child, target, level)),
                SchemaNode::Atomic { .. } => None,
            }
        }
        walk(self, self.root, target, 0)
    }

    /// Pretty-print the schema tree, mostly for debugging and examples.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_node(self.root, "root", 0, &mut out);
        out
    }

    fn describe_node(&self, id: NodeId, label: &str, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self.node(id) {
            SchemaNode::Object { fields } => {
                out.push_str(&format!("{pad}{label}: object\n"));
                for (name, child) in fields {
                    self.describe_node(*child, name, indent + 1, out);
                }
            }
            SchemaNode::Array { item } => {
                out.push_str(&format!("{pad}{label}: array\n"));
                if let Some(item) = item {
                    self.describe_node(*item, "[*]", indent + 1, out);
                }
            }
            SchemaNode::Union { branches } => {
                out.push_str(&format!("{pad}{label}: union\n"));
                for (kind, child) in branches {
                    self.describe_node(*child, kind.name(), indent + 1, out);
                }
            }
            SchemaNode::Atomic { ty } => {
                out.push_str(&format!("{pad}{label}: {ty}\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::SchemaBuilder;
    use docmodel::doc;

    fn gamer_schema() -> Schema {
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe(&doc!({"id": 0, "games": [{"title": "NFL"}]}));
        b.observe(&doc!({
            "id": 1,
            "name": {"last": "Brown"},
            "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]
        }));
        b.observe(&doc!({
            "id": 2,
            "name": {"first": "John", "last": "Smith"},
            "games": [
                {"title": "NBA", "consoles": ["PS4", "PC"]},
                {"title": "NFL", "consoles": ["XBOX"]}
            ]
        }));
        b.observe(&doc!({"id": 3}));
        b.schema().clone()
    }

    #[test]
    fn levels_match_the_paper_example() {
        // Figure 4b: id (R:0,D:0 — but key), name.first (D:2), name.last (D:2),
        // games[*].title (D:3), games[*].consoles[*] (D:4).
        let schema = gamer_schema();
        let id = schema.resolve_path(&Path::parse("id")).unwrap();
        let first = schema.resolve_path(&Path::parse("name.first")).unwrap();
        let title = schema.resolve_path(&Path::parse("games[*].title")).unwrap();
        let consoles = schema
            .resolve_path(&Path::parse("games[*].consoles[*]"))
            .unwrap();
        assert_eq!(schema.level_of(id), Some(1));
        assert_eq!(schema.level_of(first), Some(2));
        assert_eq!(schema.level_of(title), Some(3));
        assert_eq!(schema.level_of(consoles), Some(4));
        assert_eq!(schema.level_of(schema.root()), Some(0));
    }

    #[test]
    fn resolve_path_misses_unknown_fields() {
        let schema = gamer_schema();
        assert!(schema.resolve_path(&Path::parse("nope")).is_none());
        assert!(schema.resolve_path(&Path::parse("name.middle")).is_none());
        assert!(schema.resolve_path(&Path::parse("id[*]")).is_none());
    }

    #[test]
    fn describe_is_readable() {
        let schema = gamer_schema();
        let text = schema.describe();
        assert!(text.contains("games"));
        assert!(text.contains("consoles"));
        assert!(text.contains("string"));
        assert!(text.starts_with("root: object"));
    }

    #[test]
    fn column_count_counts_leaves() {
        let schema = gamer_schema();
        // id, name.first, name.last, games[*].title, games[*].consoles[*]
        assert_eq!(schema.column_count(), 5);
        assert!(schema.node_count() > schema.column_count());
    }

    #[test]
    fn union_levels_ignore_union_nodes() {
        // Figure 6/7: name is union(string | object{first,last});
        // the string branch has level 1, first/last have level 2.
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"name": "John", "games": ["NBA", ["FIFA", "PES"], "NFL"]}));
        b.observe(&doc!({"name": {"first": "Ann", "last": "Brown"}, "games": ["NFL", "NBA"]}));
        let schema = b.schema();

        let name_string = schema
            .resolve_path(&Path::parse("name").union_branch("string"))
            .unwrap();
        let name_first = schema.resolve_path(&Path::parse("name.first")).unwrap();
        assert_eq!(schema.level_of(name_string), Some(1));
        assert_eq!(schema.level_of(name_first), Some(2));

        // games[*] is union(string | array of string): levels 2 and 3.
        let games_string = schema
            .resolve_path(&Path::parse("games[*]").union_branch("string"))
            .unwrap();
        let games_inner = schema
            .resolve_path(&Path::parse("games[*][*]"))
            .unwrap();
        assert_eq!(schema.level_of(games_string), Some(2));
        assert_eq!(schema.level_of(games_inner), Some(3));
    }

    #[test]
    fn branch_kind_of_values() {
        assert_eq!(BranchKind::of(&Value::Null), None);
        assert_eq!(BranchKind::of(&doc!(1)), Some(BranchKind::Atomic(AtomicType::Int)));
        assert_eq!(BranchKind::of(&doc!({"a": 1})), Some(BranchKind::Object));
        assert_eq!(BranchKind::of(&doc!([1])), Some(BranchKind::Array));
    }
}
