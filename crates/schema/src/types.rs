//! Atomic (leaf) types of the inferred schema.

use docmodel::{Value, ValueKind};

/// The type of an atomic schema leaf, i.e. of one column.
///
/// `Null` values carry no type information during inference, so there is no
/// `Null` variant here — a field observed only as `null` simply never gets a
/// column (the standard Dremel behaviour the paper inherits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomicType {
    /// Boolean values.
    Bool,
    /// 64-bit integers.
    Int,
    /// 64-bit IEEE-754 doubles.
    Double,
    /// UTF-8 strings.
    String,
}

impl AtomicType {
    /// The atomic type of a value, or `None` for nulls and nested values.
    pub fn of(value: &Value) -> Option<AtomicType> {
        match value.kind() {
            ValueKind::Bool => Some(AtomicType::Bool),
            ValueKind::Int => Some(AtomicType::Int),
            ValueKind::Double => Some(AtomicType::Double),
            ValueKind::String => Some(AtomicType::String),
            ValueKind::Null | ValueKind::Array | ValueKind::Object => None,
        }
    }

    /// Short name, used as the key of a union branch (paper Figure 6 keys
    /// union children by their type name).
    pub fn name(self) -> &'static str {
        match self {
            AtomicType::Bool => "boolean",
            AtomicType::Int => "int",
            AtomicType::Double => "double",
            AtomicType::String => "string",
        }
    }

    /// Stable numeric tag for persistence.
    pub fn tag(self) -> u8 {
        match self {
            AtomicType::Bool => 0,
            AtomicType::Int => 1,
            AtomicType::Double => 2,
            AtomicType::String => 3,
        }
    }

    /// Inverse of [`AtomicType::tag`].
    pub fn from_tag(tag: u8) -> Option<AtomicType> {
        Some(match tag {
            0 => AtomicType::Bool,
            1 => AtomicType::Int,
            2 => AtomicType::Double,
            3 => AtomicType::String,
            _ => return None,
        })
    }

    /// `true` if `value` has exactly this atomic type.
    pub fn matches(self, value: &Value) -> bool {
        AtomicType::of(value) == Some(self)
    }
}

impl std::fmt::Display for AtomicType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    #[test]
    fn atomic_type_of_values() {
        assert_eq!(AtomicType::of(&Value::Bool(true)), Some(AtomicType::Bool));
        assert_eq!(AtomicType::of(&Value::Int(3)), Some(AtomicType::Int));
        assert_eq!(AtomicType::of(&Value::Double(3.5)), Some(AtomicType::Double));
        assert_eq!(AtomicType::of(&Value::from("s")), Some(AtomicType::String));
        assert_eq!(AtomicType::of(&Value::Null), None);
        assert_eq!(AtomicType::of(&doc!([1])), None);
        assert_eq!(AtomicType::of(&doc!({"a": 1})), None);
    }

    #[test]
    fn tags_roundtrip() {
        for t in [
            AtomicType::Bool,
            AtomicType::Int,
            AtomicType::Double,
            AtomicType::String,
        ] {
            assert_eq!(AtomicType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(AtomicType::from_tag(9), None);
    }

    #[test]
    fn matches_checks_exact_type() {
        assert!(AtomicType::Int.matches(&Value::Int(1)));
        assert!(!AtomicType::Int.matches(&Value::Double(1.0)));
        assert!(!AtomicType::String.matches(&Value::Null));
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            AtomicType::Bool,
            AtomicType::Int,
            AtomicType::Double,
            AtomicType::String,
        ]
        .iter()
        .map(|t| t.name())
        .collect();
        assert_eq!(names.len(), 4);
    }
}
