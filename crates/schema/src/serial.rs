//! Schema persistence.
//!
//! The tuple compactor persists the inferred schema into each flushed
//! component's *metadata page* so that readers can interpret the component's
//! columns, and so that later builders (and merges) can resume from the most
//! recent schema. The encoding is a simple tagged pre-order dump of the node
//! arena — node ids are positions, so they survive the round trip unchanged,
//! preserving column-id stability.

use crate::node::{BranchKind, NodeId, Schema, SchemaNode};
use crate::types::AtomicType;
use encoding::{plain, varint, DecodeError, DecodeResult};

const TAG_OBJECT: u8 = 0;
const TAG_ARRAY: u8 = 1;
const TAG_UNION: u8 = 2;
const TAG_ATOMIC: u8 = 3;

const BRANCH_OBJECT: u8 = 100;
const BRANCH_ARRAY: u8 = 101;

/// Serialize `schema` into `out`.
pub fn write_schema(schema: &Schema, out: &mut Vec<u8>) {
    match schema.key_field() {
        Some(k) => {
            out.push(1);
            plain::write_str(out, k);
        }
        None => out.push(0),
    }
    varint::write_u64(out, schema.node_count() as u64);
    for (_, node) in schema.iter() {
        match node {
            SchemaNode::Object { fields } => {
                out.push(TAG_OBJECT);
                varint::write_u64(out, fields.len() as u64);
                for (name, child) in fields {
                    plain::write_str(out, name);
                    varint::write_u64(out, u64::from(*child));
                }
            }
            SchemaNode::Array { item } => {
                out.push(TAG_ARRAY);
                match item {
                    Some(id) => {
                        out.push(1);
                        varint::write_u64(out, u64::from(*id));
                    }
                    None => out.push(0),
                }
            }
            SchemaNode::Union { branches } => {
                out.push(TAG_UNION);
                varint::write_u64(out, branches.len() as u64);
                for (kind, child) in branches {
                    out.push(branch_tag(*kind));
                    varint::write_u64(out, u64::from(*child));
                }
            }
            SchemaNode::Atomic { ty } => {
                out.push(TAG_ATOMIC);
                out.push(ty.tag());
            }
        }
    }
}

/// Deserialize a schema previously written with [`write_schema`].
pub fn read_schema(buf: &[u8], pos: &mut usize) -> DecodeResult<Schema> {
    let has_key = read_u8(buf, pos)?;
    let key_field = if has_key == 1 {
        Some(plain::read_str(buf, pos)?.to_string())
    } else {
        None
    };
    let node_count = varint::read_u64(buf, pos)? as usize;
    let mut schema = Schema::new(key_field);
    for i in 0..node_count {
        let node = read_node(buf, pos)?;
        if i == 0 {
            // Node 0 is the root object; fill in the placeholder created by
            // Schema::new so that ids keep their original positions.
            match node {
                SchemaNode::Object { fields } => {
                    if let SchemaNode::Object { fields: slot } = schema.node_mut(0) {
                        *slot = fields;
                    }
                }
                _ => return Err(DecodeError::new("schema root must be an object")),
            }
        } else {
            schema.push(node);
        }
    }
    validate(&schema, node_count)?;
    Ok(schema)
}

fn read_node(buf: &[u8], pos: &mut usize) -> DecodeResult<SchemaNode> {
    let tag = read_u8(buf, pos)?;
    Ok(match tag {
        TAG_OBJECT => {
            let n = varint::read_u64(buf, pos)? as usize;
            let mut fields = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let name = plain::read_str(buf, pos)?.to_string();
                let child = varint::read_u64(buf, pos)? as NodeId;
                fields.push((name, child));
            }
            SchemaNode::Object { fields }
        }
        TAG_ARRAY => {
            let has_item = read_u8(buf, pos)?;
            let item = if has_item == 1 {
                Some(varint::read_u64(buf, pos)? as NodeId)
            } else {
                None
            };
            SchemaNode::Array { item }
        }
        TAG_UNION => {
            let n = varint::read_u64(buf, pos)? as usize;
            let mut branches = Vec::with_capacity(n.min(16));
            for _ in 0..n {
                let kind = read_branch_tag(read_u8(buf, pos)?)?;
                let child = varint::read_u64(buf, pos)? as NodeId;
                branches.push((kind, child));
            }
            SchemaNode::Union { branches }
        }
        TAG_ATOMIC => {
            let ty = AtomicType::from_tag(read_u8(buf, pos)?)
                .ok_or_else(|| DecodeError::new("invalid atomic type tag"))?;
            SchemaNode::Atomic { ty }
        }
        other => return Err(DecodeError::new(format!("invalid schema node tag {other}"))),
    })
}

fn branch_tag(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Atomic(t) => t.tag(),
        BranchKind::Object => BRANCH_OBJECT,
        BranchKind::Array => BRANCH_ARRAY,
    }
}

fn read_branch_tag(tag: u8) -> DecodeResult<BranchKind> {
    Ok(match tag {
        BRANCH_OBJECT => BranchKind::Object,
        BRANCH_ARRAY => BranchKind::Array,
        t => BranchKind::Atomic(
            AtomicType::from_tag(t).ok_or_else(|| DecodeError::new("invalid branch tag"))?,
        ),
    })
}

fn read_u8(buf: &[u8], pos: &mut usize) -> DecodeResult<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| DecodeError::new("truncated schema"))?;
    *pos += 1;
    Ok(b)
}

/// Reject schemas whose child references point outside the arena — corrupt
/// metadata must not cause panics deeper in the read path.
fn validate(schema: &Schema, node_count: usize) -> DecodeResult<()> {
    for (_, node) in schema.iter() {
        let check = |id: NodeId| -> DecodeResult<()> {
            if (id as usize) < node_count {
                Ok(())
            } else {
                Err(DecodeError::new("schema child id out of range"))
            }
        };
        match node {
            SchemaNode::Object { fields } => {
                for (_, c) in fields {
                    check(*c)?;
                }
            }
            SchemaNode::Array { item } => {
                if let Some(c) = item {
                    check(*c)?;
                }
            }
            SchemaNode::Union { branches } => {
                for (_, c) in branches {
                    check(*c)?;
                }
            }
            SchemaNode::Atomic { .. } => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::columns_of;
    use crate::infer::SchemaBuilder;
    use docmodel::doc;

    fn sample_schema() -> Schema {
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe(&doc!({"id": 1, "name": {"first": "A"}, "games": [{"title": "NBA", "consoles": ["PS4"]}]}));
        b.observe(&doc!({"id": 2, "name": "plain string", "score": 3.5, "flags": [true, false]}));
        b.into_schema()
    }

    #[test]
    fn roundtrip_preserves_schema_and_column_ids() {
        let schema = sample_schema();
        let mut buf = Vec::new();
        write_schema(&schema, &mut buf);
        let mut pos = 0;
        let back = read_schema(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back, schema);
        assert_eq!(columns_of(&back), columns_of(&schema));
    }

    #[test]
    fn roundtrip_empty_schema() {
        let schema = Schema::new(None);
        let mut buf = Vec::new();
        write_schema(&schema, &mut buf);
        let mut pos = 0;
        let back = read_schema(&buf, &mut pos).unwrap();
        assert_eq!(back, schema);
        assert_eq!(back.key_field(), None);
    }

    #[test]
    fn truncated_schema_is_an_error() {
        let schema = sample_schema();
        let mut buf = Vec::new();
        write_schema(&schema, &mut buf);
        for cut in [0, 1, 3, buf.len() / 2, buf.len() - 1] {
            let mut pos = 0;
            assert!(read_schema(&buf[..cut], &mut pos).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_node_tag_is_an_error() {
        let schema = sample_schema();
        let mut buf = Vec::new();
        write_schema(&schema, &mut buf);
        // The first node tag sits right after the key-field header.
        let key_header_len = 1 + 1 + 2; // flag byte, varint len (1), "id"
        buf[key_header_len + 1] = 99;
        let mut pos = 0;
        assert!(read_schema(&buf, &mut pos).is_err());
    }

    #[test]
    fn out_of_range_child_is_rejected() {
        // Hand-craft a schema whose root references node 7 which does not exist.
        let mut buf = Vec::new();
        buf.push(0); // no key field
        varint::write_u64(&mut buf, 1); // one node
        buf.push(TAG_OBJECT);
        varint::write_u64(&mut buf, 1);
        plain::write_str(&mut buf, "dangling");
        varint::write_u64(&mut buf, 7);
        let mut pos = 0;
        assert!(read_schema(&buf, &mut pos).is_err());
    }

    #[test]
    fn schema_followed_by_other_data() {
        let schema = sample_schema();
        let mut buf = Vec::new();
        write_schema(&schema, &mut buf);
        let schema_len = buf.len();
        buf.extend_from_slice(b"TRAILER");
        let mut pos = 0;
        let back = read_schema(&buf, &mut pos).unwrap();
        assert_eq!(pos, schema_len);
        assert_eq!(back, schema);
    }
}
