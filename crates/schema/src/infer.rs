//! Single-pass schema inference with union introduction.
//!
//! The builder is fed records one by one (the tuple compactor does this
//! during the LSM flush) and grows the schema monotonically: fields are only
//! ever added, and type conflicts are resolved by *interposing a union node*
//! above the existing child. Because the arena is append-only, the existing
//! child — and every column below it — keeps its [`NodeId`], so columns that
//! were already written in earlier flushes remain addressable without
//! rewriting their definition levels (§3.2.2 of the paper).

use crate::node::{BranchKind, NodeId, Schema, SchemaNode};
use docmodel::Value;

/// Incremental schema inference.
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    schema: Schema,
    records_observed: u64,
}

impl SchemaBuilder {
    /// Create a builder, optionally declaring which root field is the
    /// primary key (the only piece of schema a dataset declares up front,
    /// exactly as in AsterixDB).
    pub fn new(key_field: Option<String>) -> SchemaBuilder {
        SchemaBuilder {
            schema: Schema::new(key_field),
            records_observed: 0,
        }
    }

    /// Start from an existing schema (e.g. the schema persisted by the most
    /// recent flushed component) and keep growing it.
    pub fn from_schema(schema: Schema) -> SchemaBuilder {
        SchemaBuilder {
            schema,
            records_observed: 0,
        }
    }

    /// The current inferred schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Consume the builder, returning the schema.
    pub fn into_schema(self) -> Schema {
        self.schema
    }

    /// Number of records observed by this builder instance.
    pub fn records_observed(&self) -> u64 {
        self.records_observed
    }

    /// Observe one record (must be an object) and update the schema.
    pub fn observe(&mut self, record: &Value) {
        self.records_observed += 1;
        let root = self.schema.root();
        if let Value::Object(fields) = record {
            for (name, value) in fields {
                self.observe_field(root, name, value);
            }
        }
    }

    /// Observe a batch of records.
    pub fn observe_all<'a>(&mut self, records: impl IntoIterator<Item = &'a Value>) {
        for r in records {
            self.observe(r);
        }
    }

    fn observe_field(&mut self, object: NodeId, name: &str, value: &Value) {
        if value.is_null() {
            // Nulls carry no type information; the field is not created.
            return;
        }
        match self.schema.object_field(object, name) {
            Some(child) => {
                let resolved = self.observe_value(child, value);
                if resolved != child {
                    // A union was interposed: redirect the parent edge.
                    if let SchemaNode::Object { fields } = self.schema.node_mut(object) {
                        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == name) {
                            slot.1 = resolved;
                        }
                    }
                }
            }
            None => {
                let child = self.create_node_for(value);
                if let SchemaNode::Object { fields } = self.schema.node_mut(object) {
                    fields.push((name.to_string(), child));
                }
                self.populate(child, value);
            }
        }
    }

    /// Observe `value` against the existing node `id`. Returns the node that
    /// should now occupy this position: `id` itself, or a newly created union
    /// node when the types conflict.
    fn observe_value(&mut self, id: NodeId, value: &Value) -> NodeId {
        let Some(value_kind) = BranchKind::of(value) else {
            return id; // null: nothing to record
        };
        let node_kind = match self.schema.node(id) {
            SchemaNode::Union { .. } => None,
            node => Some(node.branch_kind()),
        };
        match node_kind {
            // The node is already a union: find or add the branch.
            None => {
                let branch = self.union_branch(id, value_kind);
                self.populate(branch, value);
                id
            }
            // Same kind: descend.
            Some(kind) if kind == value_kind => {
                self.populate(id, value);
                id
            }
            // Kind conflict: interpose a union above the existing node.
            Some(existing_kind) => {
                let union_id = self
                    .schema
                    .push(SchemaNode::Union { branches: vec![(existing_kind, id)] });
                let branch = self.union_branch(union_id, value_kind);
                self.populate(branch, value);
                union_id
            }
        }
    }

    /// Find or create the branch of union `union_id` for `kind`.
    fn union_branch(&mut self, union_id: NodeId, kind: BranchKind) -> NodeId {
        if let SchemaNode::Union { branches } = self.schema.node(union_id) {
            if let Some((_, id)) = branches.iter().find(|(k, _)| *k == kind) {
                return *id;
            }
        }
        let new_branch = self.schema.push(Self::empty_node_of(kind));
        if let SchemaNode::Union { branches } = self.schema.node_mut(union_id) {
            branches.push((kind, new_branch));
        }
        new_branch
    }

    /// Descend into `value`'s children, assuming node `id` already has the
    /// right kind for `value`.
    fn populate(&mut self, id: NodeId, value: &Value) {
        match value {
            Value::Object(fields) => {
                for (name, v) in fields {
                    self.observe_field(id, name, v);
                }
            }
            Value::Array(elems) => {
                for elem in elems {
                    if elem.is_null() {
                        continue;
                    }
                    let item = match self.schema.node(id) {
                        SchemaNode::Array { item } => *item,
                        _ => unreachable!("populate(array) on non-array node"),
                    };
                    match item {
                        Some(item_id) => {
                            let resolved = self.observe_value(item_id, elem);
                            if resolved != item_id {
                                if let SchemaNode::Array { item } = self.schema.node_mut(id) {
                                    *item = Some(resolved);
                                }
                            }
                        }
                        None => {
                            let item_id = self.create_node_for(elem);
                            if let SchemaNode::Array { item } = self.schema.node_mut(id) {
                                *item = Some(item_id);
                            }
                            self.populate(item_id, elem);
                        }
                    }
                }
            }
            // Atomic values: the node already records the type.
            _ => {}
        }
    }

    fn create_node_for(&mut self, value: &Value) -> NodeId {
        let kind = BranchKind::of(value).expect("create_node_for on null");
        self.schema.push(Self::empty_node_of(kind))
    }

    fn empty_node_of(kind: BranchKind) -> SchemaNode {
        match kind {
            BranchKind::Atomic(ty) => SchemaNode::Atomic { ty },
            BranchKind::Object => SchemaNode::Object { fields: Vec::new() },
            BranchKind::Array => SchemaNode::Array { item: None },
        }
    }
}

/// Convenience: infer a schema from a slice of records in one call.
pub fn infer_schema(records: &[Value], key_field: Option<String>) -> Schema {
    let mut b = SchemaBuilder::new(key_field);
    b.observe_all(records);
    b.into_schema()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SchemaNode;
    use crate::types::AtomicType;
    use docmodel::{doc, Path};

    #[test]
    fn simple_flat_schema() {
        let mut b = SchemaBuilder::new(Some("id".to_string()));
        b.observe(&doc!({"id": 0, "name": "Kim", "age": 26}));
        b.observe(&doc!({"id": 1, "name": "John", "age": 22}));
        let s = b.schema();
        assert_eq!(s.column_count(), 3);
        assert_eq!(s.key_field(), Some("id"));
        let age = s.resolve_path(&Path::parse("age")).unwrap();
        assert!(matches!(s.node(age), SchemaNode::Atomic { ty: AtomicType::Int }));
        assert_eq!(b.records_observed(), 2);
    }

    #[test]
    fn missing_fields_do_not_create_columns() {
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"a": 1}));
        b.observe(&doc!({"b": "x"}));
        b.observe(&doc!({"c": null}));
        let s = b.schema();
        assert_eq!(s.column_count(), 2);
        assert!(s.resolve_path(&Path::parse("c")).is_none());
    }

    #[test]
    fn type_conflict_creates_union_and_keeps_old_node_id() {
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"age": 25}));
        let old_id = b.schema().resolve_path(&Path::parse("age")).unwrap();

        b.observe(&doc!({"age": "old"}));
        let s = b.schema();
        let age_node = s.resolve_path(&Path::parse("age")).unwrap();
        match s.node(age_node) {
            SchemaNode::Union { branches } => {
                assert_eq!(branches.len(), 2);
                // The int branch is the pre-existing node: same id as before.
                let (_, int_branch) = branches
                    .iter()
                    .find(|(k, _)| *k == BranchKind::Atomic(AtomicType::Int))
                    .unwrap();
                assert_eq!(*int_branch, old_id);
            }
            other => panic!("expected union, got {other:?}"),
        }
        // Levels: both branches sit at level 1 (union does not count).
        let int_branch = s
            .resolve_path(&Path::parse("age").union_branch("int"))
            .unwrap();
        let str_branch = s
            .resolve_path(&Path::parse("age").union_branch("string"))
            .unwrap();
        assert_eq!(s.level_of(int_branch), Some(1));
        assert_eq!(s.level_of(str_branch), Some(1));
    }

    #[test]
    fn paper_figure6_schema() {
        // name: union(string, object{first,last});
        // games: array of union(string, array of string).
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"name": "John", "games": ["NBA", ["FIFA", "PES"], "NFL"]}));
        b.observe(&doc!({"name": {"first": "Ann", "last": "Brown"}, "games": ["NFL", "NBA"]}));
        let s = b.schema();

        let name = s.resolve_path(&Path::parse("name")).unwrap();
        assert!(matches!(s.node(name), SchemaNode::Union { .. }));
        assert!(s.resolve_path(&Path::parse("name.first")).is_some());
        assert!(s.resolve_path(&Path::parse("name.last")).is_some());

        let games_item = s.resolve_path(&Path::parse("games[*]")).unwrap();
        assert!(matches!(s.node(games_item), SchemaNode::Union { .. }));
        assert!(s.resolve_path(&Path::parse("games[*][*]")).is_some());
        // Columns: name<string>, first, last, games[*]<string>, games[*][*].
        assert_eq!(s.column_count(), 5);
    }

    #[test]
    fn heterogeneous_array_elements() {
        // [0, "1", {"seq": 2}] — the example from §3.2.2.
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"xs": [0, "1", {"seq": 2}]}));
        let s = b.schema();
        let item = s.resolve_path(&Path::parse("xs[*]")).unwrap();
        match s.node(item) {
            SchemaNode::Union { branches } => assert_eq!(branches.len(), 3),
            other => panic!("expected union, got {other:?}"),
        }
        assert!(s.resolve_path(&Path::parse("xs[*].seq")).is_some());
    }

    #[test]
    fn nested_object_to_array_conflict() {
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"addr": {"country": "US"}}));
        b.observe(&doc!({"addr": [{"country": "DE"}, {"country": "FR"}]}));
        let s = b.schema();
        let addr = s.resolve_path(&Path::parse("addr")).unwrap();
        assert!(matches!(s.node(addr), SchemaNode::Union { .. }));
        // Both the object branch and the array branch have a country column.
        assert!(s.resolve_path(&Path::parse("addr.country")).is_some());
        assert!(s.resolve_path(&Path::parse("addr[*].country")).is_some());
        assert_eq!(s.column_count(), 2);
    }

    #[test]
    fn inference_is_idempotent_for_repeated_records() {
        let rec = doc!({"id": 1, "a": {"b": [1, 2, 3]}, "s": "x"});
        let mut b = SchemaBuilder::new(None);
        b.observe(&rec);
        let after_one = b.schema().clone();
        for _ in 0..10 {
            b.observe(&rec);
        }
        assert_eq!(b.schema(), &after_one);
    }

    #[test]
    fn later_schema_is_superset_of_earlier() {
        // The property the paper relies on when persisting only the latest
        // flushed component's schema.
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"a": 1}));
        let early = b.schema().clone();
        b.observe(&doc!({"a": 1, "b": {"c": "x"}}));
        b.observe(&doc!({"a": "now a string"}));
        let late = b.schema().clone();
        // Every column resolvable in the early schema resolves (same id) in
        // the late schema.
        for (id, node) in early.iter() {
            if matches!(node, SchemaNode::Atomic { .. }) {
                assert!(matches!(late.node(id), SchemaNode::Atomic { .. }));
            }
        }
        assert!(late.column_count() >= early.column_count());
    }

    #[test]
    fn from_schema_continues_growing() {
        let mut b = SchemaBuilder::new(None);
        b.observe(&doc!({"a": 1}));
        let snapshot = b.schema().clone();
        let mut b2 = SchemaBuilder::from_schema(snapshot);
        b2.observe(&doc!({"b": 2.5}));
        assert_eq!(b2.schema().column_count(), 2);
    }

    #[test]
    fn infer_schema_helper() {
        let records = vec![doc!({"x": 1}), doc!({"y": "s"})];
        let s = infer_schema(&records, None);
        assert_eq!(s.column_count(), 2);
    }
}
