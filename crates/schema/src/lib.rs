//! # schema — inferred schemas for schemaless documents
//!
//! Document stores do not require a schema up front; instead, the *tuple
//! compactor* (Alkowaileet et al., PVLDB 2020 — the substrate this paper
//! builds on) infers one as records are flushed from the LSM in-memory
//! component to disk. The inferred schema is a tree:
//!
//! * **object** nodes with named children,
//! * **array** nodes with a single item child,
//! * **union** nodes whose children are keyed by their type (introduced when
//!   the same field is observed with two or more different types), and
//! * **atomic** leaves (`bool`, `int`, `double`, `string`).
//!
//! Every atomic leaf corresponds to exactly one *column* in the extended
//! Dremel format. This crate provides:
//!
//! * [`SchemaNode`]/[`Schema`] — the arena-backed schema tree ([`node`]),
//! * [`SchemaBuilder`] — single-pass schema inference with union introduction
//!   ([`infer`]),
//! * [`ColumnSpec`] — the per-column metadata (path, type, maximum definition
//!   level, enclosing-array levels) the shredder and assembler need
//!   ([`columns`]),
//! * persistence of the schema into a component's metadata page ([`serial`]).
//!
//! Node identifiers are append-only and therefore stable across schema
//! evolution: when a field's type changes and a union node is interposed, the
//! existing leaf keeps its identifier, which is exactly the property the
//! paper relies on to avoid rewriting the definition levels of
//! already-written columns (§3.2.2).

pub mod columns;
pub mod infer;
pub mod node;
pub mod serial;
pub mod types;

pub use columns::{columns_of, key_column, ColumnId, ColumnSpec};
pub use infer::SchemaBuilder;
pub use node::{NodeId, Schema, SchemaNode};
pub use serial::{read_schema, write_schema};
pub use types::AtomicType;
