//! A shared background worker pool for flushes and merges.
//!
//! The paper's LSM lifecycle runs flushes and merges as background jobs
//! (§2.1, §6.3). Early versions of this crate gave every dataset partition
//! its own dedicated worker thread; with a sharded dataset that meant one
//! thread per shard, all mostly idle, and no way to bound the machine-wide
//! maintenance concurrency. [`WorkerPool`] replaces that: **one pool, shared
//! by every partition**, sized once for the whole process.
//!
//! Scheduling is a priority queue:
//!
//! * **flushes before merges** — a queued flush releases ingest
//!   backpressure and bounds memory, so it always beats a queued merge,
//!   regardless of which dataset submitted it;
//! * **FIFO within a priority** — tasks of equal priority run in submission
//!   order (the fair FCFS order of the paper's setup, §6.3), enforced by a
//!   monotonically increasing sequence number.
//!
//! Tasks are plain boxed closures; the dataset submits closures that hold a
//! `Weak` reference to its core, so a queued task for a dropped dataset
//! degenerates to a no-op instead of keeping the dataset alive. Per-dataset
//! bookkeeping (how many tasks are queued/running, parked failures, drain)
//! stays in the crate-private `Scheduler`; the pool only executes.
//!
//! Shutdown: dropping the [`WorkerPool`] marks the queue closed, lets the
//! workers drain every already-queued task, and joins them. Submitting to a
//! closed pool fails (returns `false`) and the caller falls back to inline
//! processing. Datasets only hold a [`PoolHandle`] — a cheap clone of the
//! shared queue that owns no threads — so a dataset core dropped *on* a
//! worker thread never tries to join that same thread.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A unit of background work, submitted by a dataset.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Task priority: lower runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Priority {
    /// Flush a sealed memtable (releases backpressure; always first).
    Flush = 0,
    /// Run a compaction round.
    Merge = 1,
}

struct QueuedTask {
    priority: Priority,
    seq: u64,
    task: Task,
}

// `BinaryHeap` is a max-heap; reverse the ordering so `pop` yields the
// lowest (priority, seq) — highest urgency, oldest first.
impl Ord for QueuedTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.priority, other.seq).cmp(&(self.priority, self.seq))
    }
}
impl PartialOrd for QueuedTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Eq for QueuedTask {}
impl PartialEq for QueuedTask {
    fn eq(&self, other: &Self) -> bool {
        (self.priority, self.seq) == (other.priority, other.seq)
    }
}

#[derive(Default)]
struct PoolQueue {
    heap: BinaryHeap<QueuedTask>,
    next_seq: u64,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    cv: Condvar,
    /// Lock-free mirror of `PoolQueue::shutdown` for the ingest hot path
    /// (datasets probe it per insert to decide on the inline fallback).
    open: AtomicBool,
}

/// A fixed-size pool of background worker threads executing flush/merge
/// tasks in priority order. Owns the threads; dropping it drains the queue
/// and joins them. Hand [`WorkerPool::handle`] to every dataset that should
/// share it (via `DatasetConfig::with_pool`).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue::default()),
            cv: Condvar::new(),
            open: AtomicBool::new(true),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lsm-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// A cheap, thread-owning-nothing handle for submitting tasks.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: self.shared.clone(),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.open.store(false, Ordering::Relaxed);
        self.shared.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A clonable submission handle onto a [`WorkerPool`]'s queue. Holds no
/// threads: it may outlive the pool, in which case submissions fail and the
/// submitter processes inline.
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle").finish_non_exhaustive()
    }
}

impl PoolHandle {
    /// Queue a task. Returns `false` (without queueing) once the pool has
    /// shut down — already-queued tasks still run, new ones are refused.
    pub(crate) fn submit(&self, priority: Priority, task: Task) -> bool {
        let mut queue = self.shared.queue.lock().unwrap();
        if queue.shutdown {
            return false;
        }
        let seq = queue.next_seq;
        queue.next_seq += 1;
        queue.heap.push(QueuedTask { priority, seq, task });
        drop(queue);
        self.shared.cv.notify_one();
        true
    }

    /// Whether the pool is still accepting tasks (false once it drops).
    pub(crate) fn is_open(&self) -> bool {
        self.shared.open.load(Ordering::Relaxed)
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(next) = queue.heap.pop() {
                    break Some(next.task);
                }
                // Drain-then-exit: every task queued before shutdown still
                // runs, so per-dataset queued-task accounting always settles.
                if queue.shutdown {
                    break None;
                }
                queue = shared.cv.wait(queue).unwrap();
            }
        };
        match task {
            Some(task) => task(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_beat_submission_order() {
        let pool = WorkerPool::new(1);
        let handle = pool.handle();
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        // Park the single worker on a gate so the next two tasks are
        // ordered by the queue, not by execution racing submission.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = gate.clone();
            assert!(handle.submit(
                Priority::Flush,
                Box::new(move || {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }),
            ));
        }
        for (priority, label) in [(Priority::Merge, "merge"), (Priority::Flush, "flush")] {
            let order = order.clone();
            assert!(handle.submit(
                priority,
                Box::new(move || order.lock().unwrap().push(label)),
            ));
        }
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        // Dropping the pool drains the queue and joins the worker.
        drop(pool);
        assert_eq!(*order.lock().unwrap(), vec!["flush", "merge"]);
    }

    #[test]
    fn handle_outliving_the_pool_refuses_submissions() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        let handle = pool.handle();
        drop(pool);
        assert!(!handle.submit(Priority::Flush, Box::new(|| {})));
    }

    #[test]
    fn equal_priority_runs_in_submission_order() {
        let pool = WorkerPool::new(1);
        let handle = pool.handle();
        let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..16 {
            let order = order.clone();
            handle.submit(Priority::Merge, Box::new(move || order.lock().unwrap().push(i)));
        }
        drop(pool);
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }
}
