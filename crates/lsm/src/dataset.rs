//! One LSM-backed dataset partition.
//!
//! [`LsmDataset`] is the unit the facade crate and the benchmarks work with:
//! it owns the in-memory component, the stack of on-disk components (in the
//! configured layout), the cumulative inferred schema, the merge policy and
//! the optional primary-key / secondary indexes.
//!
//! Lifecycle, as in the paper:
//!
//! * inserts/upserts/deletes go to the memtable; the secondary index is kept
//!   correct by fetching the old record first (a point lookup — cheap for row
//!   layouts, linear-search-plus-decode for columnar ones, §4.6);
//! * when the memtable exceeds its budget it is *flushed*: the tuple
//!   compactor observes the flushed records to grow the inferred schema and
//!   the records are written as an on-disk component in the dataset's layout;
//! * the tiering merge policy may then schedule a *merge*, which reconciles
//!   the chosen components (newest version of each key wins, anti-matter
//!   annihilates older records) into a new component and frees the old pages.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use docmodel::cmp::OrderedValue;
use docmodel::{Path, Value};
use persist::{CrashPoint, DurableStore, ManifestData, ManifestStore, PersistedConfig, WalRecord};
use schema::{Schema, SchemaBuilder};
use storage::amax::AmaxConfig;
use storage::component::{Component, ComponentConfig, ComponentReader, Entry};
use storage::pagestore::{BufferCache, IoStats, PageStore};
use storage::LayoutKind;

use crate::index::{PrimaryKeyIndex, SecondaryIndex};
use crate::memtable::Memtable;
use crate::policy::{MergeDecision, TieringPolicy};
use crate::Result;

/// Configuration of one dataset partition.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Dataset name (used in experiment output).
    pub name: String,
    /// Storage layout of on-disk components.
    pub layout: LayoutKind,
    /// Name of the primary-key field (must be present in every record).
    pub key_field: String,
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_budget: usize,
    /// Page size of the simulated disk.
    pub page_size: usize,
    /// Buffer-cache capacity in pages.
    pub cache_pages: usize,
    /// Merge policy.
    pub policy: TieringPolicy,
    /// Maintain a primary-key index to avoid point lookups for new keys.
    pub primary_key_index: bool,
    /// Maintain a secondary index on this path (e.g. `timestamp`).
    pub secondary_index_on: Option<Path>,
    /// Apply page-level compression.
    pub compress_pages: bool,
    /// AMAX-specific knobs.
    pub amax: AmaxConfig,
}

impl DatasetConfig {
    /// A reasonable laptop-scale default for the given layout.
    pub fn new(name: impl Into<String>, layout: LayoutKind) -> DatasetConfig {
        DatasetConfig {
            name: name.into(),
            layout,
            key_field: "id".to_string(),
            memtable_budget: 4 << 20,
            page_size: 128 * 1024,
            cache_pages: 256,
            policy: TieringPolicy::default(),
            primary_key_index: true,
            secondary_index_on: None,
            compress_pages: true,
            amax: AmaxConfig::default(),
        }
    }

    /// Builder-style: set the primary-key field name.
    pub fn with_key_field(mut self, key: impl Into<String>) -> Self {
        self.key_field = key.into();
        self
    }

    /// Builder-style: set the memtable budget in bytes.
    pub fn with_memtable_budget(mut self, bytes: usize) -> Self {
        self.memtable_budget = bytes;
        self
    }

    /// Builder-style: set the page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Builder-style: declare a secondary index.
    pub fn with_secondary_index(mut self, path: Path) -> Self {
        self.secondary_index_on = Some(path);
        self
    }

    /// The durable subset of this configuration, as recorded in manifests.
    pub fn to_persisted(&self) -> PersistedConfig {
        PersistedConfig {
            name: self.name.clone(),
            layout: self.layout,
            key_field: self.key_field.clone(),
            memtable_budget: self.memtable_budget as u64,
            page_size: self.page_size as u64,
            cache_pages: self.cache_pages as u64,
            primary_key_index: self.primary_key_index,
            secondary_index_on: self.secondary_index_on.as_ref().map(|p| p.to_string()),
            compress_pages: self.compress_pages,
            amax_record_limit: self.amax.record_limit as u64,
            amax_empty_page_tolerance: self.amax.empty_page_tolerance,
            policy_size_ratio: self.policy.size_ratio,
            policy_max_components: self.policy.max_components as u64,
        }
    }

    /// Reconstruct a configuration from a manifest (the inverse of
    /// [`DatasetConfig::to_persisted`]).
    pub fn from_persisted(persisted: &PersistedConfig) -> DatasetConfig {
        DatasetConfig {
            name: persisted.name.clone(),
            layout: persisted.layout,
            key_field: persisted.key_field.clone(),
            memtable_budget: persisted.memtable_budget as usize,
            page_size: persisted.page_size as usize,
            cache_pages: persisted.cache_pages as usize,
            policy: TieringPolicy {
                size_ratio: persisted.policy_size_ratio,
                max_components: persisted.policy_max_components as usize,
            },
            primary_key_index: persisted.primary_key_index,
            secondary_index_on: persisted
                .secondary_index_on
                .as_deref()
                .map(Path::parse),
            compress_pages: persisted.compress_pages,
            amax: AmaxConfig {
                record_limit: persisted.amax_record_limit as usize,
                empty_page_tolerance: persisted.amax_empty_page_tolerance,
            },
        }
    }
}

/// Counters describing ingestion activity.
#[derive(Debug, Default, Clone, Copy)]
pub struct IngestStats {
    /// Records inserted or upserted.
    pub records_ingested: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Number of merge operations.
    pub merges: u64,
    /// Point lookups performed to maintain the secondary index.
    pub maintenance_lookups: u64,
    /// Wall-clock time spent in flushes.
    pub flush_time: Duration,
    /// Wall-clock time spent in merges.
    pub merge_time: Duration,
}

/// One LSM dataset partition.
pub struct LsmDataset {
    config: DatasetConfig,
    cache: BufferCache,
    memtable: Memtable,
    components: Vec<Component>,
    schema_builder: SchemaBuilder,
    pk_index: PrimaryKeyIndex,
    secondary: Option<SecondaryIndex>,
    next_component_id: u64,
    stats: IngestStats,
    /// WAL + manifest + file-backed pages, for datasets opened from a
    /// directory; `None` for in-memory datasets.
    durable: Option<DurableStore>,
}

impl LsmDataset {
    /// Create an empty dataset with its own simulated disk.
    pub fn new(config: DatasetConfig) -> LsmDataset {
        let store = PageStore::with_page_size(config.page_size);
        let cache = BufferCache::new(store, config.cache_pages);
        LsmDataset::with_cache(config, cache)
    }

    /// Create an empty dataset on an existing store/cache (used when several
    /// datasets share one simulated disk, as partitions share an NC's cache).
    pub fn with_cache(config: DatasetConfig, cache: BufferCache) -> LsmDataset {
        let secondary = config.secondary_index_on.as_ref().map(|_| SecondaryIndex::new());
        let schema_builder = SchemaBuilder::new(Some(config.key_field.clone()));
        LsmDataset {
            config,
            cache,
            memtable: Memtable::new(),
            components: Vec::new(),
            schema_builder,
            pk_index: PrimaryKeyIndex::new(),
            secondary,
            next_component_id: 0,
            stats: IngestStats::default(),
            durable: None,
        }
    }

    /// Open a **durable** dataset rooted at the directory `dir`, creating it
    /// if needed and recovering it if it already exists.
    ///
    /// Recovery follows the protocol documented in the `persist` crate: the
    /// manifest defines the on-disk components and the schema snapshot; the
    /// WAL is replayed into the memtable; the primary-key and secondary
    /// indexes are rebuilt from the recovered state. Runtime knobs
    /// (memtable budget, cache size, merge policy) come from `config`;
    /// `config.key_field` must match the persisted dataset.
    pub fn open(dir: impl AsRef<std::path::Path>, config: DatasetConfig) -> Result<LsmDataset> {
        let (durable, recovered) = DurableStore::open(dir.as_ref(), config.page_size)?;
        let cache = BufferCache::new(durable.page_store().clone(), config.cache_pages);
        let mut dataset = LsmDataset::with_cache(config, cache);

        if let Some(manifest) = recovered.manifest {
            if manifest.config.key_field != dataset.config.key_field {
                return Err(crate::LsmError::new(format!(
                    "dataset at {} has key field '{}', config says '{}'",
                    dir.as_ref().display(),
                    manifest.config.key_field,
                    dataset.config.key_field
                )));
            }
            dataset.schema_builder = SchemaBuilder::from_schema(manifest.schema.clone());
            dataset.next_component_id = manifest.next_component_id;
            let component_config = dataset.component_config();
            for desc in manifest.components {
                dataset.components.push(Component::open(
                    &dataset.cache,
                    &component_config,
                    manifest.schema.clone(),
                    desc,
                ));
            }
        }
        for record in recovered.wal_records {
            match record {
                WalRecord::Insert { key, record } => {
                    dataset.memtable.insert(key, record);
                }
                WalRecord::Delete { key } => {
                    dataset.memtable.delete(key);
                }
            }
        }
        dataset.durable = Some(durable);
        dataset.rebuild_indexes()?;
        Ok(dataset)
    }

    /// Reopen a durable dataset from its directory alone: the persisted
    /// configuration in the manifest is used (a dataset directory is
    /// self-describing). Fails if the directory has no manifest yet.
    pub fn reopen(dir: impl AsRef<std::path::Path>) -> Result<LsmDataset> {
        let (_, manifest) = ManifestStore::open(dir.as_ref())?;
        let Some(manifest) = manifest else {
            return Err(crate::LsmError::new(format!(
                "no manifest in {} — reopen only works on a flushed dataset (use LsmDataset::open with a config to create one)",
                dir.as_ref().display()
            )));
        };
        LsmDataset::open(dir, DatasetConfig::from_persisted(&manifest.config))
    }

    /// Rebuild the in-memory indexes (primary-key filter and the optional
    /// secondary index) from the recovered components and memtable.
    fn rebuild_indexes(&mut self) -> Result<()> {
        let index_path = self.config.secondary_index_on.clone();
        if !self.config.primary_key_index && index_path.is_none() {
            return Ok(());
        }
        // Reconcile newest-first so each key contributes its live version.
        let mut merged: BTreeMap<OrderedValue, Option<Value>> = BTreeMap::new();
        for (key, doc) in self.memtable.iter() {
            merged
                .entry(OrderedValue(key.clone()))
                .or_insert_with(|| doc.cloned());
        }
        let projection: Vec<Path> = index_path.iter().cloned().collect();
        for component in self.components.iter().rev() {
            for entry in component.scan(Some(&projection))? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc);
            }
        }
        for (key, doc) in &merged {
            if self.config.primary_key_index {
                // Every key ever written may exist on disk, so the filter
                // includes deleted keys too (it only answers "may exist").
                self.pk_index.insert(&key.0);
            }
            if let (Some(path), Some(secondary), Some(doc)) =
                (index_path.as_ref(), self.secondary.as_mut(), doc.as_ref())
            {
                for value in path.evaluate(doc) {
                    secondary.insert(value, &key.0);
                }
            }
        }
        Ok(())
    }

    /// `true` when the dataset is backed by a directory (WAL + manifest).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Force acknowledged WAL records to the device (group commit). No-op
    /// for in-memory datasets.
    pub fn sync(&mut self) -> Result<()> {
        match self.durable.as_mut() {
            Some(durable) => durable.sync_wal(),
            None => Ok(()),
        }
    }

    /// Bytes currently in the WAL (0 for in-memory datasets).
    pub fn wal_bytes(&self) -> u64 {
        self.durable.as_ref().map(DurableStore::wal_bytes).unwrap_or(0)
    }

    /// Version of the last committed manifest (0 for in-memory datasets or
    /// before the first flush).
    pub fn manifest_version(&self) -> u64 {
        self.durable
            .as_ref()
            .map(DurableStore::manifest_version)
            .unwrap_or(0)
    }

    /// Arm a crash point in the durability layer (recovery tests). No-op for
    /// in-memory datasets.
    pub fn set_crash_point(&mut self, point: CrashPoint) {
        if let Some(durable) = self.durable.as_mut() {
            durable.set_crash_point(point);
        }
    }

    fn manifest_data(&self) -> ManifestData {
        ManifestData {
            version: 0, // assigned by the manifest store at commit
            config: self.config.to_persisted(),
            next_component_id: self.next_component_id,
            schema: self.schema_builder.schema().clone(),
            components: self.components.iter().map(Component::describe).collect(),
        }
    }

    /// The dataset's configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The buffer cache (shared with the query engine for I/O accounting).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// The cumulative inferred schema.
    pub fn schema(&self) -> &Schema {
        self.schema_builder.schema()
    }

    /// Ingestion counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// I/O counters of the underlying simulated disk.
    pub fn io_stats(&self) -> IoStats {
        self.cache.store().stats()
    }

    /// Number of on-disk components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Total bytes stored on disk for the primary index.
    pub fn primary_stored_bytes(&self) -> u64 {
        self.components.iter().map(|c| c.meta().stored_bytes).sum()
    }

    /// Total bytes including the (approximated) secondary structures.
    pub fn total_stored_bytes(&self) -> u64 {
        let pk = if self.config.primary_key_index {
            self.pk_index.approx_bytes()
        } else {
            0
        };
        let sec = self.secondary.as_ref().map(SecondaryIndex::approx_bytes).unwrap_or(0);
        self.primary_stored_bytes() + pk + sec
    }

    fn extract_key(&self, record: &Value) -> Result<Value> {
        record
            .get_field(&self.config.key_field)
            .filter(|v| v.is_atomic() && !v.is_null())
            .cloned()
            .ok_or_else(|| {
                crate::LsmError::new(format!(
                    "record lacks an atomic primary key field '{}'",
                    self.config.key_field
                ))
            })
    }

    /// Insert (or upsert) a record. For durable datasets the record is
    /// appended to the WAL before it is applied, so once `insert` returns it
    /// survives a process crash. The WAL is flushed to the OS immediately
    /// but fsynced lazily — call [`LsmDataset::sync`] where device-level
    /// durability (power loss) is required.
    pub fn insert(&mut self, record: Value) -> Result<()> {
        let key = self.extract_key(&record)?;
        // Fallible work (index-maintenance lookups can hit I/O errors)
        // happens before the WAL append: a failed insert must not leave a
        // logged record behind for recovery to resurrect.
        self.maintain_secondary_for_upsert(&key, Some(&record))?;
        if let Some(durable) = self.durable.as_mut() {
            durable.log_insert(&key, &record)?;
        }
        self.pk_index.insert(&key);
        self.memtable.insert(key, record);
        self.stats.records_ingested += 1;
        self.maybe_flush()
    }

    /// Delete the record with the given key (an anti-matter entry is added).
    /// Logged to the WAL like [`LsmDataset::insert`], with the same
    /// crash-durability caveats.
    pub fn delete(&mut self, key: Value) -> Result<()> {
        self.maintain_secondary_for_upsert(&key, None)?;
        if let Some(durable) = self.durable.as_mut() {
            durable.log_delete(&key)?;
        }
        self.memtable.delete(key);
        self.stats.deletes += 1;
        self.maybe_flush()
    }

    /// Secondary-index maintenance: fetch the old record (if the key may
    /// exist) to remove its stale entry, then add the new entry.
    fn maintain_secondary_for_upsert(
        &mut self,
        key: &Value,
        new_record: Option<&Value>,
    ) -> Result<()> {
        let Some(index_path) = self.config.secondary_index_on.clone() else {
            return Ok(());
        };
        let may_exist = if self.config.primary_key_index {
            self.pk_index.contains(key)
        } else {
            true
        };
        if may_exist {
            self.stats.maintenance_lookups += 1;
            if let Some(old) = self.lookup(key, None)? {
                let old_values: Vec<Value> =
                    index_path.evaluate(&old).into_iter().cloned().collect();
                if let Some(secondary) = self.secondary.as_mut() {
                    for v in old_values {
                        secondary.remove(&v, key);
                    }
                }
            }
        }
        if let (Some(secondary), Some(record)) = (self.secondary.as_mut(), new_record) {
            for v in index_path.evaluate(record) {
                secondary.insert(v, key);
            }
        }
        Ok(())
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.memtable.approx_bytes() >= self.config.memtable_budget {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush the in-memory component to disk (no-op when it is empty).
    pub fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let entries = self.memtable.drain_sorted();
        // Tuple compactor: infer the schema from the flushed records (§2.2).
        for (_, record) in &entries {
            if let Some(record) = record {
                self.schema_builder.observe(record);
            }
        }
        let schema = self.schema_builder.schema().clone();
        let config = self.component_config();
        let component = Component::write(
            &self.cache,
            &config,
            schema,
            &entries,
            self.next_component_id,
        )?;
        self.next_component_id += 1;
        self.components.push(component);
        // Durable flush: sync pages, commit the manifest recording the new
        // component (and the schema snapshot), then truncate the WAL.
        if self.durable.is_some() {
            let data = self.manifest_data();
            if let Some(durable) = self.durable.as_mut() {
                durable.commit_flush(data)?;
            }
        }
        self.stats.flushes += 1;
        self.stats.flush_time += started.elapsed();
        self.maybe_merge()
    }

    fn component_config(&self) -> ComponentConfig {
        ComponentConfig {
            layout: self.config.layout,
            amax: self.config.amax,
            compress_pages: self.config.compress_pages,
        }
    }

    fn maybe_merge(&mut self) -> Result<()> {
        // Sizes newest-first for the policy.
        let sizes: Vec<u64> = self
            .components
            .iter()
            .rev()
            .map(|c| c.meta().stored_bytes)
            .collect();
        match self.config.policy.decide(&sizes) {
            MergeDecision::None => Ok(()),
            MergeDecision::Merge(newest_first) => {
                // Translate newest-first indexes into positions in
                // `self.components` (which is oldest-first).
                let n = self.components.len();
                let mut positions: Vec<usize> = newest_first.iter().map(|i| n - 1 - i).collect();
                positions.sort_unstable();
                self.merge_components(&positions)
            }
        }
    }

    /// Merge the components at the given (oldest-first) positions.
    fn merge_components(&mut self, positions: &[usize]) -> Result<()> {
        if positions.len() < 2 {
            return Ok(());
        }
        let started = Instant::now();
        let includes_oldest = positions.first() == Some(&0);
        // Reconcile newest-first so the most recent version of each key wins.
        let mut merged: BTreeMap<OrderedValue, Option<Value>> = BTreeMap::new();
        for &pos in positions.iter().rev() {
            let component = &self.components[pos];
            for entry in component.scan(None)? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc);
            }
        }
        let entries: Vec<Entry> = merged
            .into_iter()
            .filter(|(_, doc)| {
                // Anti-matter annihilates older records; it can itself be
                // dropped once the merge includes the oldest component.
                doc.is_some() || !includes_oldest
            })
            .map(|(k, v)| (k.0, v))
            .collect();

        let schema = self.schema_builder.schema().clone();
        let config = self.component_config();
        let new_component = Component::write(
            &self.cache,
            &config,
            schema,
            &entries,
            self.next_component_id,
        )?;
        self.next_component_id += 1;

        // Remove the merged components (back to front to keep positions
        // valid) and insert the new one at the first position.
        let first = positions[0];
        let mut freed_pages: Vec<storage::PageId> = Vec::new();
        for &pos in positions.iter().rev() {
            let old = self.components.remove(pos);
            freed_pages.extend_from_slice(&old.meta().pages);
        }
        self.components.insert(first, new_component);
        // Durable merge: the manifest swap makes the merged component
        // visible; the inputs' pages are freed only after the swap commits,
        // so a crash before the commit leaves the old components intact.
        if self.durable.is_some() {
            let data = self.manifest_data();
            if let Some(durable) = self.durable.as_mut() {
                durable.commit_merge(data)?;
            }
        }
        self.cache.store().free_pages(&freed_pages);
        self.stats.merges += 1;
        self.stats.merge_time += started.elapsed();
        Ok(())
    }

    /// Force-flush and merge everything down to a single component (used at
    /// the end of ingestion so query experiments run against a settled tree).
    pub fn compact_fully(&mut self) -> Result<()> {
        self.flush()?;
        while self.components.len() > 1 {
            let positions: Vec<usize> = (0..self.components.len()).collect();
            self.merge_components(&positions)?;
        }
        Ok(())
    }

    /// Point lookup: newest version of `key`, reconciling the memtable and
    /// every component (newest first). `None` when the key does not exist or
    /// was deleted.
    pub fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Value>> {
        if let Some(entry) = self.memtable.get(key) {
            return Ok(entry.cloned());
        }
        for component in self.components.iter().rev() {
            if let Some(entry) = component.lookup(key, projection)? {
                return Ok(entry);
            }
        }
        Ok(None)
    }

    /// Batched point lookups for the (sorted) keys produced by a secondary
    /// index probe (§4.6).
    pub fn lookup_sorted_keys(
        &self,
        keys: &mut [Value],
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        keys.sort_by(docmodel::total_cmp);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys.iter() {
            if let Some(doc) = self.lookup(key, projection)? {
                out.push(doc);
            }
        }
        Ok(out)
    }

    /// Scan the dataset, reconciling duplicates and dropping anti-matter.
    /// Only the projected paths are assembled from columnar components.
    pub fn scan(&self, projection: Option<&[Path]>) -> Result<Vec<Value>> {
        let mut merged: BTreeMap<OrderedValue, Option<Value>> = BTreeMap::new();
        for (key, doc) in self.memtable.iter() {
            merged
                .entry(OrderedValue(key.clone()))
                .or_insert_with(|| doc.cloned());
        }
        for component in self.components.iter().rev() {
            for entry in component.scan(projection)? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc);
            }
        }
        Ok(merged.into_values().flatten().collect())
    }

    /// Number of live records (COUNT(*)): only primary keys are read, which
    /// for AMAX means Page 0 alone.
    pub fn count(&self) -> Result<usize> {
        let mut merged: BTreeMap<OrderedValue, bool> = BTreeMap::new();
        for (key, doc) in self.memtable.iter() {
            merged
                .entry(OrderedValue(key.clone()))
                .or_insert(doc.is_some());
        }
        for component in self.components.iter().rev() {
            for entry in component.scan(Some(&[]))? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc.is_some());
            }
        }
        Ok(merged.values().filter(|live| **live).count())
    }

    /// Answer a range query on the secondary index: probe the index, sort the
    /// resulting primary keys, and perform batched point lookups.
    pub fn secondary_range(
        &self,
        lo: &Value,
        hi: &Value,
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        let secondary = self
            .secondary
            .as_ref()
            .ok_or_else(|| crate::LsmError::new("dataset has no secondary index"))?;
        let mut keys = secondary.range(lo, hi);
        self.lookup_sorted_keys(&mut keys, projection)
    }

    /// Direct access to the on-disk components (used by the query engine).
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Entries still in the in-memory component (used by the query engine).
    pub fn memtable_entries(&self) -> Vec<(Value, Option<Value>)> {
        self.memtable
            .iter()
            .map(|(k, v)| (k.clone(), v.cloned()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn tiny_config(layout: LayoutKind) -> DatasetConfig {
        DatasetConfig::new("test", layout)
            .with_memtable_budget(8 * 1024)
            .with_page_size(4 * 1024)
    }

    fn sample_record(i: i64) -> Value {
        doc!({
            "id": i,
            "user": {"name": (format!("user{}", i % 13)), "followers": (i % 997)},
            "text": (format!("record {i} body text with characters")),
            "timestamp": (1_000_000 + i),
            "tags": [(format!("tag{}", i % 5))]
        })
    }

    #[test]
    fn ingest_flush_merge_scan_all_layouts() {
        for layout in LayoutKind::ALL {
            let mut ds = LsmDataset::new(tiny_config(layout));
            for i in 0..500 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.flush().unwrap();
            assert!(ds.stats().flushes > 1, "{layout:?} should have flushed repeatedly");
            assert!(ds.component_count() >= 1);

            let docs = ds.scan(None).unwrap();
            assert_eq!(docs.len(), 500, "{layout:?}");
            assert_eq!(ds.count().unwrap(), 500, "{layout:?}");
            // Keys come back in order and records are intact.
            assert_eq!(docs[7].get_field("id"), Some(&Value::Int(7)));
            assert!(docs[7].get_path_str("user.name").is_some());
        }
    }

    #[test]
    fn updates_and_deletes_reconcile() {
        for layout in [LayoutKind::Vb, LayoutKind::Amax] {
            let mut ds = LsmDataset::new(tiny_config(layout));
            for i in 0..200 {
                ds.insert(sample_record(i)).unwrap();
            }
            // Update half of the records and delete a few.
            for i in (0..200).step_by(2) {
                let mut updated = sample_record(i);
                updated.set_field("text", Value::from("updated"));
                ds.insert(updated).unwrap();
            }
            for i in [3i64, 77, 199] {
                ds.delete(Value::Int(i)).unwrap();
            }
            ds.compact_fully().unwrap();
            assert_eq!(ds.component_count(), 1);

            assert_eq!(ds.count().unwrap(), 197, "{layout:?}");
            let doc = ds.lookup(&Value::Int(10), None).unwrap().unwrap();
            assert_eq!(doc.get_field("text"), Some(&Value::from("updated")));
            let doc = ds.lookup(&Value::Int(11), None).unwrap().unwrap();
            assert_ne!(doc.get_field("text"), Some(&Value::from("updated")));
            assert!(ds.lookup(&Value::Int(77), None).unwrap().is_none());
            assert!(ds.lookup(&Value::Int(100_000), None).unwrap().is_none());
        }
    }

    #[test]
    fn projection_scans_only_requested_fields() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..100 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        let projected = ds.scan(Some(&[Path::parse("user.followers")])).unwrap();
        assert_eq!(projected.len(), 100);
        assert!(projected[0].get_path_str("user.followers").is_some());
        assert!(projected[0].get_field("text").is_none());
    }

    #[test]
    fn secondary_index_range_matches_full_scan_filter() {
        let config = tiny_config(LayoutKind::Apax).with_secondary_index(Path::parse("timestamp"));
        let mut ds = LsmDataset::new(config);
        for i in 0..300 {
            ds.insert(sample_record(i)).unwrap();
        }
        // Update some records so maintenance lookups happen.
        for i in 0..50 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.stats().maintenance_lookups > 0);

        let lo = Value::Int(1_000_100);
        let hi = Value::Int(1_000_149);
        let via_index = ds.secondary_range(&lo, &hi, None).unwrap();
        assert_eq!(via_index.len(), 50);
        let via_scan: Vec<Value> = ds
            .scan(None)
            .unwrap()
            .into_iter()
            .filter(|d| {
                let ts = d.get_field("timestamp").and_then(Value::as_int).unwrap();
                (1_000_100..=1_000_149).contains(&ts)
            })
            .collect();
        assert_eq!(via_index.len(), via_scan.len());
    }

    #[test]
    fn schema_grows_across_flushes_and_is_a_superset() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..50 {
            ds.insert(doc!({"id": i, "a": 1})).unwrap();
        }
        ds.flush().unwrap();
        let cols_before = schema::columns_of(ds.schema()).len();
        for i in 50..100 {
            ds.insert(doc!({"id": i, "a": "heterogeneous now", "b": {"c": 2.5}})).unwrap();
        }
        ds.flush().unwrap();
        let cols_after = schema::columns_of(ds.schema()).len();
        assert!(cols_after > cols_before);
        // Old and new records both survive scans despite the schema change.
        assert_eq!(ds.count().unwrap(), 100);
        let docs = ds.scan(None).unwrap();
        assert_eq!(docs.len(), 100);
    }

    #[test]
    fn missing_key_is_an_error() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Vb));
        assert!(ds.insert(doc!({"no_key": 1})).is_err());
        assert!(ds.insert(doc!({"id": null})).is_err());
    }

    #[test]
    fn stored_bytes_accounting() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Apax));
        for i in 0..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.primary_stored_bytes() > 0);
        assert!(ds.total_stored_bytes() >= ds.primary_stored_bytes());
        assert!(ds.io_stats().pages_written > 0);
    }
}
