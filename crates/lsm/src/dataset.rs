//! One LSM-backed dataset partition.
//!
//! [`LsmDataset`] is the unit the facade crate and the benchmarks work with:
//! it owns the in-memory component, the stack of on-disk components (in the
//! configured layout), the cumulative inferred schema, the merge policy and
//! the optional primary-key / secondary indexes.
//!
//! Lifecycle, as in the paper:
//!
//! * inserts/upserts/deletes go to the memtable; the secondary index is kept
//!   correct by fetching the old record first (a point lookup — cheap for row
//!   layouts, linear-search-plus-decode for columnar ones, §4.6);
//! * when the memtable exceeds its budget it is *sealed* and flushed: the
//!   tuple compactor observes the flushed records to grow the inferred
//!   schema and the records are written as an on-disk component in the
//!   dataset's layout;
//! * the tiering merge policy may then schedule a *merge*, which reconciles
//!   the chosen components (newest version of each key wins, anti-matter
//!   annihilates older records) into a new component and frees the old pages.
//!
//! ## Concurrency
//!
//! All operations take `&self`; the dataset can be shared across threads
//! (writers, readers, and — with [`DatasetConfig::background`] — its own
//! flush/merge worker). The mutable state is split so readers never wait on
//! flushes or merges:
//!
//! * a small **write lock** guards the active memtable and the in-memory
//!   indexes — held only for the duration of one insert/delete (or a brief
//!   snapshot clone);
//! * the rest of the tree (sealed memtables + on-disk components) is an
//!   immutable [`TreeState`], swapped atomically behind an `RwLock<Arc<_>>`;
//!   readers grab the `Arc` and are done;
//! * a **maintenance lock** serialises flushes and merges (the fair FCFS
//!   scheduling of the paper's setup) and owns the schema builder and
//!   component id counter;
//! * the crate-private `Scheduler` coordinates the optional background
//!   worker and applies ingest backpressure when sealed memtables pile up.

use std::sync::Arc;
use std::time::{Duration, Instant};

use docmodel::{Path, Value};
use parking_lot::{Mutex, RwLock};
use persist::{CrashPoint, DurableStore, ManifestData, ManifestStore, PersistedConfig, WalRecord};
use schema::{Schema, SchemaBuilder};
use storage::amax::AmaxConfig;
use storage::component::{Component, ComponentConfig, ComponentReader, Entry};
use storage::pagestore::{BufferCache, IoStats, PageStore};
use storage::LayoutKind;
use telemetry::{Event, EventKind, MetricsSnapshot, Telemetry};

use crate::index::{PrimaryKeyIndex, SecondaryIndex};
use crate::memtable::Memtable;
use crate::policy::{MergeDecision, TieringPolicy};
use crate::scheduler::Scheduler;
use crate::snapshot::{EntryMergeCursor, SealedMemtable, Snapshot, TreeState};
use crate::Result;

/// Configuration of one dataset partition.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Dataset name (used in experiment output).
    pub name: String,
    /// Storage layout of on-disk components.
    pub layout: LayoutKind,
    /// Name of the primary-key field (must be present in every record).
    pub key_field: String,
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_budget: usize,
    /// Page size of the simulated disk.
    pub page_size: usize,
    /// Buffer-cache capacity in pages.
    pub cache_pages: usize,
    /// Merge policy.
    pub policy: TieringPolicy,
    /// Maintain a primary-key index to avoid point lookups for new keys.
    pub primary_key_index: bool,
    /// Maintain a secondary index on this path (e.g. `timestamp`).
    pub secondary_index_on: Option<Path>,
    /// Apply page-level compression.
    pub compress_pages: bool,
    /// AMAX-specific knobs.
    pub amax: AmaxConfig,
    /// Run flushes and merges on a background worker thread instead of
    /// blocking the inserting thread (the paper's background-job LSM
    /// lifecycle, §2.1/§6.3). Off by default: synchronous mode keeps
    /// single-threaded experiments deterministic.
    pub background: bool,
    /// With `background`: how many sealed memtables may queue before
    /// ingestion is backpressured (blocks until a flush retires one).
    pub max_sealed_memtables: usize,
    /// Record metrics and lifecycle events in the dataset's [`Telemetry`]
    /// registry. On by default; the benchmark's observability experiment
    /// turns it off to measure the instrumentation overhead. Runtime-only,
    /// not persisted.
    pub telemetry_enabled: bool,
}

impl DatasetConfig {
    /// A reasonable laptop-scale default for the given layout.
    pub fn new(name: impl Into<String>, layout: LayoutKind) -> DatasetConfig {
        DatasetConfig {
            name: name.into(),
            layout,
            key_field: "id".to_string(),
            memtable_budget: 4 << 20,
            page_size: 128 * 1024,
            cache_pages: 256,
            policy: TieringPolicy::default(),
            primary_key_index: true,
            secondary_index_on: None,
            compress_pages: true,
            amax: AmaxConfig::default(),
            background: false,
            max_sealed_memtables: 2,
            telemetry_enabled: true,
        }
    }

    /// Builder-style: set the primary-key field name.
    pub fn with_key_field(mut self, key: impl Into<String>) -> Self {
        self.key_field = key.into();
        self
    }

    /// Builder-style: set the memtable budget in bytes.
    pub fn with_memtable_budget(mut self, bytes: usize) -> Self {
        self.memtable_budget = bytes;
        self
    }

    /// Builder-style: set the page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Builder-style: declare a secondary index.
    pub fn with_secondary_index(mut self, path: Path) -> Self {
        self.secondary_index_on = Some(path);
        self
    }

    /// Builder-style: run flushes and merges on a background worker.
    pub fn with_background(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Builder-style: bound the sealed-memtable queue (backpressure point).
    pub fn with_max_sealed(mut self, max: usize) -> Self {
        self.max_sealed_memtables = max.max(1);
        self
    }

    /// Builder-style: enable or disable the telemetry registry.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry_enabled = enabled;
        self
    }

    /// The durable subset of this configuration, as recorded in manifests.
    /// Background-worker knobs are runtime-only and not persisted.
    pub fn to_persisted(&self) -> PersistedConfig {
        PersistedConfig {
            name: self.name.clone(),
            layout: self.layout,
            key_field: self.key_field.clone(),
            memtable_budget: self.memtable_budget as u64,
            page_size: self.page_size as u64,
            cache_pages: self.cache_pages as u64,
            primary_key_index: self.primary_key_index,
            secondary_index_on: self.secondary_index_on.as_ref().map(|p| p.to_string()),
            compress_pages: self.compress_pages,
            amax_record_limit: self.amax.record_limit as u64,
            amax_empty_page_tolerance: self.amax.empty_page_tolerance,
            policy_size_ratio: self.policy.size_ratio,
            policy_max_components: self.policy.max_components as u64,
        }
    }

    /// Reconstruct a configuration from a manifest (the inverse of
    /// [`DatasetConfig::to_persisted`]).
    pub fn from_persisted(persisted: &PersistedConfig) -> DatasetConfig {
        DatasetConfig {
            name: persisted.name.clone(),
            layout: persisted.layout,
            key_field: persisted.key_field.clone(),
            memtable_budget: persisted.memtable_budget as usize,
            page_size: persisted.page_size as usize,
            cache_pages: persisted.cache_pages as usize,
            policy: TieringPolicy {
                size_ratio: persisted.policy_size_ratio,
                max_components: persisted.policy_max_components as usize,
            },
            primary_key_index: persisted.primary_key_index,
            secondary_index_on: persisted
                .secondary_index_on
                .as_deref()
                .map(Path::parse),
            compress_pages: persisted.compress_pages,
            amax: AmaxConfig {
                record_limit: persisted.amax_record_limit as usize,
                empty_page_tolerance: persisted.amax_empty_page_tolerance,
            },
            background: false,
            max_sealed_memtables: 2,
            telemetry_enabled: true,
        }
    }
}

/// State of a dataset's flush/merge worker, as reported by
/// [`LsmDataset::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Synchronous mode: flushes and merges run inline on the writing
    /// thread; there is no worker to be unhealthy.
    Inline,
    /// The background worker is waiting for work.
    Idle,
    /// The background worker is processing (or has signalled work pending).
    Busy,
    /// A background flush/merge failed; the error is parked and every write
    /// will surface it until an explicit `flush()` consumes it for retry.
    Failed,
}

/// Point-in-time health of one dataset partition (see
/// [`LsmDataset::health`]).
#[derive(Debug, Clone)]
pub struct DatasetHealth {
    /// Worker state.
    pub worker: WorkerState,
    /// Most recent background error, from the parked failure or the
    /// telemetry event ring.
    pub last_error: Option<String>,
    /// Sealed memtables queued for flushing (pending maintenance depth).
    pub pending_maintenance: usize,
    /// Ingest stalls caused by backpressure so far.
    pub stalls: u64,
    /// Total time writers spent stalled, in microseconds.
    pub stall_micros: u64,
}

/// Counters describing ingestion activity.
#[derive(Debug, Default, Clone, Copy)]
pub struct IngestStats {
    /// Records inserted or upserted.
    pub records_ingested: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Number of merge operations.
    pub merges: u64,
    /// Point lookups performed to maintain the secondary index.
    pub maintenance_lookups: u64,
    /// Wall-clock time spent in flushes.
    pub flush_time: Duration,
    /// Wall-clock time spent in merges.
    pub merge_time: Duration,
}

impl IngestStats {
    /// Combine counters from several shards/partitions.
    pub fn merged_with(mut self, other: &IngestStats) -> IngestStats {
        self.records_ingested += other.records_ingested;
        self.deletes += other.deletes;
        self.flushes += other.flushes;
        self.merges += other.merges;
        self.maintenance_lookups += other.maintenance_lookups;
        self.flush_time += other.flush_time;
        self.merge_time += other.merge_time;
        self
    }
}

/// State guarded by the write lock: the active memtable and the in-memory
/// indexes maintained on the ingest path.
struct WriteState {
    memtable: Memtable,
    pk_index: PrimaryKeyIndex,
    secondary: Option<SecondaryIndex>,
}

/// State guarded by the maintenance lock: everything a flush or merge
/// mutates besides the published tree.
struct MaintState {
    schema_builder: SchemaBuilder,
    next_component_id: u64,
}

/// The shared core of a dataset (everything except the worker handle).
struct DatasetCore {
    config: DatasetConfig,
    cache: BufferCache,
    durable: Option<Arc<DurableStore>>,
    write: Mutex<WriteState>,
    tree: RwLock<Arc<TreeState>>,
    maint: Mutex<MaintState>,
    stats: Mutex<IngestStats>,
    sched: Scheduler,
    telemetry: Arc<Telemetry>,
}

/// One LSM dataset partition. All operations take `&self`; share it across
/// threads directly (scoped threads) or behind an `Arc`.
pub struct LsmDataset {
    core: Arc<DatasetCore>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Drop for LsmDataset {
    fn drop(&mut self) {
        self.core.sched.shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl LsmDataset {
    /// Create an empty dataset with its own simulated disk.
    pub fn new(config: DatasetConfig) -> LsmDataset {
        let store = PageStore::with_page_size(config.page_size);
        let cache = BufferCache::new(store, config.cache_pages);
        LsmDataset::with_cache(config, cache)
    }

    /// Create an empty dataset on an existing store/cache (used when several
    /// datasets share one simulated disk, as partitions share an NC's cache).
    pub fn with_cache(config: DatasetConfig, cache: BufferCache) -> LsmDataset {
        LsmDataset::assemble(config, cache, None)
    }

    fn assemble(
        config: DatasetConfig,
        cache: BufferCache,
        durable: Option<Arc<DurableStore>>,
    ) -> LsmDataset {
        let secondary = config.secondary_index_on.as_ref().map(|_| SecondaryIndex::new());
        let schema_builder = SchemaBuilder::new(Some(config.key_field.clone()));
        let telemetry = Arc::new(if config.telemetry_enabled {
            Telemetry::new()
        } else {
            Telemetry::disabled()
        });
        if let Some(durable) = durable.as_ref() {
            durable.set_telemetry(telemetry.clone());
        }
        let core = Arc::new(DatasetCore {
            config,
            cache,
            durable,
            write: Mutex::new(WriteState {
                memtable: Memtable::new(),
                pk_index: PrimaryKeyIndex::new(),
                secondary,
            }),
            tree: RwLock::new(Arc::new(TreeState::default())),
            maint: Mutex::new(MaintState {
                schema_builder,
                next_component_id: 0,
            }),
            stats: Mutex::new(IngestStats::default()),
            sched: Scheduler::new(),
            telemetry,
        });
        let worker = if core.config.background {
            let worker_core = core.clone();
            Some(
                std::thread::Builder::new()
                    .name(format!("lsm-flush-{}", core.config.name))
                    .spawn(move || {
                        while worker_core.sched.next_work() {
                            // A panic in flush/merge must not strand waiters
                            // on a dead worker: park it as a failure instead.
                            let result = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| worker_core.process_pending()),
                            )
                            .unwrap_or_else(|panic| {
                                let msg = panic
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| panic.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "opaque panic payload".to_string());
                                Err(crate::LsmError::new(format!(
                                    "background flush/merge worker panicked: {msg}"
                                )))
                            });
                            if let Err(err) = &result {
                                // Trace the parked error *before* it becomes
                                // visible to writers, so health() backed by
                                // the event ring never lags admit().
                                worker_core.telemetry.emit(EventKind::WorkerError {
                                    message: err.to_string(),
                                });
                            }
                            worker_core.sched.work_done(result);
                        }
                    })
                    .expect("spawn flush/merge worker"),
            )
        } else {
            None
        };
        LsmDataset { core, worker }
    }

    /// Open a **durable** dataset rooted at the directory `dir`, creating it
    /// if needed and recovering it if it already exists.
    ///
    /// Recovery follows the protocol documented in the `persist` crate: the
    /// manifest defines the on-disk components and the schema snapshot; the
    /// WAL segments are replayed into the memtable; the primary-key and
    /// secondary indexes are rebuilt from the recovered state. Runtime knobs
    /// (memtable budget, cache size, merge policy, background workers) come
    /// from `config`; `config.key_field` must match the persisted dataset.
    pub fn open(dir: impl AsRef<std::path::Path>, config: DatasetConfig) -> Result<LsmDataset> {
        let (durable, recovered) = DurableStore::open(dir.as_ref(), config.page_size)?;
        let cache = BufferCache::new(durable.page_store().clone(), config.cache_pages);
        let dataset = LsmDataset::assemble(config, cache, Some(Arc::new(durable)));
        let core = &dataset.core;

        if let Some(manifest) = recovered.manifest {
            if manifest.config.key_field != core.config.key_field {
                return Err(crate::LsmError::new(format!(
                    "dataset at {} has key field '{}', config says '{}'",
                    dir.as_ref().display(),
                    manifest.config.key_field,
                    core.config.key_field
                )));
            }
            let mut maint = core.maint.lock();
            maint.schema_builder = SchemaBuilder::from_schema(manifest.schema.clone());
            maint.next_component_id = manifest.next_component_id;
            let component_config = core.component_config();
            let mut components = Vec::new();
            for desc in manifest.components {
                components.push(Arc::new(Component::open(
                    &core.cache,
                    &component_config,
                    manifest.schema.clone(),
                    desc,
                )));
            }
            *core.tree.write() = Arc::new(TreeState {
                sealed: Vec::new(),
                components,
            });
        }
        let replayed_records = recovered.wal_records.len();
        {
            let mut write = core.write.lock();
            for record in recovered.wal_records {
                match record {
                    WalRecord::Insert { key, record } => {
                        write.memtable.insert(key, record);
                    }
                    WalRecord::Delete { key } => {
                        write.memtable.delete(key);
                    }
                }
            }
        }
        core.rebuild_indexes()?;
        core.telemetry.emit(EventKind::RecoveryReplay {
            segments: recovered.wal_segments_replayed,
            records: replayed_records,
            torn_tail_healed: recovered.torn_tail_healed,
            components: core.tree.read().components.len(),
        });
        Ok(dataset)
    }

    /// Reopen a durable dataset from its directory alone: the persisted
    /// configuration in the manifest is used (a dataset directory is
    /// self-describing). Fails if the directory has no manifest yet.
    pub fn reopen(dir: impl AsRef<std::path::Path>) -> Result<LsmDataset> {
        let (_, manifest) = ManifestStore::open(dir.as_ref())?;
        let Some(manifest) = manifest else {
            return Err(crate::LsmError::new(format!(
                "no manifest in {} — reopen only works on a flushed dataset (use LsmDataset::open with a config to create one)",
                dir.as_ref().display()
            )));
        };
        LsmDataset::open(dir, DatasetConfig::from_persisted(&manifest.config))
    }

    /// `true` when the dataset is backed by a directory (WAL + manifest).
    pub fn is_durable(&self) -> bool {
        self.core.durable.is_some()
    }

    /// Force acknowledged WAL records to the device (group commit). No-op
    /// for in-memory datasets.
    pub fn sync(&self) -> Result<()> {
        match self.core.durable.as_ref() {
            Some(durable) => durable.sync_wal(),
            None => Ok(()),
        }
    }

    /// Bytes currently in the WAL (0 for in-memory datasets).
    pub fn wal_bytes(&self) -> u64 {
        self.core
            .durable
            .as_ref()
            .map(|d| d.wal_bytes())
            .unwrap_or(0)
    }

    /// Version of the last committed manifest (0 for in-memory datasets or
    /// before the first flush).
    pub fn manifest_version(&self) -> u64 {
        self.core
            .durable
            .as_ref()
            .map(|d| d.manifest_version())
            .unwrap_or(0)
    }

    /// Arm a crash point in the durability layer (recovery tests). No-op for
    /// in-memory datasets.
    pub fn set_crash_point(&self, point: CrashPoint) {
        if let Some(durable) = self.core.durable.as_ref() {
            durable.set_crash_point(point);
        }
    }

    /// The dataset's configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.core.config
    }

    /// The buffer cache (shared with the query engine for I/O accounting).
    pub fn cache(&self) -> &BufferCache {
        &self.core.cache
    }

    /// A copy of the cumulative inferred schema.
    pub fn schema(&self) -> Schema {
        self.core.maint.lock().schema_builder.schema().clone()
    }

    /// Ingestion counters.
    pub fn stats(&self) -> IngestStats {
        *self.core.stats.lock()
    }

    /// The dataset's telemetry registry (counters, histograms, event ring).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.core.telemetry
    }

    /// The most recent `n` lifecycle events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        self.core.telemetry.recent_events(n)
    }

    /// A point-in-time metrics snapshot: every registry counter and
    /// histogram, the sampled I/O counters of the underlying store
    /// (`storage.*`), current-state gauges (`lsm.*`, `wal.*`), and the
    /// derived write/read/space amplification gauges (`amp.*`) — the latter
    /// always recomputable from the raw counters in the same snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.core.telemetry.snapshot(&self.core.config.name);
        let io = self.io_stats();
        snap.push_counter("storage.pages_read", io.pages_read);
        snap.push_counter("storage.pages_written", io.pages_written);
        snap.push_counter("storage.bytes_read", io.bytes_read);
        snap.push_counter("storage.bytes_written", io.bytes_written);
        snap.push_counter("storage.cache_hits", io.cache_hits);
        snap.push_gauge(
            "storage.allocated_bytes",
            self.core.cache.store().allocated_bytes() as f64,
        );
        snap.push_gauge("lsm.components", self.component_count() as f64);
        snap.push_gauge("lsm.live_stored_bytes", self.primary_stored_bytes() as f64);
        snap.push_gauge("lsm.sealed_queue_depth", self.sealed_count() as f64);
        snap.push_gauge(
            "lsm.memtable_bytes",
            self.core.write.lock().memtable.approx_bytes() as f64,
        );
        snap.push_gauge("wal.bytes", self.wal_bytes() as f64);
        snap.push_gauge("manifest.version", self.manifest_version() as f64);
        snap.with_derived_gauges()
    }

    /// Health of the dataset's background machinery, backed by the
    /// scheduler's non-consuming status and the telemetry event ring: a
    /// parked worker error shows up here *without* being consumed, so the
    /// next write still observes it.
    pub fn health(&self) -> DatasetHealth {
        let status = self.core.sched.status();
        let worker = if !self.core.config.background {
            WorkerState::Inline
        } else if status.failed.is_some() {
            WorkerState::Failed
        } else if status.busy || status.pending {
            WorkerState::Busy
        } else {
            WorkerState::Idle
        };
        // Prefer the live parked error; fall back to the event ring so an
        // error drained by a retry is still reported until it scrolls off.
        let last_error = status
            .failed
            .map(|e| e.to_string())
            .or_else(|| self.core.telemetry.events.last_error());
        DatasetHealth {
            worker,
            last_error,
            pending_maintenance: status.sealed_count,
            stalls: self.core.telemetry.stalls.get(),
            stall_micros: self.core.telemetry.stall_micros.get(),
        }
    }

    /// I/O counters of the underlying simulated disk.
    pub fn io_stats(&self) -> IoStats {
        self.core.cache.store().stats()
    }

    /// Number of on-disk components.
    pub fn component_count(&self) -> usize {
        self.core.tree.read().components.len()
    }

    /// Shared handles to the current on-disk components, oldest first — the
    /// planner's window onto per-component statistics without the cost of a
    /// full snapshot (no memtable clone, no write-lock acquisition).
    pub fn components(&self) -> Vec<Arc<Component>> {
        self.core.tree.read().components.clone()
    }

    /// Number of sealed memtables currently queued for flushing.
    pub fn sealed_count(&self) -> usize {
        self.core.tree.read().sealed.len()
    }

    /// Total bytes stored on disk for the primary index.
    pub fn primary_stored_bytes(&self) -> u64 {
        self.core
            .tree
            .read()
            .components
            .iter()
            .map(|c| c.meta().stored_bytes)
            .sum()
    }

    /// Total bytes including the (approximated) secondary structures.
    pub fn total_stored_bytes(&self) -> u64 {
        let write = self.core.write.lock();
        let pk = if self.core.config.primary_key_index {
            write.pk_index.approx_bytes()
        } else {
            0
        };
        let sec = write
            .secondary
            .as_ref()
            .map(SecondaryIndex::approx_bytes)
            .unwrap_or(0);
        drop(write);
        self.primary_stored_bytes() + pk + sec
    }

    /// Take a consistent point-in-time [`Snapshot`] for reads. The write
    /// lock is held only long enough to clone the active memtable; flushes
    /// and merges never invalidate a snapshot.
    pub fn snapshot(&self) -> Snapshot {
        if self.core.telemetry.enabled() {
            self.core.telemetry.snapshots.incr();
        }
        let write = self.core.write.lock();
        let active: Vec<(Value, Option<Value>)> = write
            .memtable
            .iter()
            .map(|(k, v)| (k.clone(), v.cloned()))
            .collect();
        let tree = self.core.tree.read().clone();
        drop(write);
        Snapshot { active: Arc::new(active), tree }
    }

    /// Records (and anti-matter) currently in memory: the active memtable
    /// plus every sealed memtable. Feeds the planner's memtable-aware CPU
    /// cost term.
    pub fn in_memory_entries(&self) -> usize {
        let active = self.core.write.lock().memtable.len();
        active
            + self
                .core
                .tree
                .read()
                .sealed
                .iter()
                .map(|s| s.entries.len())
                .sum::<usize>()
    }

    /// Insert (or upsert) a record. For durable datasets the record is
    /// appended to the WAL before it is applied, so once `insert` returns it
    /// survives a process crash. The WAL is flushed to the OS immediately
    /// but fsynced lazily — call [`LsmDataset::sync`] where device-level
    /// durability (power loss) is required.
    ///
    /// With [`DatasetConfig::background`], a full memtable is sealed and
    /// handed to the worker; this call blocks only when
    /// `max_sealed_memtables` seals are already queued (backpressure), and
    /// surfaces any error a previous background flush/merge hit.
    pub fn insert(&self, record: Value) -> Result<()> {
        self.core.apply(Some(record), None)
    }

    /// Delete the record with the given key (an anti-matter entry is added).
    /// Logged to the WAL like [`LsmDataset::insert`], with the same
    /// crash-durability caveats.
    pub fn delete(&self, key: Value) -> Result<()> {
        self.core.apply(None, Some(key))
    }

    /// Flush everything in memory to disk: seals the active memtable and
    /// waits until every sealed memtable is flushed (and triggered merges
    /// completed). Surfaces parked background errors; calling again retries.
    pub fn flush(&self) -> Result<()> {
        {
            let mut write = self.core.write.lock();
            self.core.seal_locked(&mut write)?;
        }
        if self.core.config.background {
            self.core.sched.drain()
        } else {
            self.core.process_pending()
        }
    }

    /// Force-flush and merge everything down to a single component (used at
    /// the end of ingestion so query experiments run against a settled tree).
    pub fn compact_fully(&self) -> Result<()> {
        self.flush()?;
        loop {
            let mut maint = self.core.maint.lock();
            let n = self.core.tree.read().components.len();
            if n <= 1 {
                return Ok(());
            }
            let positions: Vec<usize> = (0..n).collect();
            self.core.merge_components_locked(&mut maint, &positions)?;
        }
    }

    /// Point lookup: newest version of `key`, reconciling the memtable and
    /// every component (newest first). `None` when the key does not exist or
    /// was deleted.
    pub fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Value>> {
        let tree = {
            let write = self.core.write.lock();
            if let Some(entry) = write.memtable.get(key) {
                return Ok(entry.cloned());
            }
            self.core.tree.read().clone()
        };
        Snapshot {
            active: Arc::new(Vec::new()),
            tree,
        }
        .lookup(key, projection)
    }

    /// Batched point lookups for the (sorted) keys produced by a secondary
    /// index probe (§4.6).
    pub fn lookup_sorted_keys(
        &self,
        keys: &mut [Value],
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        self.snapshot().lookup_sorted_keys(keys, projection)
    }

    /// Scan the dataset, reconciling duplicates and dropping anti-matter.
    /// Only the projected paths are assembled from columnar components.
    pub fn scan(&self, projection: Option<&[Path]>) -> Result<Vec<Value>> {
        self.snapshot().scan(projection)
    }

    /// Number of live records (COUNT(*)): only primary keys are read, which
    /// for AMAX means Page 0 alone.
    pub fn count(&self) -> Result<usize> {
        self.snapshot().count()
    }

    /// Answer a range query on the secondary index: probe the index, sort the
    /// resulting primary keys, and perform batched point lookups.
    pub fn secondary_range(
        &self,
        lo: &Value,
        hi: &Value,
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        self.secondary_range_bounds(
            std::ops::Bound::Included(lo),
            std::ops::Bound::Included(hi),
            projection,
        )
    }

    /// Like [`LsmDataset::secondary_range`], but with arbitrary (open or
    /// exclusive) endpoints — the probe the query planner derives from a
    /// filter expression that implies a range on the indexed path.
    pub fn secondary_range_bounds(
        &self,
        lo: std::ops::Bound<&Value>,
        hi: std::ops::Bound<&Value>,
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        Ok(self
            .secondary_range_entries(lo, hi, projection)?
            .into_iter()
            .map(|(_, doc)| doc)
            .collect())
    }

    /// Like [`LsmDataset::secondary_range_bounds`], but keeping each record
    /// paired with its primary key, in key order — what the query layer's
    /// key-ordered projection output consumes.
    pub fn secondary_range_entries(
        &self,
        lo: std::ops::Bound<&Value>,
        hi: std::ops::Bound<&Value>,
        projection: Option<&[Path]>,
    ) -> Result<Vec<(Value, Value)>> {
        let mut keys = {
            let write = self.core.write.lock();
            let secondary = write
                .secondary
                .as_ref()
                .ok_or_else(|| crate::LsmError::new("dataset has no secondary index"))?;
            secondary.range_bounds(lo, hi)
        };
        self.snapshot().lookup_sorted_entries(&mut keys, projection)
    }
}

impl DatasetCore {
    fn component_config(&self) -> ComponentConfig {
        ComponentConfig {
            layout: self.config.layout,
            amax: self.config.amax,
            compress_pages: self.config.compress_pages,
        }
    }

    fn extract_key(&self, record: &Value) -> Result<Value> {
        record
            .get_field(&self.config.key_field)
            .filter(|v| v.is_atomic() && !v.is_null())
            .cloned()
            .ok_or_else(|| {
                crate::LsmError::new(format!(
                    "record lacks an atomic primary key field '{}'",
                    self.config.key_field
                ))
            })
    }

    /// One insert (`record = Some`) or delete (`key = Some`) through the
    /// write lock, with sealing and (synchronous-mode) inline flushing.
    fn apply(&self, record: Option<Value>, delete_key: Option<Value>) -> Result<()> {
        if self.config.background {
            // Backpressure gate — taken *before* the write lock so stalled
            // writers never block readers or the worker.
            let stalled = self.sched.admit(self.config.max_sealed_memtables)?;
            if let Some(stall) = stalled {
                if self.telemetry.enabled() {
                    self.telemetry.stalls.incr();
                    self.telemetry.stall_micros.add(stall.as_micros() as u64);
                }
            }
        }
        {
            let mut write = self.write.lock();
            match (record, delete_key) {
                (Some(record), _) => {
                    let key = self.extract_key(&record)?;
                    // Fallible work (index-maintenance lookups can hit I/O
                    // errors) happens before the WAL append: a failed insert
                    // must not leave a logged record behind for recovery to
                    // resurrect.
                    self.maintain_secondary_for_upsert(&mut write, &key, Some(&record))?;
                    if let Some(durable) = self.durable.as_ref() {
                        durable.log_insert(&key, &record)?;
                    }
                    write.pk_index.insert(&key);
                    let bytes_before = write.memtable.approx_bytes();
                    write.memtable.insert(key, record);
                    if self.telemetry.enabled() {
                        self.telemetry.records_ingested.incr();
                        let grew = write.memtable.approx_bytes().saturating_sub(bytes_before);
                        self.telemetry.bytes_ingested.add(grew as u64);
                    }
                    self.stats.lock().records_ingested += 1;
                }
                (None, Some(key)) => {
                    self.maintain_secondary_for_upsert(&mut write, &key, None)?;
                    if let Some(durable) = self.durable.as_ref() {
                        durable.log_delete(&key)?;
                    }
                    write.memtable.delete(key);
                    if self.telemetry.enabled() {
                        self.telemetry.deletes.incr();
                    }
                    self.stats.lock().deletes += 1;
                }
                (None, None) => unreachable!("apply needs a record or a key"),
            }
            if write.memtable.approx_bytes() >= self.config.memtable_budget {
                self.seal_locked(&mut write)?;
            }
        }
        // Synchronous mode: do the flush (and any retries of earlier failed
        // inline work) on the calling thread, outside the write lock.
        if !self.config.background && self.sched.sealed_count() > 0 {
            self.process_pending()?;
        }
        Ok(())
    }

    /// Seal the active memtable: rotate the WAL so the sealed records are
    /// confined to closed segments, publish the sealed memtable in the tree,
    /// and signal the scheduler. No-op when the memtable is empty.
    fn seal_locked(&self, write: &mut WriteState) -> Result<()> {
        if write.memtable.is_empty() {
            return Ok(());
        }
        let wal_segment = match self.durable.as_ref() {
            Some(durable) => Some(durable.rotate_wal()?),
            None => None,
        };
        let bytes = write.memtable.approx_bytes();
        let entries = write.memtable.drain_sorted();
        let sealed = Arc::new(SealedMemtable {
            entries,
            wal_segment,
            bytes,
        });
        {
            let mut tree = self.tree.write();
            let mut next = (**tree).clone();
            next.sealed.push(sealed);
            *tree = Arc::new(next);
        }
        self.sched.note_sealed();
        Ok(())
    }

    /// Flush every queued sealed memtable, oldest first, running the merge
    /// policy after each flush. Runs on the worker thread in background mode
    /// and inline on the calling thread otherwise.
    fn process_pending(&self) -> Result<()> {
        loop {
            let next = self.tree.read().sealed.first().cloned();
            let Some(sealed) = next else { return Ok(()) };
            self.flush_sealed(&sealed)?;
        }
    }

    /// Flush one sealed memtable into an on-disk component.
    fn flush_sealed(&self, sealed: &Arc<SealedMemtable>) -> Result<()> {
        let started = Instant::now();
        let mut maint = self.maint.lock();
        // Another thread may have flushed it while we waited for the lock.
        let Some(current) = self.tree.read().sealed.first().cloned() else {
            return Ok(());
        };
        if !Arc::ptr_eq(&current, sealed) {
            return Ok(());
        }
        self.telemetry.emit(EventKind::FlushBegin {
            entries: sealed.entries.len(),
        });
        // Tuple compactor: infer the schema from the flushed records (§2.2).
        for (_, record) in &sealed.entries {
            if let Some(record) = record {
                maint.schema_builder.observe(record);
            }
        }
        let schema = maint.schema_builder.schema().clone();
        let component = Arc::new(Component::write(
            &self.cache,
            &self.component_config(),
            schema.clone(),
            &sealed.entries,
            maint.next_component_id,
        )?);
        maint.next_component_id += 1;
        let pages_out = component.meta().pages.len() as u64;
        // Durable flush: sync pages, commit the manifest recording the new
        // component (and the schema snapshot), then drop the WAL segments
        // covering the sealed records.
        if let Some(durable) = self.durable.as_ref() {
            let mut components = self.tree.read().components.clone();
            components.push(component.clone());
            let data = self.manifest_data(&maint, &schema, &components);
            let segment = sealed
                .wal_segment
                .expect("durable sealed memtable records its WAL segment");
            durable.commit_flush(data, segment)?;
        }
        {
            let mut tree = self.tree.write();
            let mut next = (**tree).clone();
            let pos = next
                .sealed
                .iter()
                .position(|s| Arc::ptr_eq(s, sealed))
                .expect("sealed memtable vanished while flushing");
            next.sealed.remove(pos);
            next.components.push(component);
            *tree = Arc::new(next);
        }
        self.sched.note_flushed();
        let elapsed = started.elapsed();
        if self.telemetry.enabled() {
            self.telemetry.flushes.incr();
            self.telemetry.flush_entries.add(sealed.entries.len() as u64);
            self.telemetry.flush_pages_out.add(pages_out);
            self.telemetry.flush_duration.record(elapsed.as_micros() as u64);
            self.telemetry.emit(EventKind::FlushEnd {
                entries: sealed.entries.len(),
                pages_out,
                micros: elapsed.as_micros() as u64,
            });
        }
        {
            let mut stats = self.stats.lock();
            stats.flushes += 1;
            stats.flush_time += elapsed;
        }
        self.maybe_merge_locked(&mut maint)
    }

    fn manifest_data(
        &self,
        maint: &MaintState,
        schema: &Schema,
        components: &[Arc<Component>],
    ) -> ManifestData {
        ManifestData {
            version: 0, // assigned by the manifest store at commit
            config: self.config.to_persisted(),
            next_component_id: maint.next_component_id,
            schema: schema.clone(),
            components: components.iter().map(|c| c.describe()).collect(),
        }
    }

    fn maybe_merge_locked(&self, maint: &mut MaintState) -> Result<()> {
        // Sizes newest-first for the policy.
        let sizes: Vec<u64> = {
            let tree = self.tree.read();
            tree.components
                .iter()
                .rev()
                .map(|c| c.meta().stored_bytes)
                .collect()
        };
        match self.config.policy.decide(&sizes) {
            MergeDecision::None => Ok(()),
            MergeDecision::Merge(newest_first) => {
                // Translate newest-first indexes into positions in the
                // oldest-first component list.
                let n = sizes.len();
                let mut positions: Vec<usize> = newest_first.iter().map(|i| n - 1 - i).collect();
                positions.sort_unstable();
                self.merge_components_locked(maint, &positions)
            }
        }
    }

    /// Merge the components at the given (oldest-first) positions.
    fn merge_components_locked(&self, maint: &mut MaintState, positions: &[usize]) -> Result<()> {
        if positions.len() < 2 {
            return Ok(());
        }
        let started = Instant::now();
        let components = self.tree.read().components.clone();
        let inputs: Vec<Arc<Component>> =
            positions.iter().map(|&p| components[p].clone()).collect();
        let includes_oldest = positions.first() == Some(&0);
        let input_ids: Vec<u64> = inputs.iter().map(|c| c.meta().id).collect();
        let pages_in: u64 = inputs.iter().map(|c| c.meta().pages.len() as u64).sum();
        self.telemetry.emit(EventKind::MergeBegin {
            inputs: input_ids.clone(),
        });
        // Reconcile through the streaming k-way merge cursor: entries arrive
        // in key order with the newest version of each key winning, holding
        // one decoded leaf per input in memory instead of the whole inputs.
        let mut entries: Vec<Entry> = Vec::new();
        for entry in EntryMergeCursor::over_components(&inputs, None) {
            let (key, doc) = entry?;
            // Anti-matter annihilates older records; it can itself be
            // dropped once the merge includes the oldest component.
            if doc.is_some() || !includes_oldest {
                entries.push((key, doc));
            }
        }

        let schema = maint.schema_builder.schema().clone();
        let new_component = Arc::new(Component::write(
            &self.cache,
            &self.component_config(),
            schema.clone(),
            &entries,
            maint.next_component_id,
        )?);
        maint.next_component_id += 1;
        let pages_out = new_component.meta().pages.len() as u64;

        // Build the post-merge component list: inputs out, output in at the
        // first merged position.
        let mut new_components = components.clone();
        for &pos in positions.iter().rev() {
            new_components.remove(pos);
        }
        new_components.insert(positions[0], new_component);
        // Durable merge: the manifest swap makes the merged component
        // visible; the inputs' pages are freed only after the swap commits,
        // so a crash before the commit leaves the old components intact.
        if let Some(durable) = self.durable.as_ref() {
            let data = self.manifest_data(maint, &schema, &new_components);
            durable.commit_merge(data)?;
        }
        {
            let mut tree = self.tree.write();
            let mut next = (**tree).clone();
            next.components = new_components;
            *tree = Arc::new(next);
        }
        // Retire the inputs: their pages are freed when the last snapshot
        // holding them drops (Component::retire), never under a live reader.
        for input in &inputs {
            input.retire();
        }
        let elapsed = started.elapsed();
        if self.telemetry.enabled() {
            self.telemetry.merges.incr();
            self.telemetry.merge_pages_in.add(pages_in);
            self.telemetry.merge_pages_out.add(pages_out);
            self.telemetry.merge_duration.record(elapsed.as_micros() as u64);
            self.telemetry.emit(EventKind::MergeEnd {
                inputs: input_ids,
                pages_in,
                pages_out,
                micros: elapsed.as_micros() as u64,
            });
        }
        {
            let mut stats = self.stats.lock();
            stats.merges += 1;
            stats.merge_time += elapsed;
        }
        Ok(())
    }

    /// Point lookup while already holding the write lock (secondary-index
    /// maintenance on the ingest path).
    fn lookup_locked(
        &self,
        write: &WriteState,
        key: &Value,
        projection: Option<&[Path]>,
    ) -> Result<Option<Value>> {
        if let Some(entry) = write.memtable.get(key) {
            return Ok(entry.cloned());
        }
        Snapshot {
            active: Arc::new(Vec::new()),
            tree: self.tree.read().clone(),
        }
        .lookup(key, projection)
    }

    /// Secondary-index maintenance: fetch the old record (if the key may
    /// exist) to remove its stale entry, then add the new entry.
    fn maintain_secondary_for_upsert(
        &self,
        write: &mut WriteState,
        key: &Value,
        new_record: Option<&Value>,
    ) -> Result<()> {
        let Some(index_path) = self.config.secondary_index_on.clone() else {
            return Ok(());
        };
        let may_exist = if self.config.primary_key_index {
            write.pk_index.contains(key)
        } else {
            true
        };
        if may_exist {
            self.stats.lock().maintenance_lookups += 1;
            if let Some(old) = self.lookup_locked(write, key, None)? {
                let old_values: Vec<Value> =
                    index_path.evaluate(&old).into_iter().cloned().collect();
                if let Some(secondary) = write.secondary.as_mut() {
                    for v in old_values {
                        secondary.remove(&v, key);
                    }
                }
            }
        }
        if let (Some(secondary), Some(record)) = (write.secondary.as_mut(), new_record) {
            for v in index_path.evaluate(record) {
                secondary.insert(v, key);
            }
        }
        Ok(())
    }

    /// Rebuild the in-memory indexes (primary-key filter and the optional
    /// secondary index) from the recovered components and memtable.
    fn rebuild_indexes(&self) -> Result<()> {
        let index_path = self.config.secondary_index_on.clone();
        if !self.config.primary_key_index && index_path.is_none() {
            return Ok(());
        }
        let mut write = self.write.lock();
        // Reconcile newest-first through the streaming merge cursor so each
        // key contributes exactly its live version.
        let memtable_entries: Vec<Entry> = write
            .memtable
            .iter()
            .map(|(k, v)| (k.clone(), v.cloned()))
            .collect();
        let projection: Vec<Path> = index_path.iter().cloned().collect();
        let tree = self.tree.read().clone();
        let cursor = EntryMergeCursor::over_memtable_and_components(
            memtable_entries,
            &tree.components,
            Some(&projection),
        );
        for entry in cursor {
            let (key, doc) = entry?;
            if self.config.primary_key_index {
                // Every key ever written may exist on disk, so the filter
                // includes deleted keys too (it only answers "may exist").
                write.pk_index.insert(&key);
            }
            if let (Some(path), Some(doc)) = (index_path.as_ref(), doc.as_ref()) {
                let values: Vec<Value> = path.evaluate(doc).into_iter().cloned().collect();
                if let Some(secondary) = write.secondary.as_mut() {
                    for value in values {
                        secondary.insert(&value, &key);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn tiny_config(layout: LayoutKind) -> DatasetConfig {
        DatasetConfig::new("test", layout)
            .with_memtable_budget(8 * 1024)
            .with_page_size(4 * 1024)
    }

    fn sample_record(i: i64) -> Value {
        doc!({
            "id": i,
            "user": {"name": (format!("user{}", i % 13)), "followers": (i % 997)},
            "text": (format!("record {i} body text with characters")),
            "timestamp": (1_000_000 + i),
            "tags": [(format!("tag{}", i % 5))]
        })
    }

    #[test]
    fn ingest_flush_merge_scan_all_layouts() {
        for layout in LayoutKind::ALL {
            let ds = LsmDataset::new(tiny_config(layout));
            for i in 0..500 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.flush().unwrap();
            assert!(ds.stats().flushes > 1, "{layout:?} should have flushed repeatedly");
            assert!(ds.component_count() >= 1);

            let docs = ds.scan(None).unwrap();
            assert_eq!(docs.len(), 500, "{layout:?}");
            assert_eq!(ds.count().unwrap(), 500, "{layout:?}");
            // Keys come back in order and records are intact.
            assert_eq!(docs[7].get_field("id"), Some(&Value::Int(7)));
            assert!(docs[7].get_path_str("user.name").is_some());
        }
    }

    #[test]
    fn updates_and_deletes_reconcile() {
        for layout in [LayoutKind::Vb, LayoutKind::Amax] {
            let ds = LsmDataset::new(tiny_config(layout));
            for i in 0..200 {
                ds.insert(sample_record(i)).unwrap();
            }
            // Update half of the records and delete a few.
            for i in (0..200).step_by(2) {
                let mut updated = sample_record(i);
                updated.set_field("text", Value::from("updated"));
                ds.insert(updated).unwrap();
            }
            for i in [3i64, 77, 199] {
                ds.delete(Value::Int(i)).unwrap();
            }
            ds.compact_fully().unwrap();
            assert_eq!(ds.component_count(), 1);

            assert_eq!(ds.count().unwrap(), 197, "{layout:?}");
            let doc = ds.lookup(&Value::Int(10), None).unwrap().unwrap();
            assert_eq!(doc.get_field("text"), Some(&Value::from("updated")));
            let doc = ds.lookup(&Value::Int(11), None).unwrap().unwrap();
            assert_ne!(doc.get_field("text"), Some(&Value::from("updated")));
            assert!(ds.lookup(&Value::Int(77), None).unwrap().is_none());
            assert!(ds.lookup(&Value::Int(100_000), None).unwrap().is_none());
        }
    }

    #[test]
    fn projection_scans_only_requested_fields() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..100 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        let projected = ds.scan(Some(&[Path::parse("user.followers")])).unwrap();
        assert_eq!(projected.len(), 100);
        assert!(projected[0].get_path_str("user.followers").is_some());
        assert!(projected[0].get_field("text").is_none());
    }

    #[test]
    fn secondary_index_range_matches_full_scan_filter() {
        let config = tiny_config(LayoutKind::Apax).with_secondary_index(Path::parse("timestamp"));
        let ds = LsmDataset::new(config);
        for i in 0..300 {
            ds.insert(sample_record(i)).unwrap();
        }
        // Update some records so maintenance lookups happen.
        for i in 0..50 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.stats().maintenance_lookups > 0);

        let lo = Value::Int(1_000_100);
        let hi = Value::Int(1_000_149);
        let via_index = ds.secondary_range(&lo, &hi, None).unwrap();
        assert_eq!(via_index.len(), 50);
        let via_scan: Vec<Value> = ds
            .scan(None)
            .unwrap()
            .into_iter()
            .filter(|d| {
                let ts = d.get_field("timestamp").and_then(Value::as_int).unwrap();
                (1_000_100..=1_000_149).contains(&ts)
            })
            .collect();
        assert_eq!(via_index.len(), via_scan.len());
    }

    #[test]
    fn schema_grows_across_flushes_and_is_a_superset() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..50 {
            ds.insert(doc!({"id": i, "a": 1})).unwrap();
        }
        ds.flush().unwrap();
        let cols_before = schema::columns_of(&ds.schema()).len();
        for i in 50..100 {
            ds.insert(doc!({"id": i, "a": "heterogeneous now", "b": {"c": 2.5}})).unwrap();
        }
        ds.flush().unwrap();
        let cols_after = schema::columns_of(&ds.schema()).len();
        assert!(cols_after > cols_before);
        // Old and new records both survive scans despite the schema change.
        assert_eq!(ds.count().unwrap(), 100);
        let docs = ds.scan(None).unwrap();
        assert_eq!(docs.len(), 100);
    }

    #[test]
    fn missing_key_is_an_error() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Vb));
        assert!(ds.insert(doc!({"no_key": 1})).is_err());
        assert!(ds.insert(doc!({"id": null})).is_err());
    }

    #[test]
    fn stored_bytes_accounting() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Apax));
        for i in 0..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.primary_stored_bytes() > 0);
        assert!(ds.total_stored_bytes() >= ds.primary_stored_bytes());
        assert!(ds.io_stats().pages_written > 0);
    }

    #[test]
    fn background_mode_reaches_the_same_state() {
        for layout in [LayoutKind::Vb, LayoutKind::Amax] {
            let sync_ds = LsmDataset::new(tiny_config(layout));
            let bg_ds = LsmDataset::new(tiny_config(layout).with_background(true));
            for ds in [&sync_ds, &bg_ds] {
                for i in 0..300 {
                    ds.insert(sample_record(i)).unwrap();
                }
                for i in [5i64, 100] {
                    ds.delete(Value::Int(i)).unwrap();
                }
                ds.flush().unwrap();
            }
            assert_eq!(sync_ds.scan(None).unwrap(), bg_ds.scan(None).unwrap(), "{layout:?}");
            assert!(bg_ds.stats().flushes > 1, "{layout:?}");
        }
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..100 {
            ds.insert(sample_record(i)).unwrap();
        }
        let snapshot = ds.snapshot();
        assert_eq!(snapshot.count().unwrap(), 100);
        for i in 100..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.delete(Value::Int(0)).unwrap();
        ds.compact_fully().unwrap();
        // The snapshot still sees exactly the first 100 records, even though
        // the dataset has flushed, merged and retired components since.
        assert_eq!(snapshot.count().unwrap(), 100);
        assert!(snapshot.lookup(&Value::Int(0), None).unwrap().is_some());
        assert!(snapshot.lookup(&Value::Int(150), None).unwrap().is_none());
        assert_eq!(ds.count().unwrap(), 199);
    }
}
