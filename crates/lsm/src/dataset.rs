//! One LSM-backed dataset partition.
//!
//! [`LsmDataset`] is the unit the facade crate and the benchmarks work with:
//! it owns the in-memory component, the stack of on-disk components (in the
//! configured layout), the cumulative inferred schema, the merge policy and
//! the optional primary-key / secondary indexes.
//!
//! Lifecycle, as in the paper:
//!
//! * inserts/upserts/deletes go to the memtable; the secondary index is kept
//!   correct by fetching the old record first (a point lookup — cheap for row
//!   layouts, linear-search-plus-decode for columnar ones, §4.6);
//! * when the memtable exceeds its budget it is *flushed*: the tuple
//!   compactor observes the flushed records to grow the inferred schema and
//!   the records are written as an on-disk component in the dataset's layout;
//! * the tiering merge policy may then schedule a *merge*, which reconciles
//!   the chosen components (newest version of each key wins, anti-matter
//!   annihilates older records) into a new component and frees the old pages.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use docmodel::cmp::OrderedValue;
use docmodel::{Path, Value};
use schema::{Schema, SchemaBuilder};
use storage::amax::AmaxConfig;
use storage::component::{Component, ComponentConfig, ComponentReader, Entry};
use storage::pagestore::{BufferCache, IoStats, PageStore};
use storage::LayoutKind;

use crate::index::{PrimaryKeyIndex, SecondaryIndex};
use crate::memtable::Memtable;
use crate::policy::{MergeDecision, TieringPolicy};
use crate::Result;

/// Configuration of one dataset partition.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Dataset name (used in experiment output).
    pub name: String,
    /// Storage layout of on-disk components.
    pub layout: LayoutKind,
    /// Name of the primary-key field (must be present in every record).
    pub key_field: String,
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_budget: usize,
    /// Page size of the simulated disk.
    pub page_size: usize,
    /// Buffer-cache capacity in pages.
    pub cache_pages: usize,
    /// Merge policy.
    pub policy: TieringPolicy,
    /// Maintain a primary-key index to avoid point lookups for new keys.
    pub primary_key_index: bool,
    /// Maintain a secondary index on this path (e.g. `timestamp`).
    pub secondary_index_on: Option<Path>,
    /// Apply page-level compression.
    pub compress_pages: bool,
    /// AMAX-specific knobs.
    pub amax: AmaxConfig,
}

impl DatasetConfig {
    /// A reasonable laptop-scale default for the given layout.
    pub fn new(name: impl Into<String>, layout: LayoutKind) -> DatasetConfig {
        DatasetConfig {
            name: name.into(),
            layout,
            key_field: "id".to_string(),
            memtable_budget: 4 << 20,
            page_size: 128 * 1024,
            cache_pages: 256,
            policy: TieringPolicy::default(),
            primary_key_index: true,
            secondary_index_on: None,
            compress_pages: true,
            amax: AmaxConfig::default(),
        }
    }

    /// Builder-style: set the primary-key field name.
    pub fn with_key_field(mut self, key: impl Into<String>) -> Self {
        self.key_field = key.into();
        self
    }

    /// Builder-style: set the memtable budget in bytes.
    pub fn with_memtable_budget(mut self, bytes: usize) -> Self {
        self.memtable_budget = bytes;
        self
    }

    /// Builder-style: set the page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Builder-style: declare a secondary index.
    pub fn with_secondary_index(mut self, path: Path) -> Self {
        self.secondary_index_on = Some(path);
        self
    }
}

/// Counters describing ingestion activity.
#[derive(Debug, Default, Clone, Copy)]
pub struct IngestStats {
    /// Records inserted or upserted.
    pub records_ingested: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Number of merge operations.
    pub merges: u64,
    /// Point lookups performed to maintain the secondary index.
    pub maintenance_lookups: u64,
    /// Wall-clock time spent in flushes.
    pub flush_time: Duration,
    /// Wall-clock time spent in merges.
    pub merge_time: Duration,
}

/// One LSM dataset partition.
pub struct LsmDataset {
    config: DatasetConfig,
    cache: BufferCache,
    memtable: Memtable,
    components: Vec<Component>,
    schema_builder: SchemaBuilder,
    pk_index: PrimaryKeyIndex,
    secondary: Option<SecondaryIndex>,
    next_component_id: u64,
    stats: IngestStats,
}

impl LsmDataset {
    /// Create an empty dataset with its own simulated disk.
    pub fn new(config: DatasetConfig) -> LsmDataset {
        let store = PageStore::with_page_size(config.page_size);
        let cache = BufferCache::new(store, config.cache_pages);
        LsmDataset::with_cache(config, cache)
    }

    /// Create an empty dataset on an existing store/cache (used when several
    /// datasets share one simulated disk, as partitions share an NC's cache).
    pub fn with_cache(config: DatasetConfig, cache: BufferCache) -> LsmDataset {
        let secondary = config.secondary_index_on.as_ref().map(|_| SecondaryIndex::new());
        let schema_builder = SchemaBuilder::new(Some(config.key_field.clone()));
        LsmDataset {
            config,
            cache,
            memtable: Memtable::new(),
            components: Vec::new(),
            schema_builder,
            pk_index: PrimaryKeyIndex::new(),
            secondary,
            next_component_id: 0,
            stats: IngestStats::default(),
        }
    }

    /// The dataset's configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The buffer cache (shared with the query engine for I/O accounting).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// The cumulative inferred schema.
    pub fn schema(&self) -> &Schema {
        self.schema_builder.schema()
    }

    /// Ingestion counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// I/O counters of the underlying simulated disk.
    pub fn io_stats(&self) -> IoStats {
        self.cache.store().stats()
    }

    /// Number of on-disk components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Total bytes stored on disk for the primary index.
    pub fn primary_stored_bytes(&self) -> u64 {
        self.components.iter().map(|c| c.meta().stored_bytes).sum()
    }

    /// Total bytes including the (approximated) secondary structures.
    pub fn total_stored_bytes(&self) -> u64 {
        let pk = if self.config.primary_key_index {
            self.pk_index.approx_bytes()
        } else {
            0
        };
        let sec = self.secondary.as_ref().map(SecondaryIndex::approx_bytes).unwrap_or(0);
        self.primary_stored_bytes() + pk + sec
    }

    fn extract_key(&self, record: &Value) -> Result<Value> {
        record
            .get_field(&self.config.key_field)
            .filter(|v| v.is_atomic() && !v.is_null())
            .cloned()
            .ok_or_else(|| {
                crate::LsmError::new(format!(
                    "record lacks an atomic primary key field '{}'",
                    self.config.key_field
                ))
            })
    }

    /// Insert (or upsert) a record.
    pub fn insert(&mut self, record: Value) -> Result<()> {
        let key = self.extract_key(&record)?;
        self.maintain_secondary_for_upsert(&key, Some(&record))?;
        self.pk_index.insert(&key);
        self.memtable.insert(key, record);
        self.stats.records_ingested += 1;
        self.maybe_flush()
    }

    /// Delete the record with the given key (an anti-matter entry is added).
    pub fn delete(&mut self, key: Value) -> Result<()> {
        self.maintain_secondary_for_upsert(&key, None)?;
        self.memtable.delete(key);
        self.stats.deletes += 1;
        self.maybe_flush()
    }

    /// Secondary-index maintenance: fetch the old record (if the key may
    /// exist) to remove its stale entry, then add the new entry.
    fn maintain_secondary_for_upsert(
        &mut self,
        key: &Value,
        new_record: Option<&Value>,
    ) -> Result<()> {
        let Some(index_path) = self.config.secondary_index_on.clone() else {
            return Ok(());
        };
        let may_exist = if self.config.primary_key_index {
            self.pk_index.contains(key)
        } else {
            true
        };
        if may_exist {
            self.stats.maintenance_lookups += 1;
            if let Some(old) = self.lookup(key, None)? {
                let old_values: Vec<Value> =
                    index_path.evaluate(&old).into_iter().cloned().collect();
                if let Some(secondary) = self.secondary.as_mut() {
                    for v in old_values {
                        secondary.remove(&v, key);
                    }
                }
            }
        }
        if let (Some(secondary), Some(record)) = (self.secondary.as_mut(), new_record) {
            for v in index_path.evaluate(record) {
                secondary.insert(v, key);
            }
        }
        Ok(())
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.memtable.approx_bytes() >= self.config.memtable_budget {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush the in-memory component to disk (no-op when it is empty).
    pub fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let entries = self.memtable.drain_sorted();
        // Tuple compactor: infer the schema from the flushed records (§2.2).
        for (_, record) in &entries {
            if let Some(record) = record {
                self.schema_builder.observe(record);
            }
        }
        let schema = self.schema_builder.schema().clone();
        let config = self.component_config();
        let component = Component::write(
            &self.cache,
            &config,
            schema,
            &entries,
            self.next_component_id,
        )?;
        self.next_component_id += 1;
        self.components.push(component);
        self.stats.flushes += 1;
        self.stats.flush_time += started.elapsed();
        self.maybe_merge()
    }

    fn component_config(&self) -> ComponentConfig {
        ComponentConfig {
            layout: self.config.layout,
            amax: self.config.amax,
            compress_pages: self.config.compress_pages,
        }
    }

    fn maybe_merge(&mut self) -> Result<()> {
        // Sizes newest-first for the policy.
        let sizes: Vec<u64> = self
            .components
            .iter()
            .rev()
            .map(|c| c.meta().stored_bytes)
            .collect();
        match self.config.policy.decide(&sizes) {
            MergeDecision::None => Ok(()),
            MergeDecision::Merge(newest_first) => {
                // Translate newest-first indexes into positions in
                // `self.components` (which is oldest-first).
                let n = self.components.len();
                let mut positions: Vec<usize> = newest_first.iter().map(|i| n - 1 - i).collect();
                positions.sort_unstable();
                self.merge_components(&positions)
            }
        }
    }

    /// Merge the components at the given (oldest-first) positions.
    fn merge_components(&mut self, positions: &[usize]) -> Result<()> {
        if positions.len() < 2 {
            return Ok(());
        }
        let started = Instant::now();
        let includes_oldest = positions.first() == Some(&0);
        // Reconcile newest-first so the most recent version of each key wins.
        let mut merged: BTreeMap<OrderedValue, Option<Value>> = BTreeMap::new();
        for &pos in positions.iter().rev() {
            let component = &self.components[pos];
            for entry in component.scan(None)? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc);
            }
        }
        let entries: Vec<Entry> = merged
            .into_iter()
            .filter(|(_, doc)| {
                // Anti-matter annihilates older records; it can itself be
                // dropped once the merge includes the oldest component.
                doc.is_some() || !includes_oldest
            })
            .map(|(k, v)| (k.0, v))
            .collect();

        let schema = self.schema_builder.schema().clone();
        let config = self.component_config();
        let new_component = Component::write(
            &self.cache,
            &config,
            schema,
            &entries,
            self.next_component_id,
        )?;
        self.next_component_id += 1;

        // Free and remove the merged components (back to front to keep
        // positions valid), then insert the new one at the first position.
        let first = positions[0];
        for &pos in positions.iter().rev() {
            let old = self.components.remove(pos);
            self.cache.store().free_pages(&old.meta().pages);
        }
        self.components.insert(first, new_component);
        self.stats.merges += 1;
        self.stats.merge_time += started.elapsed();
        Ok(())
    }

    /// Force-flush and merge everything down to a single component (used at
    /// the end of ingestion so query experiments run against a settled tree).
    pub fn compact_fully(&mut self) -> Result<()> {
        self.flush()?;
        while self.components.len() > 1 {
            let positions: Vec<usize> = (0..self.components.len()).collect();
            self.merge_components(&positions)?;
        }
        Ok(())
    }

    /// Point lookup: newest version of `key`, reconciling the memtable and
    /// every component (newest first). `None` when the key does not exist or
    /// was deleted.
    pub fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Value>> {
        if let Some(entry) = self.memtable.get(key) {
            return Ok(entry.cloned());
        }
        for component in self.components.iter().rev() {
            if let Some(entry) = component.lookup(key, projection)? {
                return Ok(entry);
            }
        }
        Ok(None)
    }

    /// Batched point lookups for the (sorted) keys produced by a secondary
    /// index probe (§4.6).
    pub fn lookup_sorted_keys(
        &self,
        keys: &mut [Value],
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        keys.sort_by(docmodel::total_cmp);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys.iter() {
            if let Some(doc) = self.lookup(key, projection)? {
                out.push(doc);
            }
        }
        Ok(out)
    }

    /// Scan the dataset, reconciling duplicates and dropping anti-matter.
    /// Only the projected paths are assembled from columnar components.
    pub fn scan(&self, projection: Option<&[Path]>) -> Result<Vec<Value>> {
        let mut merged: BTreeMap<OrderedValue, Option<Value>> = BTreeMap::new();
        for (key, doc) in self.memtable.iter() {
            merged
                .entry(OrderedValue(key.clone()))
                .or_insert_with(|| doc.cloned());
        }
        for component in self.components.iter().rev() {
            for entry in component.scan(projection)? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc);
            }
        }
        Ok(merged.into_values().flatten().collect())
    }

    /// Number of live records (COUNT(*)): only primary keys are read, which
    /// for AMAX means Page 0 alone.
    pub fn count(&self) -> Result<usize> {
        let mut merged: BTreeMap<OrderedValue, bool> = BTreeMap::new();
        for (key, doc) in self.memtable.iter() {
            merged
                .entry(OrderedValue(key.clone()))
                .or_insert(doc.is_some());
        }
        for component in self.components.iter().rev() {
            for entry in component.scan(Some(&[]))? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc.is_some());
            }
        }
        Ok(merged.values().filter(|live| **live).count())
    }

    /// Answer a range query on the secondary index: probe the index, sort the
    /// resulting primary keys, and perform batched point lookups.
    pub fn secondary_range(
        &self,
        lo: &Value,
        hi: &Value,
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        let secondary = self
            .secondary
            .as_ref()
            .ok_or_else(|| crate::LsmError::new("dataset has no secondary index"))?;
        let mut keys = secondary.range(lo, hi);
        self.lookup_sorted_keys(&mut keys, projection)
    }

    /// Direct access to the on-disk components (used by the query engine).
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Entries still in the in-memory component (used by the query engine).
    pub fn memtable_entries(&self) -> Vec<(Value, Option<Value>)> {
        self.memtable
            .iter()
            .map(|(k, v)| (k.clone(), v.cloned()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn tiny_config(layout: LayoutKind) -> DatasetConfig {
        DatasetConfig::new("test", layout)
            .with_memtable_budget(8 * 1024)
            .with_page_size(4 * 1024)
    }

    fn sample_record(i: i64) -> Value {
        doc!({
            "id": i,
            "user": {"name": (format!("user{}", i % 13)), "followers": (i % 997)},
            "text": (format!("record {i} body text with characters")),
            "timestamp": (1_000_000 + i),
            "tags": [(format!("tag{}", i % 5))]
        })
    }

    #[test]
    fn ingest_flush_merge_scan_all_layouts() {
        for layout in LayoutKind::ALL {
            let mut ds = LsmDataset::new(tiny_config(layout));
            for i in 0..500 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.flush().unwrap();
            assert!(ds.stats().flushes > 1, "{layout:?} should have flushed repeatedly");
            assert!(ds.component_count() >= 1);

            let docs = ds.scan(None).unwrap();
            assert_eq!(docs.len(), 500, "{layout:?}");
            assert_eq!(ds.count().unwrap(), 500, "{layout:?}");
            // Keys come back in order and records are intact.
            assert_eq!(docs[7].get_field("id"), Some(&Value::Int(7)));
            assert!(docs[7].get_path_str("user.name").is_some());
        }
    }

    #[test]
    fn updates_and_deletes_reconcile() {
        for layout in [LayoutKind::Vb, LayoutKind::Amax] {
            let mut ds = LsmDataset::new(tiny_config(layout));
            for i in 0..200 {
                ds.insert(sample_record(i)).unwrap();
            }
            // Update half of the records and delete a few.
            for i in (0..200).step_by(2) {
                let mut updated = sample_record(i);
                updated.set_field("text", Value::from("updated"));
                ds.insert(updated).unwrap();
            }
            for i in [3i64, 77, 199] {
                ds.delete(Value::Int(i)).unwrap();
            }
            ds.compact_fully().unwrap();
            assert_eq!(ds.component_count(), 1);

            assert_eq!(ds.count().unwrap(), 197, "{layout:?}");
            let doc = ds.lookup(&Value::Int(10), None).unwrap().unwrap();
            assert_eq!(doc.get_field("text"), Some(&Value::from("updated")));
            let doc = ds.lookup(&Value::Int(11), None).unwrap().unwrap();
            assert_ne!(doc.get_field("text"), Some(&Value::from("updated")));
            assert!(ds.lookup(&Value::Int(77), None).unwrap().is_none());
            assert!(ds.lookup(&Value::Int(100_000), None).unwrap().is_none());
        }
    }

    #[test]
    fn projection_scans_only_requested_fields() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..100 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        let projected = ds.scan(Some(&[Path::parse("user.followers")])).unwrap();
        assert_eq!(projected.len(), 100);
        assert!(projected[0].get_path_str("user.followers").is_some());
        assert!(projected[0].get_field("text").is_none());
    }

    #[test]
    fn secondary_index_range_matches_full_scan_filter() {
        let config = tiny_config(LayoutKind::Apax).with_secondary_index(Path::parse("timestamp"));
        let mut ds = LsmDataset::new(config);
        for i in 0..300 {
            ds.insert(sample_record(i)).unwrap();
        }
        // Update some records so maintenance lookups happen.
        for i in 0..50 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.stats().maintenance_lookups > 0);

        let lo = Value::Int(1_000_100);
        let hi = Value::Int(1_000_149);
        let via_index = ds.secondary_range(&lo, &hi, None).unwrap();
        assert_eq!(via_index.len(), 50);
        let via_scan: Vec<Value> = ds
            .scan(None)
            .unwrap()
            .into_iter()
            .filter(|d| {
                let ts = d.get_field("timestamp").and_then(Value::as_int).unwrap();
                (1_000_100..=1_000_149).contains(&ts)
            })
            .collect();
        assert_eq!(via_index.len(), via_scan.len());
    }

    #[test]
    fn schema_grows_across_flushes_and_is_a_superset() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..50 {
            ds.insert(doc!({"id": i, "a": 1})).unwrap();
        }
        ds.flush().unwrap();
        let cols_before = schema::columns_of(ds.schema()).len();
        for i in 50..100 {
            ds.insert(doc!({"id": i, "a": "heterogeneous now", "b": {"c": 2.5}})).unwrap();
        }
        ds.flush().unwrap();
        let cols_after = schema::columns_of(ds.schema()).len();
        assert!(cols_after > cols_before);
        // Old and new records both survive scans despite the schema change.
        assert_eq!(ds.count().unwrap(), 100);
        let docs = ds.scan(None).unwrap();
        assert_eq!(docs.len(), 100);
    }

    #[test]
    fn missing_key_is_an_error() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Vb));
        assert!(ds.insert(doc!({"no_key": 1})).is_err());
        assert!(ds.insert(doc!({"id": null})).is_err());
    }

    #[test]
    fn stored_bytes_accounting() {
        let mut ds = LsmDataset::new(tiny_config(LayoutKind::Apax));
        for i in 0..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.primary_stored_bytes() > 0);
        assert!(ds.total_stored_bytes() >= ds.primary_stored_bytes());
        assert!(ds.io_stats().pages_written > 0);
    }
}
