//! One LSM-backed dataset partition.
//!
//! [`LsmDataset`] is the unit the facade crate and the benchmarks work with:
//! it owns the in-memory component, the stack of on-disk components (in the
//! configured layout), the cumulative inferred schema, the merge policy and
//! the optional primary-key / secondary indexes.
//!
//! Lifecycle, as in the paper:
//!
//! * inserts/upserts/deletes go to the memtable; the secondary index is kept
//!   correct by fetching the old record first (a point lookup — cheap for row
//!   layouts, linear-search-plus-decode for columnar ones, §4.6);
//! * when the memtable exceeds its budget it is *sealed* and flushed: the
//!   tuple compactor observes the flushed records to grow the inferred
//!   schema and the records are written as an on-disk component in the
//!   dataset's layout;
//! * the tiering merge policy may then schedule a *merge*, which reconciles
//!   the chosen components (newest version of each key wins, anti-matter
//!   annihilates older records) into a new component and frees the old pages.
//!
//! ## Concurrency
//!
//! All operations take `&self`; the dataset can be shared across threads
//! (writers, readers, and — with [`DatasetConfig::background`] — its own
//! flush/merge worker). The mutable state is split so readers never wait on
//! flushes or merges:
//!
//! * a small **write lock** guards the active memtable and the in-memory
//!   indexes — held only for the duration of one insert/delete (or a brief
//!   snapshot clone);
//! * the rest of the tree (sealed memtables + on-disk components) is an
//!   immutable [`TreeState`], swapped atomically behind an `RwLock<Arc<_>>`;
//!   readers grab the `Arc` and are done;
//! * a **maintenance lock** serialises flushes and merges (the fair FCFS
//!   scheduling of the paper's setup) and owns the schema builder and
//!   component id counter;
//! * the crate-private `Scheduler` coordinates the optional background
//!   worker and applies ingest backpressure when sealed memtables pile up.

use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use docmodel::{Path, Value};
use parking_lot::{Mutex, RwLock};
use persist::{CrashPoint, DurableStore, ManifestData, ManifestStore, PersistedConfig, WalRecord};
use schema::{Schema, SchemaBuilder};
use storage::amax::AmaxConfig;
use storage::component::{Component, ComponentConfig, ComponentReader, Entry};
use storage::leafcache::LeafCache;
use storage::pagestore::{BufferCache, IoStats, PageId, PageStore, DEFAULT_CACHE_PAGES};
use storage::LayoutKind;
use telemetry::{Event, EventKind, MetricsSnapshot, Telemetry};

use crate::index::{PrimaryKeyIndex, SecondaryIndex};
use crate::memtable::Memtable;
use crate::policy::CompactionSpec;
use crate::pool::{PoolHandle, Priority, WorkerPool};
use crate::scheduler::Scheduler;
use crate::snapshot::{EntryMergeCursor, SealedMemtable, Snapshot, TreeState};
use crate::Result;

/// Configuration of one dataset partition.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Dataset name (used in experiment output).
    pub name: String,
    /// Storage layout of on-disk components.
    pub layout: LayoutKind,
    /// Name of the primary-key field (must be present in every record).
    pub key_field: String,
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_budget: usize,
    /// Page size of the simulated disk.
    pub page_size: usize,
    /// Buffer-cache capacity in pages.
    pub cache_pages: usize,
    /// Compaction strategy and its knobs (persisted in the manifest).
    pub compaction: CompactionSpec,
    /// Maintain a primary-key index to avoid point lookups for new keys.
    pub primary_key_index: bool,
    /// Maintain a secondary index on this path (e.g. `timestamp`).
    pub secondary_index_on: Option<Path>,
    /// Apply page-level compression.
    pub compress_pages: bool,
    /// AMAX-specific knobs.
    pub amax: AmaxConfig,
    /// Run flushes and merges on a background worker thread instead of
    /// blocking the inserting thread (the paper's background-job LSM
    /// lifecycle, §2.1/§6.3). Off by default: synchronous mode keeps
    /// single-threaded experiments deterministic.
    pub background: bool,
    /// With `background`: how many sealed memtables may queue before
    /// ingestion is backpressured (blocks until a flush retires one).
    pub max_sealed_memtables: usize,
    /// With `background`: submit flushes and merges to this **shared**
    /// worker pool (see [`WorkerPool`]) instead of spawning a private
    /// single-worker pool. One pool serves any number of datasets/shards
    /// with flush-before-merge priority. Runtime-only, not persisted.
    pub pool: Option<PoolHandle>,
    /// Record metrics and lifecycle events in the dataset's [`Telemetry`]
    /// registry. On by default; the benchmark's observability experiment
    /// turns it off to measure the instrumentation overhead. Runtime-only,
    /// not persisted.
    pub telemetry_enabled: bool,
    /// This dataset's slice of the process-wide memory budget, in bytes
    /// (memtables + sealed queue + page cache + decoded-leaf cache). Persisted
    /// in the manifest so a reopened dataset keeps its caching behaviour;
    /// `0` = no budget configured. The facade (`docstore`) derives the
    /// per-shard knobs from `DatasetOptions::memory_budget`; a standalone
    /// dataset with a nonzero budget and no [`DatasetConfig::leaf_cache`]
    /// derives a private leaf cache of half this slice on reopen.
    pub memory_budget: usize,
    /// Shared decoded-leaf cache ([`LeafCache`]) to read leaves through. One
    /// `Arc`'d cache is shared by every shard of a sharded dataset (and could
    /// be shared by unrelated datasets). Runtime-only, not persisted — the
    /// opener re-attaches it (or derives one from `memory_budget`).
    pub leaf_cache: Option<Arc<LeafCache>>,
}

impl DatasetConfig {
    /// A reasonable laptop-scale default for the given layout.
    pub fn new(name: impl Into<String>, layout: LayoutKind) -> DatasetConfig {
        DatasetConfig {
            name: name.into(),
            layout,
            key_field: "id".to_string(),
            memtable_budget: 4 << 20,
            page_size: 128 * 1024,
            cache_pages: DEFAULT_CACHE_PAGES,
            compaction: CompactionSpec::default(),
            primary_key_index: true,
            secondary_index_on: None,
            compress_pages: true,
            amax: AmaxConfig::default(),
            background: false,
            max_sealed_memtables: 2,
            pool: None,
            telemetry_enabled: true,
            memory_budget: 0,
            leaf_cache: None,
        }
    }

    /// Builder-style: set the primary-key field name.
    pub fn with_key_field(mut self, key: impl Into<String>) -> Self {
        self.key_field = key.into();
        self
    }

    /// Builder-style: set the memtable budget in bytes.
    pub fn with_memtable_budget(mut self, bytes: usize) -> Self {
        self.memtable_budget = bytes;
        self
    }

    /// Builder-style: set the page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Builder-style: set the buffer-cache capacity in pages.
    pub fn with_cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Builder-style: declare a secondary index.
    pub fn with_secondary_index(mut self, path: Path) -> Self {
        self.secondary_index_on = Some(path);
        self
    }

    /// Builder-style: select the compaction strategy.
    pub fn with_compaction(mut self, compaction: CompactionSpec) -> Self {
        self.compaction = compaction;
        self
    }

    /// Builder-style: run flushes and merges on a background worker.
    pub fn with_background(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Builder-style: bound the sealed-memtable queue (backpressure point).
    pub fn with_max_sealed(mut self, max: usize) -> Self {
        self.max_sealed_memtables = max.max(1);
        self
    }

    /// Builder-style: share a [`WorkerPool`] with other datasets (implies
    /// nothing unless `background` is also set).
    pub fn with_pool(mut self, pool: PoolHandle) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Builder-style: enable or disable the telemetry registry.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry_enabled = enabled;
        self
    }

    /// Builder-style: record this dataset's memory-budget slice in bytes
    /// (persisted; see [`DatasetConfig::memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Builder-style: read decoded leaves through a shared [`LeafCache`].
    pub fn with_leaf_cache(mut self, cache: Arc<LeafCache>) -> Self {
        self.leaf_cache = Some(cache);
        self
    }

    /// The durable subset of this configuration, as recorded in manifests.
    /// Background-worker knobs are runtime-only and not persisted.
    pub fn to_persisted(&self) -> PersistedConfig {
        // The tiered knobs and the leveled knobs occupy distinct manifest
        // fields; the side not selected persists its defaults so the
        // manifest stays fully populated.
        let tiered = crate::policy::TieringPolicy::default();
        let leveled = crate::policy::LeveledPolicy::default();
        let (kind, size_ratio, max_components, target_size, l0_threshold, ratio) =
            match self.compaction {
                CompactionSpec::Tiered {
                    size_ratio,
                    max_components,
                } => (
                    0u8,
                    size_ratio,
                    max_components,
                    leveled.target_size,
                    leveled.l0_threshold,
                    leveled.ratio,
                ),
                CompactionSpec::Leveled {
                    target_size,
                    l0_threshold,
                    ratio,
                } => (
                    1u8,
                    tiered.size_ratio,
                    tiered.max_components,
                    target_size,
                    l0_threshold,
                    ratio,
                ),
                CompactionSpec::LazyLeveled {
                    target_size,
                    l0_threshold,
                    ratio,
                } => (
                    2u8,
                    tiered.size_ratio,
                    tiered.max_components,
                    target_size,
                    l0_threshold,
                    ratio,
                ),
            };
        PersistedConfig {
            name: self.name.clone(),
            layout: self.layout,
            key_field: self.key_field.clone(),
            memtable_budget: self.memtable_budget as u64,
            page_size: self.page_size as u64,
            cache_pages: self.cache_pages as u64,
            primary_key_index: self.primary_key_index,
            secondary_index_on: self.secondary_index_on.as_ref().map(|p| p.to_string()),
            compress_pages: self.compress_pages,
            amax_record_limit: self.amax.record_limit as u64,
            amax_empty_page_tolerance: self.amax.empty_page_tolerance,
            policy_size_ratio: size_ratio,
            policy_max_components: max_components as u64,
            compaction_kind: kind,
            compaction_target_size: target_size,
            compaction_l0_threshold: l0_threshold as u64,
            compaction_ratio: ratio,
            memory_budget: self.memory_budget as u64,
        }
    }

    /// Reconstruct a configuration from a manifest (the inverse of
    /// [`DatasetConfig::to_persisted`]).
    pub fn from_persisted(persisted: &PersistedConfig) -> DatasetConfig {
        DatasetConfig {
            name: persisted.name.clone(),
            layout: persisted.layout,
            key_field: persisted.key_field.clone(),
            memtable_budget: persisted.memtable_budget as usize,
            page_size: persisted.page_size as usize,
            cache_pages: persisted.cache_pages as usize,
            compaction: match persisted.compaction_kind {
                1 => CompactionSpec::Leveled {
                    target_size: persisted.compaction_target_size,
                    l0_threshold: persisted.compaction_l0_threshold as usize,
                    ratio: persisted.compaction_ratio,
                },
                2 => CompactionSpec::LazyLeveled {
                    target_size: persisted.compaction_target_size,
                    l0_threshold: persisted.compaction_l0_threshold as usize,
                    ratio: persisted.compaction_ratio,
                },
                // Kind 0 and anything a future format might add: tiered
                // (every pre-v3 manifest was written under this policy).
                _ => CompactionSpec::Tiered {
                    size_ratio: persisted.policy_size_ratio,
                    max_components: persisted.policy_max_components as usize,
                },
            },
            primary_key_index: persisted.primary_key_index,
            secondary_index_on: persisted
                .secondary_index_on
                .as_deref()
                .map(Path::parse),
            compress_pages: persisted.compress_pages,
            amax: AmaxConfig {
                record_limit: persisted.amax_record_limit as usize,
                empty_page_tolerance: persisted.amax_empty_page_tolerance,
            },
            background: false,
            max_sealed_memtables: 2,
            pool: None,
            telemetry_enabled: true,
            memory_budget: persisted.memory_budget as usize,
            leaf_cache: None,
        }
    }
}

/// State of a dataset's flush/merge worker, as reported by
/// [`LsmDataset::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Synchronous mode: flushes and merges run inline on the writing
    /// thread; there is no worker to be unhealthy.
    Inline,
    /// The background worker is waiting for work.
    Idle,
    /// The background worker is processing (or has signalled work pending).
    Busy,
    /// A background flush/merge failed; the error is parked and every write
    /// will surface it until an explicit `flush()` consumes it for retry.
    Failed,
}

/// Point-in-time health of one dataset partition (see
/// [`LsmDataset::health`]).
#[derive(Debug, Clone)]
pub struct DatasetHealth {
    /// Worker state.
    pub worker: WorkerState,
    /// Most recent background error, from the parked failure or the
    /// telemetry event ring.
    pub last_error: Option<String>,
    /// Sealed memtables queued for flushing (pending maintenance depth).
    pub pending_maintenance: usize,
    /// Ingest stalls caused by backpressure so far.
    pub stalls: u64,
    /// Total time writers spent stalled, in microseconds.
    pub stall_micros: u64,
}

/// Counters describing ingestion activity.
#[derive(Debug, Default, Clone, Copy)]
pub struct IngestStats {
    /// Records inserted or upserted.
    pub records_ingested: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Number of merge operations.
    pub merges: u64,
    /// Point lookups performed to maintain the secondary index.
    pub maintenance_lookups: u64,
    /// Wall-clock time spent in flushes.
    pub flush_time: Duration,
    /// Wall-clock time spent in merges.
    pub merge_time: Duration,
}

impl IngestStats {
    /// Combine counters from several shards/partitions.
    pub fn merged_with(mut self, other: &IngestStats) -> IngestStats {
        self.records_ingested += other.records_ingested;
        self.deletes += other.deletes;
        self.flushes += other.flushes;
        self.merges += other.merges;
        self.maintenance_lookups += other.maintenance_lookups;
        self.flush_time += other.flush_time;
        self.merge_time += other.merge_time;
        self
    }
}

/// Outcome of one [`LsmDataset::reclaim_space`] call (summed over its
/// passes).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimReport {
    /// Components rewritten into lower page slots.
    pub components_rewritten: usize,
    /// Pages copied (byte-identically) to lower slots.
    pub pages_moved: u64,
    /// Page slots released back to the operating system — the page file
    /// shrank by this many pages.
    pub pages_reclaimed: u64,
}

/// State guarded by the write lock: the active memtable and the in-memory
/// indexes maintained on the ingest path.
struct WriteState {
    memtable: Memtable,
    pk_index: PrimaryKeyIndex,
    secondary: Option<SecondaryIndex>,
}

/// State guarded by the maintenance lock: everything a flush or merge
/// mutates besides the published tree.
struct MaintState {
    schema_builder: SchemaBuilder,
    next_component_id: u64,
}

/// The shared core of a dataset (everything except pool-thread ownership).
struct DatasetCore {
    config: DatasetConfig,
    cache: BufferCache,
    durable: Option<Arc<DurableStore>>,
    write: Mutex<WriteState>,
    tree: RwLock<Arc<TreeState>>,
    maint: Mutex<MaintState>,
    stats: Mutex<IngestStats>,
    sched: Scheduler,
    telemetry: Arc<Telemetry>,
    /// Where background rounds run (`None` in synchronous mode). Holds no
    /// threads — pool tasks capture `self_ref`, so a queued task for a
    /// dropped dataset degenerates to a no-op.
    pool: Option<PoolHandle>,
    /// Weak self-reference captured by submitted pool tasks.
    self_ref: Weak<DatasetCore>,
    /// Source pages relocated by a GC pass, waiting for the pre-move
    /// component (possibly pinned by a snapshot) to drop before they can be
    /// freed. The moved and unmoved slots of a rewritten component are
    /// *shared* with its replacement, so the old component must not free on
    /// drop — this registry frees exactly the superseded source slots.
    deferred_frees: Mutex<Vec<(Weak<Component>, Vec<PageId>)>>,
}

/// One LSM dataset partition. All operations take `&self`; share it across
/// threads directly (scoped threads) or behind an `Arc`.
pub struct LsmDataset {
    core: Arc<DatasetCore>,
    /// Background mode without a shared pool spawns this private
    /// single-worker pool; its thread joins when the dataset drops.
    _private_pool: Option<WorkerPool>,
}

impl Drop for LsmDataset {
    fn drop(&mut self) {
        // Stop background work and wait for in-flight rounds: a pool task
        // may hold an upgraded core reference, and callers expect the
        // dataset's directory to be quiescent once drop returns. A private
        // pool additionally joins its worker thread when the field drops.
        self.core.sched.shutdown();
        self.core.sched.wait_idle();
    }
}

impl LsmDataset {
    /// Create an empty dataset with its own simulated disk.
    pub fn new(config: DatasetConfig) -> LsmDataset {
        let store = PageStore::with_page_size(config.page_size);
        let cache = BufferCache::new(store, config.cache_pages);
        LsmDataset::with_cache(config, cache)
    }

    /// Create an empty dataset on an existing store/cache (used when several
    /// datasets share one simulated disk, as partitions share an NC's cache).
    pub fn with_cache(config: DatasetConfig, cache: BufferCache) -> LsmDataset {
        LsmDataset::assemble(config, cache, None)
    }

    fn assemble(
        config: DatasetConfig,
        cache: BufferCache,
        durable: Option<Arc<DurableStore>>,
    ) -> LsmDataset {
        // Attach the shared decoded-leaf cache: every component built over
        // this buffer cache reads leaves through it, under an origin that
        // namespaces this dataset's component ids.
        let cache = match config.leaf_cache.as_ref() {
            Some(shared) => cache.with_leaf_cache(shared.handle()),
            None => cache,
        };
        let secondary = config.secondary_index_on.as_ref().map(|_| SecondaryIndex::new());
        let schema_builder = SchemaBuilder::new(Some(config.key_field.clone()));
        let telemetry = Arc::new(if config.telemetry_enabled {
            Telemetry::new()
        } else {
            Telemetry::disabled()
        });
        if let Some(durable) = durable.as_ref() {
            durable.set_telemetry(telemetry.clone());
        }
        // Background rounds need a pool: the shared one from the config if
        // the caller provided it, otherwise a private single-worker pool —
        // the old one-thread-per-dataset behaviour, now just a pool of one.
        let (pool, private_pool) = if config.background {
            match config.pool.clone() {
                Some(handle) => (Some(handle), None),
                None => {
                    let private = WorkerPool::new(1);
                    (Some(private.handle()), Some(private))
                }
            }
        } else {
            (None, None)
        };
        let core = Arc::new_cyclic(|self_ref| DatasetCore {
            config,
            cache,
            durable,
            write: Mutex::new(WriteState {
                memtable: Memtable::new(),
                pk_index: PrimaryKeyIndex::new(),
                secondary,
            }),
            tree: RwLock::new(Arc::new(TreeState::default())),
            maint: Mutex::new(MaintState {
                schema_builder,
                next_component_id: 0,
            }),
            stats: Mutex::new(IngestStats::default()),
            sched: Scheduler::new(),
            telemetry,
            pool,
            self_ref: self_ref.clone(),
            deferred_frees: Mutex::new(Vec::new()),
        });
        LsmDataset {
            core,
            _private_pool: private_pool,
        }
    }

    /// Open a **durable** dataset rooted at the directory `dir`, creating it
    /// if needed and recovering it if it already exists.
    ///
    /// Recovery follows the protocol documented in the `persist` crate: the
    /// manifest defines the on-disk components and the schema snapshot; the
    /// WAL segments are replayed into the memtable; the primary-key and
    /// secondary indexes are rebuilt from the recovered state. Runtime knobs
    /// (memtable budget, cache size, merge policy, background workers) come
    /// from `config`; `config.key_field` must match the persisted dataset.
    pub fn open(dir: impl AsRef<std::path::Path>, config: DatasetConfig) -> Result<LsmDataset> {
        let (durable, recovered) = DurableStore::open(dir.as_ref(), config.page_size)?;
        let cache = BufferCache::new(durable.page_store().clone(), config.cache_pages);
        let dataset = LsmDataset::assemble(config, cache, Some(Arc::new(durable)));
        let core = &dataset.core;

        if let Some(manifest) = recovered.manifest {
            if manifest.config.key_field != core.config.key_field {
                return Err(crate::LsmError::new(format!(
                    "dataset at {} has key field '{}', config says '{}'",
                    dir.as_ref().display(),
                    manifest.config.key_field,
                    core.config.key_field
                )));
            }
            let mut maint = core.maint.lock();
            maint.schema_builder = SchemaBuilder::from_schema(manifest.schema.clone());
            maint.next_component_id = manifest.next_component_id;
            let component_config = core.component_config();
            let mut components = Vec::new();
            for desc in manifest.components {
                components.push(Arc::new(Component::open(
                    &core.cache,
                    &component_config,
                    manifest.schema.clone(),
                    desc,
                )));
            }
            *core.tree.write() = Arc::new(TreeState {
                sealed: Vec::new(),
                components,
            });
        }
        core.sweep_orphan_pages()?;
        let replayed_records = recovered.wal_records.len();
        {
            let mut write = core.write.lock();
            for record in recovered.wal_records {
                match record {
                    WalRecord::Insert { key, record } => {
                        write.memtable.insert(key, record);
                    }
                    WalRecord::Delete { key } => {
                        write.memtable.delete(key);
                    }
                }
            }
        }
        core.rebuild_indexes()?;
        core.telemetry.emit(EventKind::RecoveryReplay {
            segments: recovered.wal_segments_replayed,
            records: replayed_records,
            torn_tail_healed: recovered.torn_tail_healed,
            components: core.tree.read().components.len(),
        });
        Ok(dataset)
    }

    /// Read the configuration persisted in a durable dataset directory's
    /// manifest without opening the dataset (no WAL replay, no recovery).
    /// Lets a multi-shard opener sum the per-shard budget slices and build
    /// one shared leaf cache before reopening any shard. Fails if the
    /// directory has no manifest yet.
    pub fn peek_persisted_config(dir: impl AsRef<std::path::Path>) -> Result<DatasetConfig> {
        let (_, manifest) = ManifestStore::open(dir.as_ref())?;
        let Some(manifest) = manifest else {
            return Err(crate::LsmError::new(format!(
                "no manifest in {} — reopen only works on a flushed dataset (use LsmDataset::open with a config to create one)",
                dir.as_ref().display()
            )));
        };
        Ok(DatasetConfig::from_persisted(&manifest.config))
    }

    /// Reopen a durable dataset from its directory alone: the persisted
    /// configuration in the manifest is used (a dataset directory is
    /// self-describing). Fails if the directory has no manifest yet.
    pub fn reopen(dir: impl AsRef<std::path::Path>) -> Result<LsmDataset> {
        let mut config = LsmDataset::peek_persisted_config(dir.as_ref())?;
        // A persisted budget with no cache supplied by the caller: derive a
        // private leaf cache of half the slice — the same split the facade
        // applies — so the dataset keeps its caching behaviour on reopen.
        if config.memory_budget > 0 && config.leaf_cache.is_none() {
            config.leaf_cache = Some(Arc::new(LeafCache::new(config.memory_budget / 2)));
        }
        LsmDataset::open(dir, config)
    }

    /// Reopen like [`LsmDataset::reopen`], but read decoded leaves through
    /// the given **shared** [`LeafCache`] instead of deriving a private one
    /// from the persisted budget. The facade uses this to re-attach one
    /// cache across every shard of a reopened sharded dataset.
    pub fn reopen_with_leaf_cache(
        dir: impl AsRef<std::path::Path>,
        cache: Arc<LeafCache>,
    ) -> Result<LsmDataset> {
        let config = LsmDataset::peek_persisted_config(dir.as_ref())?.with_leaf_cache(cache);
        LsmDataset::open(dir, config)
    }

    /// `true` when the dataset is backed by a directory (WAL + manifest).
    pub fn is_durable(&self) -> bool {
        self.core.durable.is_some()
    }

    /// Force acknowledged WAL records to the device (group commit). No-op
    /// for in-memory datasets.
    pub fn sync(&self) -> Result<()> {
        match self.core.durable.as_ref() {
            Some(durable) => durable.sync_wal(),
            None => Ok(()),
        }
    }

    /// Bytes currently in the WAL (0 for in-memory datasets).
    pub fn wal_bytes(&self) -> u64 {
        self.core
            .durable
            .as_ref()
            .map(|d| d.wal_bytes())
            .unwrap_or(0)
    }

    /// Version of the last committed manifest (0 for in-memory datasets or
    /// before the first flush).
    pub fn manifest_version(&self) -> u64 {
        self.core
            .durable
            .as_ref()
            .map(|d| d.manifest_version())
            .unwrap_or(0)
    }

    /// Arm a crash point in the durability layer (recovery tests). No-op for
    /// in-memory datasets.
    pub fn set_crash_point(&self, point: CrashPoint) {
        if let Some(durable) = self.core.durable.as_ref() {
            durable.set_crash_point(point);
        }
    }

    /// The dataset's configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.core.config
    }

    /// The buffer cache (shared with the query engine for I/O accounting).
    pub fn cache(&self) -> &BufferCache {
        &self.core.cache
    }

    /// A copy of the cumulative inferred schema.
    pub fn schema(&self) -> Schema {
        self.core.maint.lock().schema_builder.schema().clone()
    }

    /// Ingestion counters.
    pub fn stats(&self) -> IngestStats {
        *self.core.stats.lock()
    }

    /// The dataset's telemetry registry (counters, histograms, event ring).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.core.telemetry
    }

    /// The most recent `n` lifecycle events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        self.core.telemetry.recent_events(n)
    }

    /// A point-in-time metrics snapshot: every registry counter and
    /// histogram, the sampled I/O counters of the underlying store
    /// (`storage.*`), current-state gauges (`lsm.*`, `wal.*`), and the
    /// derived write/read/space amplification gauges (`amp.*`) — the latter
    /// always recomputable from the raw counters in the same snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.core.telemetry.snapshot(&self.core.config.name);
        let io = self.io_stats();
        snap.push_counter("storage.pages_read", io.pages_read);
        snap.push_counter("storage.pages_written", io.pages_written);
        snap.push_counter("storage.bytes_read", io.bytes_read);
        snap.push_counter("storage.bytes_written", io.bytes_written);
        snap.push_counter("storage.cache_hits", io.cache_hits);
        snap.push_counter("storage.records_assembled", io.records_assembled);
        snap.push_counter("cache.hits", io.leaf_cache_hits);
        snap.push_counter("cache.misses", io.leaf_cache_misses);
        snap.push_counter("cache.evictions", io.leaf_cache_evictions);
        snap.push_gauge(
            "storage.allocated_bytes",
            self.core.cache.store().allocated_bytes() as f64,
        );
        snap.push_gauge("lsm.components", self.component_count() as f64);
        snap.push_gauge("lsm.live_stored_bytes", self.primary_stored_bytes() as f64);
        snap.push_gauge("lsm.sealed_queue_depth", self.sealed_count() as f64);
        snap.push_gauge(
            "lsm.memtable_bytes",
            self.core.write.lock().memtable.approx_bytes() as f64,
        );
        snap.push_gauge("wal.bytes", self.wal_bytes() as f64);
        snap.push_gauge("manifest.version", self.manifest_version() as f64);
        snap.with_derived_gauges()
    }

    /// Health of the dataset's background machinery, backed by the
    /// scheduler's non-consuming status and the telemetry event ring: a
    /// parked worker error shows up here *without* being consumed, so the
    /// next write still observes it.
    pub fn health(&self) -> DatasetHealth {
        let status = self.core.sched.status();
        let worker = if !self.core.config.background {
            WorkerState::Inline
        } else if status.failed.is_some() {
            WorkerState::Failed
        } else if status.busy || status.pending {
            WorkerState::Busy
        } else {
            WorkerState::Idle
        };
        // Prefer the live parked error; fall back to the event ring so an
        // error drained by a retry is still reported until it scrolls off.
        let last_error = status
            .failed
            .map(|e| e.to_string())
            .or_else(|| self.core.telemetry.events.last_error());
        DatasetHealth {
            worker,
            last_error,
            pending_maintenance: status.sealed_count,
            stalls: self.core.telemetry.stalls.get(),
            stall_micros: self.core.telemetry.stall_micros.get(),
        }
    }

    /// I/O counters of the underlying simulated disk.
    pub fn io_stats(&self) -> IoStats {
        self.core.cache.store().stats()
    }

    /// Number of on-disk components.
    pub fn component_count(&self) -> usize {
        self.core.tree.read().components.len()
    }

    /// Shared handles to the current on-disk components, oldest first — the
    /// planner's window onto per-component statistics without the cost of a
    /// full snapshot (no memtable clone, no write-lock acquisition).
    pub fn components(&self) -> Vec<Arc<Component>> {
        self.core.tree.read().components.clone()
    }

    /// Number of sealed memtables currently queued for flushing.
    pub fn sealed_count(&self) -> usize {
        self.core.tree.read().sealed.len()
    }

    /// Total bytes stored on disk for the primary index.
    pub fn primary_stored_bytes(&self) -> u64 {
        self.core
            .tree
            .read()
            .components
            .iter()
            .map(|c| c.meta().stored_bytes)
            .sum()
    }

    /// Total bytes including the (approximated) secondary structures.
    pub fn total_stored_bytes(&self) -> u64 {
        let write = self.core.write.lock();
        let pk = if self.core.config.primary_key_index {
            write.pk_index.approx_bytes()
        } else {
            0
        };
        let sec = write
            .secondary
            .as_ref()
            .map(SecondaryIndex::approx_bytes)
            .unwrap_or(0);
        drop(write);
        self.primary_stored_bytes() + pk + sec
    }

    /// Take a consistent point-in-time [`Snapshot`] for reads. The write
    /// lock is held only long enough to clone the active memtable; flushes
    /// and merges never invalidate a snapshot.
    pub fn snapshot(&self) -> Snapshot {
        if self.core.telemetry.enabled() {
            self.core.telemetry.snapshots.incr();
        }
        let write = self.core.write.lock();
        let active: Vec<(Value, Option<Value>)> = write
            .memtable
            .iter()
            .map(|(k, v)| (k.clone(), v.cloned()))
            .collect();
        let tree = self.core.tree.read().clone();
        drop(write);
        Snapshot { active: Arc::new(active), tree }
    }

    /// Records (and anti-matter) currently in memory: the active memtable
    /// plus every sealed memtable. Feeds the planner's memtable-aware CPU
    /// cost term.
    pub fn in_memory_entries(&self) -> usize {
        let active = self.core.write.lock().memtable.len();
        active
            + self
                .core
                .tree
                .read()
                .sealed
                .iter()
                .map(|s| s.entries.len())
                .sum::<usize>()
    }

    /// Insert (or upsert) a record. For durable datasets the record is
    /// appended to the WAL before it is applied, so once `insert` returns it
    /// survives a process crash. The WAL is flushed to the OS immediately
    /// but fsynced lazily — call [`LsmDataset::sync`] where device-level
    /// durability (power loss) is required.
    ///
    /// With [`DatasetConfig::background`], a full memtable is sealed and
    /// handed to the worker; this call blocks only when
    /// `max_sealed_memtables` seals are already queued (backpressure), and
    /// surfaces any error a previous background flush/merge hit.
    pub fn insert(&self, record: Value) -> Result<()> {
        self.core.apply(Some(record), None)
    }

    /// Delete the record with the given key (an anti-matter entry is added).
    /// Logged to the WAL like [`LsmDataset::insert`], with the same
    /// crash-durability caveats.
    pub fn delete(&self, key: Value) -> Result<()> {
        self.core.apply(None, Some(key))
    }

    /// Flush everything in memory to disk: seals the active memtable and
    /// waits until every sealed memtable is flushed (and triggered merges
    /// completed). Surfaces parked background errors; calling again retries.
    pub fn flush(&self) -> Result<()> {
        {
            let mut write = self.core.write.lock();
            self.core.seal_locked(&mut write)?;
        }
        if self.core.config.background {
            // Queue a round even when nothing was just sealed, so the work
            // behind a parked failure is re-attempted; then wait for the
            // dataset to go quiescent. If the shared pool has shut down
            // underneath us, fall through to inline processing.
            if self.core.enqueue_background(Priority::Flush) {
                return self.core.sched.drain();
            }
        }
        self.core.process_pending()
    }

    /// Force-flush and merge everything down to a single component (used at
    /// the end of ingestion so query experiments run against a settled tree).
    pub fn compact_fully(&self) -> Result<()> {
        self.flush()?;
        loop {
            let mut maint = self.core.maint.lock();
            let n = self.core.tree.read().components.len();
            if n <= 1 {
                return Ok(());
            }
            let positions: Vec<usize> = (0..n).collect();
            self.core.merge_components_locked(&mut maint, &positions)?;
        }
    }

    /// Reclaim dead space in the page file. Free-listed slots in the middle
    /// of the file are plugged by relocating live pages downward
    /// (byte-identical copies; the manifest is re-committed to the new
    /// locations) until the dead space forms a contiguous tail, which is
    /// then truncated. Runs under the maintenance lock, so it serialises
    /// with flushes and merges but never blocks readers: snapshots taken
    /// before (or during) a pass keep reading the retired pre-move
    /// components, whose pages are only freed when the last snapshot drops —
    /// such held pages are simply not reclaimed this call.
    ///
    /// Repeats passes until the file stops shrinking. Emits a
    /// `space_reclaimed` lifecycle event when anything moved.
    pub fn reclaim_space(&self) -> Result<ReclaimReport> {
        self.core.reclaim_space()
    }

    /// Point lookup: newest version of `key`, reconciling the memtable and
    /// every component (newest first). `None` when the key does not exist or
    /// was deleted.
    pub fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Value>> {
        let tree = {
            let write = self.core.write.lock();
            if let Some(entry) = write.memtable.get(key) {
                return Ok(entry.cloned());
            }
            self.core.tree.read().clone()
        };
        Snapshot {
            active: Arc::new(Vec::new()),
            tree,
        }
        .lookup(key, projection)
    }

    /// Batched point lookups for the (sorted) keys produced by a secondary
    /// index probe (§4.6).
    pub fn lookup_sorted_keys(
        &self,
        keys: &mut [Value],
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        self.snapshot().lookup_sorted_keys(keys, projection)
    }

    /// Scan the dataset, reconciling duplicates and dropping anti-matter.
    /// Only the projected paths are assembled from columnar components.
    pub fn scan(&self, projection: Option<&[Path]>) -> Result<Vec<Value>> {
        self.snapshot().scan(projection)
    }

    /// Number of live records (COUNT(*)): only primary keys are read, which
    /// for AMAX means Page 0 alone.
    pub fn count(&self) -> Result<usize> {
        self.snapshot().count()
    }

    /// Answer a range query on the secondary index: probe the index, sort the
    /// resulting primary keys, and perform batched point lookups.
    pub fn secondary_range(
        &self,
        lo: &Value,
        hi: &Value,
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        self.secondary_range_bounds(
            std::ops::Bound::Included(lo),
            std::ops::Bound::Included(hi),
            projection,
        )
    }

    /// Like [`LsmDataset::secondary_range`], but with arbitrary (open or
    /// exclusive) endpoints — the probe the query planner derives from a
    /// filter expression that implies a range on the indexed path.
    pub fn secondary_range_bounds(
        &self,
        lo: std::ops::Bound<&Value>,
        hi: std::ops::Bound<&Value>,
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        Ok(self
            .secondary_range_entries(lo, hi, projection)?
            .into_iter()
            .map(|(_, doc)| doc)
            .collect())
    }

    /// Like [`LsmDataset::secondary_range_bounds`], but keeping each record
    /// paired with its primary key, in key order — what the query layer's
    /// key-ordered projection output consumes.
    pub fn secondary_range_entries(
        &self,
        lo: std::ops::Bound<&Value>,
        hi: std::ops::Bound<&Value>,
        projection: Option<&[Path]>,
    ) -> Result<Vec<(Value, Value)>> {
        let mut keys = {
            let write = self.core.write.lock();
            let secondary = write
                .secondary
                .as_ref()
                .ok_or_else(|| crate::LsmError::new("dataset has no secondary index"))?;
            secondary.range_bounds(lo, hi)
        };
        self.snapshot().lookup_sorted_entries(&mut keys, projection)
    }
}

impl DatasetCore {
    fn component_config(&self) -> ComponentConfig {
        ComponentConfig {
            layout: self.config.layout,
            amax: self.config.amax,
            compress_pages: self.config.compress_pages,
        }
    }

    fn extract_key(&self, record: &Value) -> Result<Value> {
        record
            .get_field(&self.config.key_field)
            .filter(|v| v.is_atomic() && !v.is_null())
            .cloned()
            .ok_or_else(|| {
                crate::LsmError::new(format!(
                    "record lacks an atomic primary key field '{}'",
                    self.config.key_field
                ))
            })
    }

    /// One insert (`record = Some`) or delete (`key = Some`) through the
    /// write lock, with sealing and (synchronous-mode) inline flushing.
    fn apply(&self, record: Option<Value>, delete_key: Option<Value>) -> Result<()> {
        if self.config.background && self.pool_is_open() {
            // Backpressure gate — taken *before* the write lock so stalled
            // writers never block readers or the workers.
            let stalled = self.sched.admit(self.config.max_sealed_memtables)?;
            if let Some(stall) = stalled {
                if self.telemetry.enabled() {
                    self.telemetry.stalls.incr();
                    self.telemetry.stall_micros.add(stall.as_micros() as u64);
                }
            }
        }
        {
            let mut write = self.write.lock();
            match (record, delete_key) {
                (Some(record), _) => {
                    let key = self.extract_key(&record)?;
                    // Fallible work (index-maintenance lookups can hit I/O
                    // errors) happens before the WAL append: a failed insert
                    // must not leave a logged record behind for recovery to
                    // resurrect.
                    self.maintain_secondary_for_upsert(&mut write, &key, Some(&record))?;
                    if let Some(durable) = self.durable.as_ref() {
                        durable.log_insert(&key, &record)?;
                    }
                    write.pk_index.insert(&key);
                    let bytes_before = write.memtable.approx_bytes();
                    write.memtable.insert(key, record);
                    if self.telemetry.enabled() {
                        self.telemetry.records_ingested.incr();
                        let grew = write.memtable.approx_bytes().saturating_sub(bytes_before);
                        self.telemetry.bytes_ingested.add(grew as u64);
                    }
                    self.stats.lock().records_ingested += 1;
                }
                (None, Some(key)) => {
                    self.maintain_secondary_for_upsert(&mut write, &key, None)?;
                    if let Some(durable) = self.durable.as_ref() {
                        durable.log_delete(&key)?;
                    }
                    write.memtable.delete(key);
                    if self.telemetry.enabled() {
                        self.telemetry.deletes.incr();
                    }
                    self.stats.lock().deletes += 1;
                }
                (None, None) => unreachable!("apply needs a record or a key"),
            }
            if write.memtable.approx_bytes() >= self.config.memtable_budget {
                self.seal_locked(&mut write)?;
            }
        }
        // Inline processing, outside the write lock: synchronous mode (and
        // retries of earlier failed inline work), or a background dataset
        // whose shared pool has shut down underneath it — nothing else
        // would flush, so the writer does.
        if self.sched.sealed_count() > 0 && (!self.config.background || !self.pool_is_open()) {
            self.process_pending()?;
        }
        Ok(())
    }

    /// Whether background rounds can still be queued on the pool.
    fn pool_is_open(&self) -> bool {
        self.pool.as_ref().is_some_and(|pool| pool.is_open())
    }

    /// Seal the active memtable: rotate the WAL so the sealed records are
    /// confined to closed segments, publish the sealed memtable in the tree,
    /// and signal the scheduler. No-op when the memtable is empty.
    fn seal_locked(&self, write: &mut WriteState) -> Result<()> {
        if write.memtable.is_empty() {
            return Ok(());
        }
        let wal_segment = match self.durable.as_ref() {
            Some(durable) => Some(durable.rotate_wal()?),
            None => None,
        };
        let bytes = write.memtable.approx_bytes();
        let entries = write.memtable.drain_sorted();
        let sealed = Arc::new(SealedMemtable {
            entries,
            wal_segment,
            bytes,
        });
        {
            let mut tree = self.tree.write();
            let mut next = (**tree).clone();
            next.sealed.push(sealed);
            *tree = Arc::new(next);
        }
        self.sched.note_sealed();
        if self.config.background {
            self.enqueue_background(Priority::Flush);
        }
        Ok(())
    }

    /// Queue one background round on the worker pool. Returns `false` when
    /// there is no pool or it has shut down (callers fall back inline).
    fn enqueue_background(&self, priority: Priority) -> bool {
        let Some(pool) = self.pool.as_ref() else {
            return false;
        };
        let weak = self.self_ref.clone();
        // Account before submitting so a fast worker can never report the
        // round done before it was counted as queued.
        self.sched.task_enqueued();
        let accepted = pool.submit(
            priority,
            Box::new(move || {
                if let Some(core) = weak.upgrade() {
                    core.run_background_round(priority);
                }
            }),
        );
        if !accepted {
            self.sched.task_rejected();
        }
        accepted
    }

    /// One pool-executed background round. A *flush* round drains every
    /// queued sealed memtable oldest-first, queueing one merge round per
    /// flushed component; a *merge* round asks the compaction strategy
    /// once. Panics and errors are parked in the scheduler exactly like
    /// the former dedicated worker thread's.
    fn run_background_round(&self, priority: Priority) {
        if !self.sched.begin_work() {
            return; // shutting down: the round is dropped
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match priority {
            Priority::Flush => self.background_flush_round(),
            Priority::Merge => {
                let mut maint = self.maint.lock();
                self.maybe_merge_locked(&mut maint)
            }
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(crate::LsmError::new(format!(
                "background flush/merge worker panicked: {msg}"
            )))
        });
        if let Err(err) = &result {
            // Trace the parked error *before* it becomes visible to
            // writers, so health() backed by the event ring never lags
            // admit().
            self.telemetry.emit(EventKind::WorkerError {
                message: err.to_string(),
            });
        }
        self.sched.work_done(result);
    }

    /// Background flush round: flush sealed memtables until none remain.
    /// Merges ride a *lower* pool priority, so queued flushes — which
    /// release ingest backpressure — run first across every dataset
    /// sharing the pool.
    fn background_flush_round(&self) -> Result<()> {
        while self.flush_next_sealed()? {
            self.enqueue_background(Priority::Merge);
        }
        Ok(())
    }

    /// Flush every queued sealed memtable, oldest first, running the merge
    /// policy after each flush. The inline path: synchronous mode, and the
    /// fallback when a shared pool has shut down.
    fn process_pending(&self) -> Result<()> {
        while self.flush_next_sealed()? {
            let mut maint = self.maint.lock();
            self.maybe_merge_locked(&mut maint)?;
        }
        Ok(())
    }

    /// Flush the oldest sealed memtable, if any. Returns whether there was
    /// one (racing flushers may mean no actual work was done).
    fn flush_next_sealed(&self) -> Result<bool> {
        let next = self.tree.read().sealed.first().cloned();
        let Some(sealed) = next else { return Ok(false) };
        self.flush_sealed(&sealed)?;
        Ok(true)
    }

    /// Flush one sealed memtable into an on-disk component.
    fn flush_sealed(&self, sealed: &Arc<SealedMemtable>) -> Result<()> {
        let started = Instant::now();
        let mut maint = self.maint.lock();
        // Another thread may have flushed it while we waited for the lock.
        let Some(current) = self.tree.read().sealed.first().cloned() else {
            return Ok(());
        };
        if !Arc::ptr_eq(&current, sealed) {
            return Ok(());
        }
        self.telemetry.emit(EventKind::FlushBegin {
            entries: sealed.entries.len(),
        });
        // Tuple compactor: infer the schema from the flushed records (§2.2).
        for (_, record) in &sealed.entries {
            if let Some(record) = record {
                maint.schema_builder.observe(record);
            }
        }
        let schema = maint.schema_builder.schema().clone();
        let component = Arc::new(Component::write(
            &self.cache,
            &self.component_config(),
            schema.clone(),
            &sealed.entries,
            maint.next_component_id,
        )?);
        maint.next_component_id += 1;
        let pages_out = component.meta().pages.len() as u64;
        // Durable flush: sync pages, commit the manifest recording the new
        // component (and the schema snapshot), then drop the WAL segments
        // covering the sealed records.
        if let Some(durable) = self.durable.as_ref() {
            let mut components = self.tree.read().components.clone();
            components.push(component.clone());
            let data = self.manifest_data(&maint, &schema, &components);
            let segment = sealed
                .wal_segment
                .expect("durable sealed memtable records its WAL segment");
            durable.commit_flush(data, segment)?;
        }
        {
            let mut tree = self.tree.write();
            let mut next = (**tree).clone();
            let pos = next
                .sealed
                .iter()
                .position(|s| Arc::ptr_eq(s, sealed))
                .expect("sealed memtable vanished while flushing");
            next.sealed.remove(pos);
            next.components.push(component);
            *tree = Arc::new(next);
        }
        self.sched.note_flushed();
        let elapsed = started.elapsed();
        if self.telemetry.enabled() {
            self.telemetry.flushes.incr();
            self.telemetry.flush_entries.add(sealed.entries.len() as u64);
            self.telemetry.flush_pages_out.add(pages_out);
            self.telemetry.flush_duration.record(elapsed.as_micros() as u64);
            self.telemetry.emit(EventKind::FlushEnd {
                entries: sealed.entries.len(),
                pages_out,
                micros: elapsed.as_micros() as u64,
            });
        }
        {
            let mut stats = self.stats.lock();
            stats.flushes += 1;
            stats.flush_time += elapsed;
        }
        Ok(())
    }

    fn manifest_data(
        &self,
        maint: &MaintState,
        schema: &Schema,
        components: &[Arc<Component>],
    ) -> ManifestData {
        ManifestData {
            version: 0, // assigned by the manifest store at commit
            config: self.config.to_persisted(),
            next_component_id: maint.next_component_id,
            schema: schema.clone(),
            components: components.iter().map(|c| c.describe()).collect(),
        }
    }

    /// Recovery-time page reconciliation: free every allocated page slot no
    /// live component references. This simultaneously repopulates the file
    /// backend's free list (which is not persisted across restarts) and
    /// reclaims pages orphaned by a crash between writing a component's
    /// pages and committing the manifest that would have referenced them —
    /// the `persist` crate's documented crash windows.
    fn sweep_orphan_pages(&self) -> Result<()> {
        let components = self.tree.read().components.clone();
        let store = self.cache.store();
        let page_count = store.page_count();
        if page_count == 0 {
            return Ok(());
        }
        let referenced: std::collections::HashSet<PageId> = components
            .iter()
            .flat_map(|c| c.meta().pages.iter().copied())
            .collect();
        let orphans: Vec<PageId> = (0..page_count)
            .filter(|id| !referenced.contains(id))
            .collect();
        if orphans.is_empty() {
            return Ok(());
        }
        self.cache.free_pages(&orphans);
        let truncated = store.shrink_free_tail()?;
        self.telemetry.emit(EventKind::OrphanSweep {
            scanned: page_count,
            freed: orphans.len() as u64,
            truncated,
        });
        Ok(())
    }

    /// See [`LsmDataset::reclaim_space`]: run GC passes until the page file
    /// stops shrinking.
    fn reclaim_space(&self) -> Result<ReclaimReport> {
        let mut total = ReclaimReport::default();
        loop {
            let before = self.cache.store().page_count();
            let pass = self.reclaim_pass()?;
            total.components_rewritten += pass.components_rewritten;
            total.pages_moved += pass.pages_moved;
            total.pages_reclaimed += pass.pages_reclaimed;
            // Keep going only while the file is actually shrinking (a pass
            // can relocate pages without net progress when snapshots pin
            // the originals).
            if pass.pages_reclaimed == 0 || self.cache.store().page_count() >= before {
                break;
            }
        }
        if total.pages_moved > 0 || total.pages_reclaimed > 0 {
            self.telemetry.emit(EventKind::SpaceReclaimed {
                components_rewritten: total.components_rewritten,
                pages_moved: total.pages_moved,
                pages_reclaimed: total.pages_reclaimed,
            });
        }
        Ok(total)
    }

    /// Free the relocated source pages of rewritten components whose
    /// pre-move handle has since dropped (the snapshot that pinned them is
    /// gone). Called on every GC pass; a dataset dropped with entries still
    /// pending leaks nothing durable — the next open's orphan sweep reclaims
    /// the unreferenced slots.
    fn sweep_deferred_frees(&self) {
        let mut pending = self.deferred_frees.lock();
        let mut freeable: Vec<PageId> = Vec::new();
        pending.retain(|(component, pages)| {
            if component.strong_count() == 0 {
                freeable.extend_from_slice(pages);
                false
            } else {
                true
            }
        });
        drop(pending);
        if !freeable.is_empty() {
            self.cache.free_pages(&freeable);
        }
    }

    /// One GC pass: relocate live pages sitting above the live watermark
    /// (total live pages — where the file would end if it were perfectly
    /// packed) into lower free slots, commit the remapped manifest, and
    /// truncate the freed tail. Pages only ever move *downward* (a copy that
    /// would land at a higher slot is discarded), so passes strictly shrink
    /// the sum of live page ids and the loop terminates packed.
    fn reclaim_pass(&self) -> Result<ReclaimReport> {
        let maint = self.maint.lock();
        self.sweep_deferred_frees();
        let components = self.tree.read().components.clone();
        let live: u64 = components
            .iter()
            .map(|c| c.meta().pages.len() as u64)
            .sum();
        let schema = maint.schema_builder.schema().clone();
        let component_config = self.component_config();
        let mut new_components = components.clone();
        let mut rewritten: Vec<usize> = Vec::new();
        let mut pages_moved = 0u64;
        for (i, component) in components.iter().enumerate() {
            if !component.meta().pages.iter().any(|&p| p >= live) {
                continue;
            }
            // Copy each high page byte-identically (below the component
            // layer, so compression flags and encodings ride along
            // untouched) into the lowest free slot. Keep the original
            // whenever the copy would not actually move the page down.
            let mut desc = component.describe();
            let mut remap = std::collections::HashMap::new();
            let mut sources = Vec::new();
            for page in &mut desc.pages {
                if *page < live {
                    continue;
                }
                let raw = self.cache.try_read_page(*page)?;
                let moved = self.cache.append_page(raw.as_ref().clone());
                if moved >= *page {
                    self.cache.free_pages(&[moved]);
                    continue;
                }
                remap.insert(*page, moved);
                sources.push(*page);
                *page = moved;
                pages_moved += 1;
            }
            if remap.is_empty() {
                continue;
            }
            for leaf in &mut desc.leaves {
                if let Some(&moved) = remap.get(&leaf.page) {
                    leaf.page = moved;
                }
                for data_page in &mut leaf.data_pages {
                    if let Some(&moved) = remap.get(data_page) {
                        *data_page = moved;
                    }
                }
            }
            new_components[i] = Arc::new(Component::open(
                &self.cache,
                &component_config,
                schema.clone(),
                desc,
            ));
            // The rewritten component keeps its id but relocated its pages.
            // Its decoded leaves are byte-identical, but the cached state
            // must not outlive a physical relocation — invalidate eagerly
            // rather than reasoning about which entries would stay valid.
            if let Some(handle) = self.cache.leaf_cache() {
                handle.invalidate_component(component.meta().id);
            }
            // The replacement shares the unmoved slots with the original, so
            // the original must not free on drop; only the superseded source
            // slots die, and only once nothing references the original.
            self.deferred_frees
                .lock()
                .push((Arc::downgrade(component), sources));
            rewritten.push(i);
        }
        if rewritten.is_empty() {
            // Already packed below the watermark: everything above it is
            // free-listed, so the tail shrink is the whole pass.
            drop(maint);
            let pages_reclaimed = self.cache.store().shrink_free_tail()?;
            return Ok(ReclaimReport {
                components_rewritten: 0,
                pages_moved: 0,
                pages_reclaimed,
            });
        }
        // Same publication protocol as a merge: the manifest swap commits
        // first, so a crash never loses the dataset — it merely re-orphans
        // either the copies or the originals, which the next open sweeps.
        if let Some(durable) = self.durable.as_ref() {
            let data = self.manifest_data(&maint, &schema, &new_components);
            durable.commit_merge(data)?;
        }
        {
            let mut tree = self.tree.write();
            let mut next = (**tree).clone();
            next.components = new_components;
            *tree = Arc::new(next);
        }
        drop(components);
        drop(maint);
        self.sweep_deferred_frees();
        let pages_reclaimed = self.cache.store().shrink_free_tail()?;
        Ok(ReclaimReport {
            components_rewritten: rewritten.len(),
            pages_moved,
            pages_reclaimed,
        })
    }

    fn maybe_merge_locked(&self, maint: &mut MaintState) -> Result<()> {
        // Sizes newest-first for the policy.
        let sizes: Vec<u64> = {
            let tree = self.tree.read();
            tree.components
                .iter()
                .rev()
                .map(|c| c.meta().stored_bytes)
                .collect()
        };
        let jobs = self.config.compaction.strategy().decide_jobs(&sizes);
        if jobs.is_empty() {
            return Ok(());
        }
        // Translate each job's newest-first indexes into positions in the
        // oldest-first component list.
        let n = sizes.len();
        let mut position_jobs: Vec<Vec<usize>> = jobs
            .iter()
            .map(|job| {
                let mut positions: Vec<usize> = job.iter().map(|&i| n - 1 - i).collect();
                positions.sort_unstable();
                positions
            })
            .collect();
        position_jobs.sort_by_key(|p| p[0]);
        self.merge_jobs_locked(maint, &position_jobs)
    }

    /// Merge the components at the given (oldest-first) positions.
    fn merge_components_locked(&self, maint: &mut MaintState, positions: &[usize]) -> Result<()> {
        self.merge_jobs_locked(maint, std::slice::from_ref(&positions.to_vec()))
    }

    /// Run a round of merge jobs. Each job names a contiguous, oldest-first
    /// range of positions in the component list; jobs are disjoint and
    /// sorted by first position. Multiple jobs (a leveled strategy's
    /// independent level-to-level cascades) reconcile and write their output
    /// components **concurrently** — they touch disjoint inputs and append
    /// to the page store independently — then a single manifest commit and
    /// tree swap publishes the whole round atomically.
    fn merge_jobs_locked(&self, maint: &mut MaintState, jobs: &[Vec<usize>]) -> Result<()> {
        let jobs: Vec<&[usize]> = jobs
            .iter()
            .map(Vec::as_slice)
            .filter(|j| j.len() >= 2)
            .collect();
        if jobs.is_empty() {
            return Ok(());
        }
        let components = self.tree.read().components.clone();
        let schema = maint.schema_builder.schema().clone();
        // Pre-assign output ids so concurrent jobs never race the counter.
        let first_id = maint.next_component_id;
        maint.next_component_id += jobs.len() as u64;

        struct JobResult {
            output: Arc<Component>,
            inputs: Vec<Arc<Component>>,
            input_ids: Vec<u64>,
            pages_in: u64,
            elapsed: Duration,
        }

        let run_job = |positions: &[usize], id: u64| -> Result<JobResult> {
            debug_assert!(
                positions.windows(2).all(|w| w[1] == w[0] + 1),
                "merge jobs must cover contiguous positions (age order)"
            );
            let job_started = Instant::now();
            let inputs: Vec<Arc<Component>> =
                positions.iter().map(|&p| components[p].clone()).collect();
            let includes_oldest = positions.first() == Some(&0);
            let input_ids: Vec<u64> = inputs.iter().map(|c| c.meta().id).collect();
            let pages_in: u64 = inputs.iter().map(|c| c.meta().pages.len() as u64).sum();
            self.telemetry.emit(EventKind::MergeBegin {
                inputs: input_ids.clone(),
            });
            // Reconcile through the streaming k-way merge cursor: entries
            // arrive in key order with the newest version of each key
            // winning, holding one decoded leaf per input in memory instead
            // of the whole inputs.
            let mut entries: Vec<Entry> = Vec::new();
            for entry in EntryMergeCursor::over_components(&inputs, None) {
                let (key, doc) = entry?;
                // Anti-matter annihilates older records; it can itself be
                // dropped once the merge includes the oldest component.
                if doc.is_some() || !includes_oldest {
                    entries.push((key, doc));
                }
            }
            let output = Arc::new(Component::write(
                &self.cache,
                &self.component_config(),
                schema.clone(),
                &entries,
                id,
            )?);
            Ok(JobResult {
                output,
                inputs,
                input_ids,
                pages_in,
                elapsed: job_started.elapsed(),
            })
        };

        let results: Vec<Result<JobResult>> = if jobs.len() == 1 {
            vec![run_job(jobs[0], first_id)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, job)| {
                        let run_job = &run_job;
                        scope.spawn(move || run_job(job, first_id + i as u64))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("merge job panicked"))
                    .collect()
            })
        };
        let mut done = Vec::with_capacity(results.len());
        for result in results {
            done.push(result?);
        }

        // Build the post-merge component list: per job (back to front so
        // earlier positions stay valid), inputs out, output in at the first
        // merged position.
        let mut new_components = components.clone();
        for (positions, result) in jobs.iter().zip(&done).rev() {
            for &pos in positions.iter().rev() {
                new_components.remove(pos);
            }
            new_components.insert(positions[0], result.output.clone());
        }
        // Durable merge: one manifest swap makes every output visible; the
        // inputs' pages are freed only after the swap commits, so a crash
        // before the commit leaves the old components intact.
        if let Some(durable) = self.durable.as_ref() {
            let data = self.manifest_data(maint, &schema, &new_components);
            durable.commit_merge(data)?;
        }
        {
            let mut tree = self.tree.write();
            let mut next = (**tree).clone();
            next.components = new_components;
            *tree = Arc::new(next);
        }
        // Retire the inputs: their pages are freed when the last snapshot
        // holding them drops (Component::retire), never under a live reader.
        for result in &done {
            for input in &result.inputs {
                input.retire();
            }
        }
        let mut round_time = Duration::ZERO;
        for result in &done {
            let pages_out = result.output.meta().pages.len() as u64;
            round_time = round_time.max(result.elapsed);
            if self.telemetry.enabled() {
                self.telemetry.merges.incr();
                self.telemetry.merge_pages_in.add(result.pages_in);
                self.telemetry.merge_pages_out.add(pages_out);
                self.telemetry
                    .merge_duration
                    .record(result.elapsed.as_micros() as u64);
                self.telemetry.emit(EventKind::MergeEnd {
                    inputs: result.input_ids.clone(),
                    pages_in: result.pages_in,
                    pages_out,
                    micros: result.elapsed.as_micros() as u64,
                });
            }
        }
        {
            let mut stats = self.stats.lock();
            stats.merges += done.len() as u64;
            // Concurrent jobs overlap; charge the round's wall clock once.
            stats.merge_time += round_time;
        }
        Ok(())
    }

    /// Point lookup while already holding the write lock (secondary-index
    /// maintenance on the ingest path).
    fn lookup_locked(
        &self,
        write: &WriteState,
        key: &Value,
        projection: Option<&[Path]>,
    ) -> Result<Option<Value>> {
        if let Some(entry) = write.memtable.get(key) {
            return Ok(entry.cloned());
        }
        Snapshot {
            active: Arc::new(Vec::new()),
            tree: self.tree.read().clone(),
        }
        .lookup(key, projection)
    }

    /// Secondary-index maintenance: fetch the old record (if the key may
    /// exist) to remove its stale entry, then add the new entry.
    fn maintain_secondary_for_upsert(
        &self,
        write: &mut WriteState,
        key: &Value,
        new_record: Option<&Value>,
    ) -> Result<()> {
        let Some(index_path) = self.config.secondary_index_on.clone() else {
            return Ok(());
        };
        let may_exist = if self.config.primary_key_index {
            write.pk_index.contains(key)
        } else {
            true
        };
        if may_exist {
            self.stats.lock().maintenance_lookups += 1;
            if let Some(old) = self.lookup_locked(write, key, None)? {
                let old_values: Vec<Value> =
                    index_path.evaluate(&old).into_iter().cloned().collect();
                if let Some(secondary) = write.secondary.as_mut() {
                    for v in old_values {
                        secondary.remove(&v, key);
                    }
                }
            }
        }
        if let (Some(secondary), Some(record)) = (write.secondary.as_mut(), new_record) {
            for v in index_path.evaluate(record) {
                secondary.insert(v, key);
            }
        }
        Ok(())
    }

    /// Rebuild the in-memory indexes (primary-key filter and the optional
    /// secondary index) from the recovered components and memtable.
    fn rebuild_indexes(&self) -> Result<()> {
        let index_path = self.config.secondary_index_on.clone();
        if !self.config.primary_key_index && index_path.is_none() {
            return Ok(());
        }
        let mut write = self.write.lock();
        // Reconcile newest-first through the streaming merge cursor so each
        // key contributes exactly its live version.
        let memtable_entries: Vec<Entry> = write
            .memtable
            .iter()
            .map(|(k, v)| (k.clone(), v.cloned()))
            .collect();
        let projection: Vec<Path> = index_path.iter().cloned().collect();
        let tree = self.tree.read().clone();
        let cursor = EntryMergeCursor::over_memtable_and_components(
            memtable_entries,
            &tree.components,
            Some(&projection),
        );
        for entry in cursor {
            let (key, doc) = entry?;
            if self.config.primary_key_index {
                // Every key ever written may exist on disk, so the filter
                // includes deleted keys too (it only answers "may exist").
                write.pk_index.insert(&key);
            }
            if let (Some(path), Some(doc)) = (index_path.as_ref(), doc.as_ref()) {
                let values: Vec<Value> = path.evaluate(doc).into_iter().cloned().collect();
                if let Some(secondary) = write.secondary.as_mut() {
                    for value in values {
                        secondary.insert(&value, &key);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    fn tiny_config(layout: LayoutKind) -> DatasetConfig {
        DatasetConfig::new("test", layout)
            .with_memtable_budget(8 * 1024)
            .with_page_size(4 * 1024)
    }

    fn sample_record(i: i64) -> Value {
        doc!({
            "id": i,
            "user": {"name": (format!("user{}", i % 13)), "followers": (i % 997)},
            "text": (format!("record {i} body text with characters")),
            "timestamp": (1_000_000 + i),
            "tags": [(format!("tag{}", i % 5))]
        })
    }

    #[test]
    fn ingest_flush_merge_scan_all_layouts() {
        for layout in LayoutKind::ALL {
            let ds = LsmDataset::new(tiny_config(layout));
            for i in 0..500 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.flush().unwrap();
            assert!(ds.stats().flushes > 1, "{layout:?} should have flushed repeatedly");
            assert!(ds.component_count() >= 1);

            let docs = ds.scan(None).unwrap();
            assert_eq!(docs.len(), 500, "{layout:?}");
            assert_eq!(ds.count().unwrap(), 500, "{layout:?}");
            // Keys come back in order and records are intact.
            assert_eq!(docs[7].get_field("id"), Some(&Value::Int(7)));
            assert!(docs[7].get_path_str("user.name").is_some());
        }
    }

    #[test]
    fn updates_and_deletes_reconcile() {
        for layout in [LayoutKind::Vb, LayoutKind::Amax] {
            let ds = LsmDataset::new(tiny_config(layout));
            for i in 0..200 {
                ds.insert(sample_record(i)).unwrap();
            }
            // Update half of the records and delete a few.
            for i in (0..200).step_by(2) {
                let mut updated = sample_record(i);
                updated.set_field("text", Value::from("updated"));
                ds.insert(updated).unwrap();
            }
            for i in [3i64, 77, 199] {
                ds.delete(Value::Int(i)).unwrap();
            }
            ds.compact_fully().unwrap();
            assert_eq!(ds.component_count(), 1);

            assert_eq!(ds.count().unwrap(), 197, "{layout:?}");
            let doc = ds.lookup(&Value::Int(10), None).unwrap().unwrap();
            assert_eq!(doc.get_field("text"), Some(&Value::from("updated")));
            let doc = ds.lookup(&Value::Int(11), None).unwrap().unwrap();
            assert_ne!(doc.get_field("text"), Some(&Value::from("updated")));
            assert!(ds.lookup(&Value::Int(77), None).unwrap().is_none());
            assert!(ds.lookup(&Value::Int(100_000), None).unwrap().is_none());
        }
    }

    #[test]
    fn projection_scans_only_requested_fields() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..100 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        let projected = ds.scan(Some(&[Path::parse("user.followers")])).unwrap();
        assert_eq!(projected.len(), 100);
        assert!(projected[0].get_path_str("user.followers").is_some());
        assert!(projected[0].get_field("text").is_none());
    }

    #[test]
    fn secondary_index_range_matches_full_scan_filter() {
        let config = tiny_config(LayoutKind::Apax).with_secondary_index(Path::parse("timestamp"));
        let ds = LsmDataset::new(config);
        for i in 0..300 {
            ds.insert(sample_record(i)).unwrap();
        }
        // Update some records so maintenance lookups happen.
        for i in 0..50 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.stats().maintenance_lookups > 0);

        let lo = Value::Int(1_000_100);
        let hi = Value::Int(1_000_149);
        let via_index = ds.secondary_range(&lo, &hi, None).unwrap();
        assert_eq!(via_index.len(), 50);
        let via_scan: Vec<Value> = ds
            .scan(None)
            .unwrap()
            .into_iter()
            .filter(|d| {
                let ts = d.get_field("timestamp").and_then(Value::as_int).unwrap();
                (1_000_100..=1_000_149).contains(&ts)
            })
            .collect();
        assert_eq!(via_index.len(), via_scan.len());
    }

    #[test]
    fn schema_grows_across_flushes_and_is_a_superset() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..50 {
            ds.insert(doc!({"id": i, "a": 1})).unwrap();
        }
        ds.flush().unwrap();
        let cols_before = schema::columns_of(&ds.schema()).len();
        for i in 50..100 {
            ds.insert(doc!({"id": i, "a": "heterogeneous now", "b": {"c": 2.5}})).unwrap();
        }
        ds.flush().unwrap();
        let cols_after = schema::columns_of(&ds.schema()).len();
        assert!(cols_after > cols_before);
        // Old and new records both survive scans despite the schema change.
        assert_eq!(ds.count().unwrap(), 100);
        let docs = ds.scan(None).unwrap();
        assert_eq!(docs.len(), 100);
    }

    #[test]
    fn missing_key_is_an_error() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Vb));
        assert!(ds.insert(doc!({"no_key": 1})).is_err());
        assert!(ds.insert(doc!({"id": null})).is_err());
    }

    #[test]
    fn stored_bytes_accounting() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Apax));
        for i in 0..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert!(ds.primary_stored_bytes() > 0);
        assert!(ds.total_stored_bytes() >= ds.primary_stored_bytes());
        assert!(ds.io_stats().pages_written > 0);
    }

    #[test]
    fn background_mode_reaches_the_same_state() {
        for layout in [LayoutKind::Vb, LayoutKind::Amax] {
            let sync_ds = LsmDataset::new(tiny_config(layout));
            let bg_ds = LsmDataset::new(tiny_config(layout).with_background(true));
            for ds in [&sync_ds, &bg_ds] {
                for i in 0..300 {
                    ds.insert(sample_record(i)).unwrap();
                }
                for i in [5i64, 100] {
                    ds.delete(Value::Int(i)).unwrap();
                }
                ds.flush().unwrap();
            }
            assert_eq!(sync_ds.scan(None).unwrap(), bg_ds.scan(None).unwrap(), "{layout:?}");
            assert!(bg_ds.stats().flushes > 1, "{layout:?}");
        }
    }

    #[test]
    fn shared_pool_serves_many_datasets() {
        // Three datasets, one two-worker pool: every dataset's flushes and
        // merges complete, reach the same state as inline processing, and
        // dropping the datasets before the pool quiesces them cleanly.
        let pool = WorkerPool::new(2);
        let datasets: Vec<LsmDataset> = (0..3)
            .map(|i| {
                LsmDataset::new(
                    DatasetConfig::new(format!("pooled-{i}"), LayoutKind::Amax)
                        .with_memtable_budget(8 * 1024)
                        .with_page_size(4 * 1024)
                        .with_background(true)
                        .with_pool(pool.handle()),
                )
            })
            .collect();
        for ds in &datasets {
            for i in 0..300 {
                ds.insert(sample_record(i)).unwrap();
            }
        }
        let reference = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..300 {
            reference.insert(sample_record(i)).unwrap();
        }
        reference.flush().unwrap();
        for ds in &datasets {
            ds.flush().unwrap();
            assert!(ds.stats().flushes > 1);
            assert_eq!(ds.scan(None).unwrap(), reference.scan(None).unwrap());
            assert_eq!(ds.health().worker, WorkerState::Idle);
        }
        drop(datasets);
        // The pool is still usable by later datasets.
        let late = LsmDataset::new(
            tiny_config(LayoutKind::Vb)
                .with_background(true)
                .with_pool(pool.handle()),
        );
        for i in 0..100 {
            late.insert(sample_record(i)).unwrap();
        }
        late.flush().unwrap();
        assert_eq!(late.count().unwrap(), 100);
    }

    #[test]
    fn dataset_survives_its_shared_pool_shutting_down() {
        // If the shared pool dies first (discouraged but possible), the
        // dataset falls back to inline flushing instead of hanging.
        let pool = WorkerPool::new(1);
        let ds = LsmDataset::new(
            tiny_config(LayoutKind::Amax)
                .with_background(true)
                .with_pool(pool.handle()),
        );
        for i in 0..100 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        drop(pool);
        for i in 100..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        assert_eq!(ds.count().unwrap(), 200);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let ds = LsmDataset::new(tiny_config(LayoutKind::Amax));
        for i in 0..100 {
            ds.insert(sample_record(i)).unwrap();
        }
        let snapshot = ds.snapshot();
        assert_eq!(snapshot.count().unwrap(), 100);
        for i in 100..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.delete(Value::Int(0)).unwrap();
        ds.compact_fully().unwrap();
        // The snapshot still sees exactly the first 100 records, even though
        // the dataset has flushed, merged and retired components since.
        assert_eq!(snapshot.count().unwrap(), 100);
        assert!(snapshot.lookup(&Value::Int(0), None).unwrap().is_some());
        assert!(snapshot.lookup(&Value::Int(150), None).unwrap().is_none());
        assert_eq!(ds.count().unwrap(), 199);
    }

    #[test]
    fn leaf_cached_dataset_serves_warm_scans_without_page_reads() {
        for layout in LayoutKind::ALL {
            let leaf_cache = Arc::new(LeafCache::new(16 << 20));
            let ds = LsmDataset::new(tiny_config(layout).with_leaf_cache(leaf_cache.clone()));
            for i in 0..300 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.compact_fully().unwrap();

            ds.cache().clear();
            ds.cache().store().reset_stats();
            let cold = ds.scan(None).unwrap();
            let cold_io = ds.io_stats();
            assert!(cold_io.pages_read > 0, "{layout:?}");
            assert_eq!(cold_io.leaf_cache_hits, 0, "{layout:?}");
            assert!(cold_io.leaf_cache_misses > 0, "{layout:?}");

            // Clear the page cache too: warm reads must be served by the
            // decoded-leaf cache alone.
            ds.cache().clear();
            ds.cache().store().reset_stats();
            let warm = ds.scan(None).unwrap();
            assert_eq!(cold, warm, "{layout:?}");
            let warm_io = ds.io_stats();
            assert_eq!(warm_io.pages_read, 0, "{layout:?}");
            assert_eq!(
                warm_io.leaf_cache_hits,
                cold_io.leaf_cache_misses,
                "{layout:?}: every leaf that missed cold must hit warm"
            );
            assert_eq!(warm_io.leaf_cache_misses, 0, "{layout:?}");
            assert!(leaf_cache.resident_bytes() <= leaf_cache.capacity_bytes());
        }
    }

    #[test]
    fn merge_retirement_invalidates_decoded_leaves() {
        let leaf_cache = Arc::new(LeafCache::new(16 << 20));
        let ds = LsmDataset::new(
            tiny_config(LayoutKind::Apax).with_leaf_cache(leaf_cache.clone()),
        );
        for i in 0..200 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        // Warm the cache over the current components.
        let _ = ds.scan(None).unwrap();
        assert!(leaf_cache.resident_leaves() > 0);

        // A full compaction retires every input component; their decoded
        // leaves must leave the cache with them.
        ds.compact_fully().unwrap();
        assert_eq!(ds.component_count(), 1);
        assert!(leaf_cache.stats().invalidations > 0);
        // Whatever remains resident belongs to the merged survivor only.
        let snapshot = ds.snapshot();
        let live: Vec<u64> = snapshot.components().iter().map(|c| c.meta().id).collect();
        let cached: usize = live
            .iter()
            .map(|&id| snapshot.components()[0].cache().leaf_cache().unwrap().cached_leaf_count(id))
            .sum();
        assert_eq!(leaf_cache.resident_leaves(), cached);
        // And the merged output still reads correctly through the cache.
        assert_eq!(ds.scan(None).unwrap().len(), 200);
        assert_eq!(ds.scan(None).unwrap().len(), 200);
    }

    #[test]
    fn memory_budget_round_trips_and_reopen_derives_a_leaf_cache() {
        let dir = std::env::temp_dir()
            .join(format!("lsm-leafcache-tests-{}", std::process::id()))
            .join("budget-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let config = tiny_config(LayoutKind::Vb).with_memory_budget(8 << 20);
        {
            let ds = LsmDataset::open(&dir, config).unwrap();
            for i in 0..100 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.flush().unwrap();
        }
        let ds = LsmDataset::reopen(&dir).unwrap();
        assert_eq!(ds.config().memory_budget, 8 << 20);
        let leaf_cache = ds.config().leaf_cache.clone().expect(
            "reopen derives a leaf cache from the persisted budget",
        );
        assert_eq!(leaf_cache.capacity_bytes(), 4 << 20);
        // And it is actually wired through: a re-scan hits.
        let _ = ds.scan(None).unwrap();
        ds.cache().clear();
        ds.cache().store().reset_stats();
        let _ = ds.scan(None).unwrap();
        let io = ds.io_stats();
        assert_eq!(io.pages_read, 0);
        assert!(io.leaf_cache_hits > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
