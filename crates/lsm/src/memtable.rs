//! The in-memory component.
//!
//! Records live in a key-ordered map; deletes are recorded as anti-matter
//! markers (`None`). The memtable tracks its approximate byte footprint so
//! the dataset can trigger a flush when the configured in-memory budget is
//! exceeded — the same trigger the paper's experiments use (a 2 GB budget in
//! their setup; a few megabytes at our scale).

use std::collections::BTreeMap;

use docmodel::cmp::OrderedValue;
use docmodel::Value;

/// The LSM in-memory component: key-ordered records and anti-matter markers.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<OrderedValue, Option<Value>>,
    approx_bytes: usize,
}

impl Memtable {
    /// Create an empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Insert (or replace) a record under `key`. Returns the previous entry
    /// if one existed (`Some(None)` = an anti-matter marker was replaced).
    pub fn insert(&mut self, key: Value, record: Value) -> Option<Option<Value>> {
        let size = key.approx_size() + record.approx_size() + 16;
        let prev = self.entries.insert(OrderedValue(key), Some(record));
        self.approx_bytes += size;
        if let Some(prev) = &prev {
            self.approx_bytes = self
                .approx_bytes
                .saturating_sub(prev.as_ref().map(Value::approx_size).unwrap_or(1) + 16);
        }
        prev
    }

    /// Record a delete (anti-matter) for `key`.
    pub fn delete(&mut self, key: Value) -> Option<Option<Value>> {
        self.approx_bytes += key.approx_size() + 16;
        self.entries.insert(OrderedValue(key), None)
    }

    /// Look up the newest in-memory entry for `key`:
    /// `None` = not present, `Some(None)` = deleted, `Some(Some(_))` = record.
    pub fn get(&self, key: &Value) -> Option<Option<&Value>> {
        self.entries
            .get(&OrderedValue(key.clone()))
            .map(|v| v.as_ref())
    }

    /// Number of entries (records plus anti-matter markers).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the memtable holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, Option<&Value>)> {
        self.entries.iter().map(|(k, v)| (&k.0, v.as_ref()))
    }

    /// Drain the memtable into a sorted entry list for a flush.
    pub fn drain_sorted(&mut self) -> Vec<(Value, Option<Value>)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.entries)
            .into_iter()
            .map(|(k, v)| (k.0, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::doc;

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut m = Memtable::new();
        assert!(m.is_empty());
        m.insert(Value::Int(2), doc!({"id": 2}));
        m.insert(Value::Int(1), doc!({"id": 1}));
        assert_eq!(m.len(), 2);
        assert!(m.approx_bytes() > 0);
        assert_eq!(m.get(&Value::Int(1)).unwrap().unwrap().get_field("id"), Some(&Value::Int(1)));
        m.delete(Value::Int(1));
        assert_eq!(m.get(&Value::Int(1)), Some(None));
        assert_eq!(m.get(&Value::Int(9)), None);
    }

    #[test]
    fn upsert_replaces_and_keeps_single_entry() {
        let mut m = Memtable::new();
        m.insert(Value::Int(1), doc!({"v": 1}));
        let prev = m.insert(Value::Int(1), doc!({"v": 2}));
        assert!(prev.unwrap().is_some());
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.get(&Value::Int(1)).unwrap().unwrap().get_field("v"),
            Some(&Value::Int(2))
        );
    }

    #[test]
    fn drain_returns_sorted_entries_and_resets() {
        let mut m = Memtable::new();
        for i in [5i64, 1, 3, 2, 4] {
            m.insert(Value::Int(i), doc!({"id": i}));
        }
        m.delete(Value::Int(3));
        let entries = m.drain_sorted();
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
        let keys: Vec<i64> = entries.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        assert!(entries[2].1.is_none(), "key 3 is anti-matter");
    }
}
