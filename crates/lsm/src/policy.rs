//! Merge policies: pluggable compaction strategies.
//!
//! The paper's experiments use AsterixDB's *tiering* merge policy (size
//! ratio 1.2) with a fair, first-come-first-served scheduler and a maximum
//! of five mergeable components (§6.3). That policy survives here as
//! [`TieringPolicy`], but compaction is now a pluggable subsystem: the
//! [`CompactionStrategy`] trait decides which on-disk runs merge, and the
//! serialisable [`CompactionSpec`] selects a strategy per dataset (it
//! round-trips through the manifest, so a reopened dataset keeps its
//! strategy).
//!
//! Three strategies ship:
//!
//! * **tiered** ([`TieringPolicy`]) — write-optimised. Runs accumulate and
//!   a prefix of the newest runs merges when their cumulative size exceeds
//!   `size_ratio` × the next older run, or when the run count exceeds
//!   `max_components`.
//! * **leveled** ([`LeveledPolicy`]) — read/space-optimised. Runs smaller
//!   than `target_size` count as L0; once `l0_threshold` of them pile up
//!   they merge into the next older run. Grown runs ("levels") merge into
//!   their older neighbour whenever they exceed `ratio` × its size, which
//!   keeps the run count logarithmic and shadowed versions short-lived.
//!   Independent level-to-level merges are emitted as *disjoint jobs*
//!   ([`CompactionStrategy::decide_jobs`]) so they can run concurrently.
//! * **lazy-leveled** ([`LazyLeveledPolicy`]) — a tiering/leveling hybrid
//!   ("How to Grow an LSM-tree?", `PAPERS.md`): young runs tier up cheaply
//!   and merge into the single oldest run (the "level") only when their
//!   total crosses a fraction of its size, bounding both write amplification
//!   (few rewrites of the big run) and read amplification (few small runs).
//!
//! All strategies see component sizes **newest first** and must return
//! decisions over *contiguous* index ranges — components are age-ordered,
//! and merging non-adjacent runs would let an old version of a key leapfrog
//! a newer one during reconciliation.

use std::sync::Arc;

/// What the policy decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeDecision {
    /// Nothing to do.
    None,
    /// Merge the components at the given indexes (newest-first ordering of
    /// the input slice). Indexes must be contiguous.
    Merge(Vec<usize>),
}

/// A compaction strategy: given the on-disk run sizes (newest first),
/// decide what merges to schedule.
pub trait CompactionStrategy: Send + Sync {
    /// Decide whether to merge. `sizes` lists component sizes in bytes,
    /// newest first. A returned [`MergeDecision::Merge`] holds contiguous
    /// newest-first indexes.
    fn decide(&self, sizes: &[u64]) -> MergeDecision;

    /// Decide a *set* of merge jobs over disjoint contiguous index ranges
    /// (newest-first indexes). Jobs touch disjoint components, so the
    /// dataset may run them concurrently within one merge round. The
    /// default wraps [`CompactionStrategy::decide`] into at most one job.
    fn decide_jobs(&self, sizes: &[u64]) -> Vec<Vec<usize>> {
        match self.decide(sizes) {
            MergeDecision::None => Vec::new(),
            MergeDecision::Merge(indexes) => vec![indexes],
        }
    }
}

/// Tiering merge policy with a size ratio and a component-count trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieringPolicy {
    /// A merge is scheduled when the cumulative size of younger components
    /// exceeds `size_ratio` × the size of the oldest component considered.
    pub size_ratio: f64,
    /// Maximum tolerated number of on-disk components before a merge is
    /// forced.
    pub max_components: usize,
}

impl Default for TieringPolicy {
    fn default() -> Self {
        TieringPolicy {
            size_ratio: 1.2,
            max_components: 5,
        }
    }
}

impl CompactionStrategy for TieringPolicy {
    fn decide(&self, sizes: &[u64]) -> MergeDecision {
        if sizes.len() < 2 {
            return MergeDecision::None;
        }
        // Size-ratio rule: find the longest prefix (newest components) whose
        // cumulative size exceeds ratio × the next (older) component.
        let mut younger_total = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                younger_total += size;
                let older = sizes[i + 1];
                if younger_total as f64 > self.size_ratio * older as f64 {
                    return MergeDecision::Merge((0..=i + 1).collect());
                }
            }
        }
        // Component-count rule.
        if sizes.len() > self.max_components {
            return MergeDecision::Merge((0..sizes.len()).collect());
        }
        MergeDecision::None
    }
}

/// Leveled merge policy: fresh flushes ("L0" runs, smaller than
/// `target_size`) batch-merge into the adjacent older run once
/// `l0_threshold` accumulate; grown runs cascade into their older neighbour
/// whenever they exceed `ratio` × its size. (Knob surface follows the
/// common embedded-LSM convention: `target_size`, `l0_threshold`, `ratio`.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeveledPolicy {
    /// Runs below this size count as L0 (fresh flush output).
    pub target_size: u64,
    /// Number of L0 runs that triggers a merge into the next older run.
    pub l0_threshold: usize,
    /// A grown run merges into its older neighbour when it exceeds
    /// `ratio` × the neighbour's size.
    pub ratio: f64,
}

impl Default for LeveledPolicy {
    fn default() -> Self {
        LeveledPolicy {
            target_size: 4 << 20,
            l0_threshold: 4,
            ratio: 0.5,
        }
    }
}

impl CompactionStrategy for LeveledPolicy {
    fn decide(&self, sizes: &[u64]) -> MergeDecision {
        if sizes.len() < 2 {
            return MergeDecision::None;
        }
        // Count the leading (newest) runs still below target size: L0.
        let l0 = sizes.iter().take_while(|&&s| s < self.target_size).count();
        if l0 >= self.l0_threshold {
            // Merge every L0 run plus the adjacent older run (or all runs
            // when everything is still L0-sized).
            let upto = l0.min(sizes.len() - 1);
            return MergeDecision::Merge((0..=upto).collect());
        }
        // Cascade rule: a grown run that exceeds ratio × its older
        // neighbour merges into it (newest such pair first).
        for i in 0..sizes.len() - 1 {
            if sizes[i] >= self.target_size && sizes[i] as f64 > self.ratio * sizes[i + 1] as f64 {
                return MergeDecision::Merge(vec![i, i + 1]);
            }
        }
        MergeDecision::None
    }

    fn decide_jobs(&self, sizes: &[u64]) -> Vec<Vec<usize>> {
        if sizes.len() < 2 {
            return Vec::new();
        }
        let l0 = sizes.iter().take_while(|&&s| s < self.target_size).count();
        if l0 >= self.l0_threshold {
            let upto = l0.min(sizes.len() - 1);
            return vec![(0..=upto).collect()];
        }
        // Emit every non-overlapping cascade pair as its own job: the pairs
        // touch disjoint components, so the dataset can merge them
        // concurrently.
        let mut jobs = Vec::new();
        let mut i = 0;
        while i + 1 < sizes.len() {
            if sizes[i] >= self.target_size && sizes[i] as f64 > self.ratio * sizes[i + 1] as f64 {
                jobs.push(vec![i, i + 1]);
                i += 2;
            } else {
                i += 1;
            }
        }
        jobs
    }
}

/// Lazy-leveled merge policy: the oldest run is *the level*; every younger
/// run is a tier. Tiers merge among themselves once `l0_threshold`
/// accumulate, and fold into the level only when their combined size
/// crosses `ratio` × the level (and at least `target_size`), so the big run
/// is rewritten rarely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LazyLeveledPolicy {
    /// Minimum combined tier size before folding into the level.
    pub target_size: u64,
    /// Number of tier runs that triggers a tier-only merge.
    pub l0_threshold: usize,
    /// Tiers fold into the level when their total exceeds `ratio` × the
    /// level's size.
    pub ratio: f64,
}

impl Default for LazyLeveledPolicy {
    fn default() -> Self {
        LazyLeveledPolicy {
            target_size: 4 << 20,
            l0_threshold: 4,
            ratio: 0.5,
        }
    }
}

impl CompactionStrategy for LazyLeveledPolicy {
    fn decide(&self, sizes: &[u64]) -> MergeDecision {
        let n = sizes.len();
        if n < 2 {
            return MergeDecision::None;
        }
        let level = sizes[n - 1];
        let tier_total: u64 = sizes[..n - 1].iter().sum();
        // Fold the tiers into the level once they are a meaningful fraction
        // of it (and big enough that the rewrite is worth it).
        if tier_total as f64 > self.ratio * level as f64 && tier_total >= self.target_size {
            return MergeDecision::Merge((0..n).collect());
        }
        // Otherwise tier-merge the young runs among themselves, leaving the
        // level untouched (the "lazy" part).
        if n > self.l0_threshold && n > 2 {
            return MergeDecision::Merge((0..n - 1).collect());
        }
        MergeDecision::None
    }
}

/// Serialisable selection of a compaction strategy plus its knobs. This is
/// what [`crate::DatasetConfig`] carries and what the manifest persists, so
/// a reopened dataset keeps compacting the way it was created.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompactionSpec {
    /// Write-optimised tiering (the paper's policy; the default).
    Tiered {
        /// See [`TieringPolicy::size_ratio`].
        size_ratio: f64,
        /// See [`TieringPolicy::max_components`].
        max_components: usize,
    },
    /// Read/space-optimised leveling.
    Leveled {
        /// See [`LeveledPolicy::target_size`].
        target_size: u64,
        /// See [`LeveledPolicy::l0_threshold`].
        l0_threshold: usize,
        /// See [`LeveledPolicy::ratio`].
        ratio: f64,
    },
    /// Tiering/leveling hybrid.
    LazyLeveled {
        /// See [`LazyLeveledPolicy::target_size`].
        target_size: u64,
        /// See [`LazyLeveledPolicy::l0_threshold`].
        l0_threshold: usize,
        /// See [`LazyLeveledPolicy::ratio`].
        ratio: f64,
    },
}

impl Default for CompactionSpec {
    fn default() -> Self {
        let p = TieringPolicy::default();
        CompactionSpec::Tiered {
            size_ratio: p.size_ratio,
            max_components: p.max_components,
        }
    }
}

impl CompactionSpec {
    /// The tiered spec with explicit knobs.
    pub fn tiered(size_ratio: f64, max_components: usize) -> CompactionSpec {
        CompactionSpec::Tiered {
            size_ratio,
            max_components,
        }
    }

    /// The leveled spec with default knobs.
    pub fn leveled() -> CompactionSpec {
        let p = LeveledPolicy::default();
        CompactionSpec::Leveled {
            target_size: p.target_size,
            l0_threshold: p.l0_threshold,
            ratio: p.ratio,
        }
    }

    /// The lazy-leveled spec with default knobs.
    pub fn lazy_leveled() -> CompactionSpec {
        let p = LazyLeveledPolicy::default();
        CompactionSpec::LazyLeveled {
            target_size: p.target_size,
            l0_threshold: p.l0_threshold,
            ratio: p.ratio,
        }
    }

    /// Parse a strategy by name with default knobs (bench/CLI surface).
    pub fn from_name(name: &str) -> Option<CompactionSpec> {
        match name {
            "tiered" => Some(CompactionSpec::default()),
            "leveled" => Some(CompactionSpec::leveled()),
            "lazy-leveled" => Some(CompactionSpec::lazy_leveled()),
            _ => None,
        }
    }

    /// Stable strategy name (metrics labels, bench output, manifests).
    pub fn name(&self) -> &'static str {
        match self {
            CompactionSpec::Tiered { .. } => "tiered",
            CompactionSpec::Leveled { .. } => "leveled",
            CompactionSpec::LazyLeveled { .. } => "lazy-leveled",
        }
    }

    /// Instantiate the strategy this spec describes.
    pub fn strategy(&self) -> Arc<dyn CompactionStrategy> {
        match *self {
            CompactionSpec::Tiered {
                size_ratio,
                max_components,
            } => Arc::new(TieringPolicy {
                size_ratio,
                max_components,
            }),
            CompactionSpec::Leveled {
                target_size,
                l0_threshold,
                ratio,
            } => Arc::new(LeveledPolicy {
                target_size,
                l0_threshold,
                ratio,
            }),
            CompactionSpec::LazyLeveled {
                target_size,
                l0_threshold,
                ratio,
            } => Arc::new(LazyLeveledPolicy {
                target_size,
                l0_threshold,
                ratio,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_merge_for_single_component() {
        let p = TieringPolicy::default();
        assert_eq!(p.decide(&[]), MergeDecision::None);
        assert_eq!(p.decide(&[100]), MergeDecision::None);
    }

    #[test]
    fn size_ratio_triggers_merge_of_prefix() {
        let p = TieringPolicy {
            size_ratio: 1.2,
            max_components: 10,
        };
        // Newest 100 vs older 50: 100 > 1.2 * 50 -> merge the two.
        assert_eq!(p.decide(&[100, 50]), MergeDecision::Merge(vec![0, 1]));
        // Balanced tier: 10 vs 100 then 110 vs 1000 — no merge.
        assert_eq!(p.decide(&[10, 100, 1000]), MergeDecision::None);
        // Cumulative young size eventually exceeds an older component.
        assert_eq!(
            p.decide(&[60, 60, 90, 1000]),
            MergeDecision::Merge(vec![0, 1, 2])
        );
    }

    #[test]
    fn component_count_forces_merge() {
        let p = TieringPolicy {
            size_ratio: 100.0,
            max_components: 3,
        };
        assert_eq!(p.decide(&[1, 10, 100]), MergeDecision::None);
        assert_eq!(
            p.decide(&[1, 10, 100, 1000]),
            MergeDecision::Merge(vec![0, 1, 2, 3])
        );
    }

    #[test]
    fn leveled_l0_threshold_merges_fresh_runs_into_next_level() {
        let p = LeveledPolicy {
            target_size: 100,
            l0_threshold: 3,
            ratio: 0.5,
        };
        // Two small runs: below threshold, and the big run is in balance.
        assert_eq!(p.decide(&[10, 10, 1000]), MergeDecision::None);
        // Three small runs merge together with the adjacent older run.
        assert_eq!(
            p.decide(&[10, 10, 10, 1000]),
            MergeDecision::Merge(vec![0, 1, 2, 3])
        );
        // All runs still L0-sized: merge everything.
        assert_eq!(p.decide(&[10, 10, 10]), MergeDecision::Merge(vec![0, 1, 2]));
    }

    #[test]
    fn leveled_cascade_merges_oversized_level_into_neighbour() {
        let p = LeveledPolicy {
            target_size: 100,
            l0_threshold: 4,
            ratio: 0.5,
        };
        // 600 > 0.5 × 1000: the grown run folds into its older neighbour.
        assert_eq!(p.decide(&[600, 1000]), MergeDecision::Merge(vec![0, 1]));
        // 400 ≤ 0.5 × 1000: in balance.
        assert_eq!(p.decide(&[400, 1000]), MergeDecision::None);
        // The pair must be adjacent (contiguous) even with runs before it.
        assert_eq!(
            p.decide(&[10, 600, 1000]),
            MergeDecision::Merge(vec![1, 2])
        );
    }

    #[test]
    fn leveled_decide_jobs_emits_disjoint_cascades() {
        let p = LeveledPolicy {
            target_size: 100,
            l0_threshold: 4,
            ratio: 0.5,
        };
        // Two independent oversized pairs: [0,1] and [2,3].
        assert_eq!(
            p.decide_jobs(&[600, 1000, 6000, 10_000]),
            vec![vec![0, 1], vec![2, 3]]
        );
        // Overlap is not allowed: after taking [0,1], index 1 is consumed.
        assert_eq!(
            p.decide_jobs(&[900, 1000, 10_000]),
            vec![vec![0, 1]]
        );
    }

    #[test]
    fn lazy_leveled_tiers_young_runs_then_folds_into_level() {
        let p = LazyLeveledPolicy {
            target_size: 50,
            l0_threshold: 3,
            ratio: 0.5,
        };
        // Two tiers over a big level: below both triggers.
        assert_eq!(p.decide(&[10, 10, 1000]), MergeDecision::None);
        // Three tiers: tier-only merge, the level is untouched.
        assert_eq!(
            p.decide(&[10, 10, 10, 1000]),
            MergeDecision::Merge(vec![0, 1, 2])
        );
        // Tier total crosses ratio × level (and target_size): fold it all.
        assert_eq!(
            p.decide(&[300, 300, 1000]),
            MergeDecision::Merge(vec![0, 1, 2])
        );
    }

    #[test]
    fn spec_roundtrips_names_and_builds_strategies() {
        for spec in [
            CompactionSpec::default(),
            CompactionSpec::leveled(),
            CompactionSpec::lazy_leveled(),
        ] {
            assert_eq!(CompactionSpec::from_name(spec.name()), Some(spec));
            // The built strategy is callable.
            let _ = spec.strategy().decide(&[100, 50]);
        }
        assert_eq!(CompactionSpec::from_name("nope"), None);
    }
}
