//! Merge policies.
//!
//! The experiments use AsterixDB's *tiering* merge policy (size ratio 1.2)
//! with a fair, first-come-first-served scheduler and a maximum of five
//! mergeable components (§6.3). The policy looks at the on-disk components
//! from newest to oldest and schedules a merge of a prefix of them when the
//! total size of the younger components exceeds `size_ratio` times the size
//! of the oldest component in that prefix, or when the number of components
//! exceeds the configured maximum.

/// What the policy decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeDecision {
    /// Nothing to do.
    None,
    /// Merge the components at the given indexes (newest-first ordering of
    /// the input slice).
    Merge(Vec<usize>),
}

/// Tiering merge policy with a size ratio and a component-count trigger.
#[derive(Debug, Clone, Copy)]
pub struct TieringPolicy {
    /// A merge is scheduled when the cumulative size of younger components
    /// exceeds `size_ratio` × the size of the oldest component considered.
    pub size_ratio: f64,
    /// Maximum tolerated number of on-disk components before a merge is
    /// forced.
    pub max_components: usize,
}

impl Default for TieringPolicy {
    fn default() -> Self {
        TieringPolicy {
            size_ratio: 1.2,
            max_components: 5,
        }
    }
}

impl TieringPolicy {
    /// Decide whether to merge. `sizes` lists component sizes in bytes,
    /// newest first.
    pub fn decide(&self, sizes: &[u64]) -> MergeDecision {
        if sizes.len() < 2 {
            return MergeDecision::None;
        }
        // Size-ratio rule: find the longest prefix (newest components) whose
        // cumulative size exceeds ratio × the next (older) component.
        let mut younger_total = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                younger_total += size;
                let older = sizes[i + 1];
                if younger_total as f64 > self.size_ratio * older as f64 {
                    return MergeDecision::Merge((0..=i + 1).collect());
                }
            }
        }
        // Component-count rule.
        if sizes.len() > self.max_components {
            return MergeDecision::Merge((0..sizes.len()).collect());
        }
        MergeDecision::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_merge_for_single_component() {
        let p = TieringPolicy::default();
        assert_eq!(p.decide(&[]), MergeDecision::None);
        assert_eq!(p.decide(&[100]), MergeDecision::None);
    }

    #[test]
    fn size_ratio_triggers_merge_of_prefix() {
        let p = TieringPolicy {
            size_ratio: 1.2,
            max_components: 10,
        };
        // Newest 100 vs older 50: 100 > 1.2 * 50 -> merge the two.
        assert_eq!(p.decide(&[100, 50]), MergeDecision::Merge(vec![0, 1]));
        // Balanced tier: 10 vs 100 then 110 vs 1000 — no merge.
        assert_eq!(p.decide(&[10, 100, 1000]), MergeDecision::None);
        // Cumulative young size eventually exceeds an older component.
        assert_eq!(
            p.decide(&[60, 60, 90, 1000]),
            MergeDecision::Merge(vec![0, 1, 2])
        );
    }

    #[test]
    fn component_count_forces_merge() {
        let p = TieringPolicy {
            size_ratio: 100.0,
            max_components: 3,
        };
        assert_eq!(p.decide(&[1, 10, 100]), MergeDecision::None);
        assert_eq!(
            p.decide(&[1, 10, 100, 1000]),
            MergeDecision::Merge(vec![0, 1, 2, 3])
        );
    }
}
