//! # lsm — the LSM-tree storage engine substrate
//!
//! Document stores adopt Log-Structured Merge trees for their write path:
//! inserts go to an in-memory component; when it fills up it is *flushed* to
//! an immutable on-disk component; background *merges* compact components.
//! The paper piggy-backs on exactly these lifecycle events: the flush is
//! where the tuple compactor infers the schema and where records are turned
//! into columns (§2.2, §4.5), and the merge is where columns from several
//! components are stitched back together (§4.5.3).
//!
//! This crate provides that engine:
//!
//! * [`memtable`] — the in-memory component (rows, in the VB format's logical
//!   form), with delete support via anti-matter markers;
//! * [`policy`] — pluggable compaction: the [`CompactionStrategy`] trait
//!   with tiered (the paper's policy, ratio 1.2, max 5 components, §6.3),
//!   leveled, and lazy-leveled implementations, selected per dataset by a
//!   manifest-persisted [`CompactionSpec`];
//! * [`index`] — the primary-key index used to cheapen point lookups during
//!   update-intensive ingestion, and the secondary (e.g. timestamp) index
//!   whose maintenance cost §6.3.2 measures;
//! * [`dataset`] — [`LsmDataset`]: one dataset partition tying everything
//!   together: insert/upsert/delete, flush with schema inference, merges,
//!   reconciled scans with projection push-down, point lookups, and
//!   secondary-index range queries answered by sorted batched lookups (§4.6);
//! * [`snapshot`] — [`Snapshot`]: consistent point-in-time read views, and
//!   the streaming read path: [`Snapshot::cursor`] builds a k-way
//!   merge-reconcile cursor ([`ScanCursor`]) over memtables and component
//!   cursors — records in key order, newest version wins, anti-matter
//!   annihilates, at most one decoded leaf per component in memory — and
//!   [`EntryMergeCursor`] is the same machinery with anti-matter preserved,
//!   driving merges and index rebuilds (see the module's cursor protocol);
//! * [`pool`] — the shared background [`WorkerPool`]: one priority-ordered
//!   flush/merge worker pool serving every dataset partition that opts into
//!   background maintenance;
//! * `scheduler` (crate-private) — per-dataset flush/merge accounting,
//!   draining and backpressure.
//!
//! ## Concurrency: snapshots, sealing, and background workers
//!
//! The paper's LSM lifecycle assumes flushes and merges run as background
//! jobs while ingestion and queries proceed (§2.1, §6.3). The dataset is
//! built around that assumption:
//!
//! * **Atomically-swapped tree.** The on-disk components and the sealed
//!   (flush-pending) memtables live in an immutable
//!   [`snapshot::TreeState`] behind an `RwLock<Arc<_>>`. Mutators build a
//!   new `TreeState` and swap the `Arc`; readers clone the `Arc` and never
//!   wait on a flush or merge.
//! * **Snapshots.** [`LsmDataset::snapshot`] freezes the active memtable
//!   (a brief write-lock hold) and pairs it with the current tree. Every
//!   read — point lookup, scan, COUNT(*), the whole query engine — runs
//!   against such a snapshot and reconciles newest-first: active memtable,
//!   sealed memtables, then components. Merges *retire* their inputs rather
//!   than freeing them, so a snapshot taken before a merge keeps reading the
//!   old components until it drops (`Component::retire` in `storage`).
//! * **Sealing.** When the active memtable exceeds its budget it is sealed:
//!   drained into an immutable run, pushed into the tree, and (for durable
//!   datasets) the WAL is rotated so the sealed records are confined to
//!   closed segments. Ingestion continues into a fresh memtable immediately.
//! * **Background workers.** With [`DatasetConfig::background`], flushes
//!   and merges run as tasks on a [`WorkerPool`] — either a **shared** pool
//!   handed in via [`DatasetConfig::with_pool`] (one pool for all shards of
//!   a store, the paper's bounded-maintenance setup) or, by default, a
//!   private single-worker pool (the original one-thread-per-dataset
//!   behaviour). The pool runs queued flushes before queued merges — a
//!   flush releases ingest backpressure — and FIFO within a priority, the
//!   fair FCFS scheduling of the paper's setup (§6.3). Within one dataset,
//!   a leveled strategy's disjoint merge jobs run concurrently on scoped
//!   threads and publish as one atomic manifest commit. Backpressure bounds
//!   the sealed queue ([`DatasetConfig::max_sealed_memtables`]); `flush()`
//!   drains the dataset's queued rounds; worker errors are parked and
//!   surfaced on the next insert or flush. Without `background`, sealing is
//!   followed by an inline flush on the inserting thread — the original
//!   synchronous behaviour.
//!
//! ## Durability
//!
//! A dataset created with [`LsmDataset::new`] lives entirely in memory — the
//! original simulation mode, still the default for experiments. A dataset
//! opened with [`dataset::LsmDataset::open`] (or reopened with
//! [`dataset::LsmDataset::reopen`]) is backed by a directory managed by the
//! `persist` crate and survives restarts:
//!
//! * inserts and deletes are appended to a CRC-framed, *segmented*
//!   **write-ahead log** before they are applied to the memtable, so every
//!   acknowledged mutation is recoverable; sealing rotates the log so
//!   background flushes can release exactly the covered segments;
//! * a **flush** writes the component into the dataset's page file, commits
//!   a new **manifest** version (component lineage plus the inferred-schema
//!   snapshot the tuple compactor produced, §2.2), and only then removes the
//!   WAL segments covering the flushed records — all while concurrent
//!   writers keep appending to the active segment;
//! * a **merge** commits the manifest swap *before* retiring the input
//!   components' pages, so no crash window can lose data (§4.5.3's merge
//!   piggy-backing, extended with recovery semantics);
//! * **recovery** (`open`/`reopen`) reloads components from the manifest,
//!   replays the WAL into the memtable, and rebuilds the in-memory indexes.
//!
//! The full protocol, its crash windows and the injected
//! [`persist::CrashPoint`]s used by the recovery tests are documented in the
//! `persist` crate. The crash points also fire from background workers, so
//! the recovery tests can kill a dataset under concurrent load.

pub mod dataset;
pub mod index;
pub mod memtable;
pub mod policy;
pub mod pool;
pub(crate) mod scheduler;
pub mod snapshot;

pub use dataset::{
    DatasetConfig, DatasetHealth, IngestStats, LsmDataset, ReclaimReport, WorkerState,
};
pub use pool::{PoolHandle, WorkerPool};
pub use index::{PrimaryKeyIndex, SecondaryIndex};
pub use memtable::Memtable;
pub use persist::CrashPoint;
pub use policy::{
    CompactionSpec, CompactionStrategy, LazyLeveledPolicy, LeveledPolicy, MergeDecision,
    TieringPolicy,
};
pub use snapshot::{EntryMergeCursor, ScanCursor, Snapshot};

/// Error type shared by the LSM layer.
pub type LsmError = encoding::DecodeError;
/// Result alias.
pub type Result<T> = std::result::Result<T, LsmError>;
