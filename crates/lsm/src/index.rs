//! Primary-key and secondary indexes.
//!
//! * The **primary-key index** stores only keys. During update-intensive
//!   ingestion it answers "does this key already exist?" so that the
//!   expensive point lookup against the (columnar) primary index is skipped
//!   for brand-new keys (§4.6).
//! * The **secondary index** maps a field's value (e.g. the tweet timestamp)
//!   to the primary keys of the records holding it. Maintaining it on an
//!   upsert requires fetching the *old* record to remove its stale entry —
//!   that fetch is what makes update-intensive ingestion slower for columnar
//!   layouts (Figure 13a, `tweet_2*`).
//!
//! Both indexes are modelled as in-memory ordered maps standing in for the
//! secondary LSM B+-trees of the real system; their sizes are reported by the
//! experiments alongside the primary index (Figure 12a includes them for
//! `tweet_2*`). This substitution is documented in DESIGN.md — index
//! *maintenance* (the point lookups) is faithfully exercised, index storage
//! is approximated.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use docmodel::cmp::OrderedValue;
use docmodel::Value;

/// An index over primary keys only.
#[derive(Debug, Default)]
pub struct PrimaryKeyIndex {
    keys: BTreeSet<OrderedValue>,
}

impl PrimaryKeyIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `key` exists.
    pub fn insert(&mut self, key: &Value) {
        self.keys.insert(OrderedValue(key.clone()));
    }

    /// `true` if `key` has ever been inserted (and not removed).
    pub fn contains(&self, key: &Value) -> bool {
        self.keys.contains(&OrderedValue(key.clone()))
    }

    /// Remove a key (after a delete is fully merged away).
    pub fn remove(&mut self, key: &Value) {
        self.keys.remove(&OrderedValue(key.clone()));
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate size in bytes (for the storage-size experiments).
    pub fn approx_bytes(&self) -> u64 {
        self.keys.iter().map(|k| k.0.approx_size() as u64 + 8).sum()
    }
}

/// A secondary index: indexed value → set of primary keys.
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    entries: BTreeMap<OrderedValue, BTreeSet<OrderedValue>>,
    entry_count: usize,
}

impl SecondaryIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entry mapping `value` to `key`.
    pub fn insert(&mut self, value: &Value, key: &Value) {
        let added = self
            .entries
            .entry(OrderedValue(value.clone()))
            .or_default()
            .insert(OrderedValue(key.clone()));
        if added {
            self.entry_count += 1;
        }
    }

    /// Remove the entry mapping `value` to `key` (anti-matter for the old
    /// value of an updated record).
    pub fn remove(&mut self, value: &Value, key: &Value) {
        if let Some(keys) = self.entries.get_mut(&OrderedValue(value.clone())) {
            if keys.remove(&OrderedValue(key.clone())) {
                self.entry_count -= 1;
            }
            if keys.is_empty() {
                self.entries.remove(&OrderedValue(value.clone()));
            }
        }
    }

    /// All primary keys with *some* indexed value in `[lo, hi]`, each key
    /// once, in primary-key order, ready for batched point lookups (§4.6).
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<Value> {
        self.range_bounds(Bound::Included(lo), Bound::Included(hi))
    }

    /// Like [`SecondaryIndex::range`], but with arbitrary (possibly open or
    /// exclusive) endpoints — what the query planner's index-probe path
    /// derives from a filter expression (`score > 50`, `score < 10`, ...).
    /// An empty range (lower bound above the upper bound) yields no keys.
    ///
    /// Keys are **deduplicated**: a multi-valued indexed path (`ts[*]`) maps
    /// several values to the same primary key, and a record with two values
    /// inside the probe range must still be returned (and counted) once.
    pub fn range_bounds(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<Value> {
        // BTreeMap::range panics on inverted ranges; an empty probe is the
        // correct answer for a filter that can never match.
        if let (
            Bound::Included(l) | Bound::Excluded(l),
            Bound::Included(h) | Bound::Excluded(h),
        ) = (&lo, &hi)
        {
            match docmodel::total_cmp(l, h) {
                std::cmp::Ordering::Greater => return Vec::new(),
                std::cmp::Ordering::Equal
                    if matches!(lo, Bound::Excluded(_)) || matches!(hi, Bound::Excluded(_)) =>
                {
                    return Vec::new()
                }
                _ => {}
            }
        }
        let as_key = |b: Bound<&Value>| match b {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(v) => Bound::Included(OrderedValue(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(OrderedValue(v.clone())),
        };
        let mut out: BTreeSet<&OrderedValue> = BTreeSet::new();
        for (_, keys) in self.entries.range((as_key(lo), as_key(hi))) {
            out.extend(keys.iter());
        }
        out.into_iter().map(|k| k.0.clone()).collect()
    }

    /// Number of (value, key) entries.
    pub fn len(&self) -> usize {
        self.entry_count
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Approximate size in bytes (for the storage-size experiments).
    pub fn approx_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(v, keys)| {
                v.0.approx_size() as u64 + keys.iter().map(|k| k.0.approx_size() as u64 + 8).sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_key_index_membership() {
        let mut idx = PrimaryKeyIndex::new();
        assert!(idx.is_empty());
        idx.insert(&Value::Int(5));
        idx.insert(&Value::Int(7));
        assert!(idx.contains(&Value::Int(5)));
        assert!(!idx.contains(&Value::Int(6)));
        assert_eq!(idx.len(), 2);
        assert!(idx.approx_bytes() > 0);
        idx.remove(&Value::Int(5));
        assert!(!idx.contains(&Value::Int(5)));
    }

    #[test]
    fn secondary_index_range_and_maintenance() {
        let mut idx = SecondaryIndex::new();
        for i in 0..100i64 {
            idx.insert(&Value::Int(1_000 + i), &Value::Int(i));
        }
        assert_eq!(idx.len(), 100);
        let keys = idx.range(&Value::Int(1_010), &Value::Int(1_019));
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], Value::Int(10));

        // Update record 10's timestamp: remove the old entry, add the new one.
        idx.remove(&Value::Int(1_010), &Value::Int(10));
        idx.insert(&Value::Int(2_000), &Value::Int(10));
        let keys = idx.range(&Value::Int(1_010), &Value::Int(1_019));
        assert_eq!(keys.len(), 9);
        assert_eq!(idx.len(), 100);
        assert!(idx.approx_bytes() > 0);
    }

    #[test]
    fn range_bounds_support_open_and_exclusive_endpoints() {
        let mut idx = SecondaryIndex::new();
        for i in 0..10i64 {
            idx.insert(&Value::Int(i), &Value::Int(100 + i));
        }
        let keys = idx.range_bounds(Bound::Excluded(&Value::Int(3)), Bound::Unbounded);
        assert_eq!(keys.len(), 6);
        assert_eq!(keys[0], Value::Int(104));
        let keys = idx.range_bounds(Bound::Unbounded, Bound::Excluded(&Value::Int(3)));
        assert_eq!(keys.len(), 3);
        let keys = idx.range_bounds(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(keys.len(), 10);
        // Inverted and degenerate ranges yield nothing instead of panicking.
        assert!(idx
            .range_bounds(Bound::Included(&Value::Int(8)), Bound::Included(&Value::Int(2)))
            .is_empty());
        assert!(idx
            .range_bounds(Bound::Excluded(&Value::Int(5)), Bound::Included(&Value::Int(5)))
            .is_empty());
        assert_eq!(
            idx.range_bounds(Bound::Included(&Value::Int(5)), Bound::Included(&Value::Int(5)))
                .len(),
            1
        );
    }

    #[test]
    fn duplicate_secondary_entries_are_idempotent() {
        let mut idx = SecondaryIndex::new();
        idx.insert(&Value::Int(1), &Value::Int(1));
        idx.insert(&Value::Int(1), &Value::Int(1));
        assert_eq!(idx.len(), 1);
        idx.remove(&Value::Int(1), &Value::Int(1));
        assert!(idx.is_empty());
        // Removing a non-existent entry is harmless.
        idx.remove(&Value::Int(9), &Value::Int(9));
    }
}
