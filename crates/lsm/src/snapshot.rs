//! Consistent point-in-time read views.
//!
//! The dataset publishes its LSM tree as an immutable [`TreeState`] behind
//! an atomically-swapped `Arc`: sealed (flush-pending) memtables plus the
//! stack of on-disk components. A [`Snapshot`] pairs one such tree with a
//! frozen copy of the active memtable, giving readers — point lookups,
//! scans, and the whole query engine — a view that is internally consistent
//! no matter how many writers, flushes and merges run concurrently:
//!
//! * flushes move records from a sealed memtable into a component, but a
//!   snapshot taken earlier still holds the sealed memtable's `Arc`;
//! * merges retire their input components *after* the manifest commit, and
//!   the pages are freed only when the last snapshot releases its handles
//!   (`Component::retire` in the storage crate);
//! * the reconciliation order inside a snapshot is always newest-first:
//!   active memtable, then sealed memtables (newest first), then components
//!   (newest first) — the most recent version of each key wins and
//!   anti-matter hides older versions.

use std::collections::BTreeMap;
use std::sync::Arc;

use docmodel::cmp::OrderedValue;
use docmodel::{total_cmp, Path, Value};
use storage::component::{Component, ComponentReader};

use crate::Result;

/// A memtable sealed for flushing: an immutable, key-sorted run of entries
/// plus the id of the newest WAL segment containing its records.
pub struct SealedMemtable {
    /// Entries in key order (`None` = anti-matter).
    pub(crate) entries: Vec<(Value, Option<Value>)>,
    /// Newest WAL segment covering these entries (durable datasets only).
    pub(crate) wal_segment: Option<u64>,
    /// Approximate heap footprint, for accounting.
    pub(crate) bytes: usize,
}

impl SealedMemtable {
    fn find(&self, key: &Value) -> Option<&Option<Value>> {
        self.entries
            .binary_search_by(|(k, _)| total_cmp(k, key))
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// The immutable, atomically-swapped part of a dataset: everything except
/// the active memtable. Cloning is shallow (`Arc` bumps).
#[derive(Default, Clone)]
pub struct TreeState {
    /// Sealed memtables awaiting flush, oldest first.
    pub(crate) sealed: Vec<Arc<SealedMemtable>>,
    /// On-disk components, oldest first.
    pub(crate) components: Vec<Arc<Component>>,
}

/// A consistent point-in-time view of one dataset.
pub struct Snapshot {
    /// Frozen copy of the active memtable, in key order.
    pub(crate) active: Vec<(Value, Option<Value>)>,
    /// The published tree at snapshot time.
    pub(crate) tree: Arc<TreeState>,
}

impl Snapshot {
    /// Point lookup: newest version of `key`. `None` when the key does not
    /// exist or was deleted at snapshot time.
    pub fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Value>> {
        if let Ok(i) = self.active.binary_search_by(|(k, _)| total_cmp(k, key)) {
            return Ok(self.active[i].1.clone());
        }
        for sealed in self.tree.sealed.iter().rev() {
            if let Some(entry) = sealed.find(key) {
                return Ok(entry.clone());
            }
        }
        for component in self.tree.components.iter().rev() {
            if let Some(entry) = component.lookup(key, projection)? {
                return Ok(entry);
            }
        }
        Ok(None)
    }

    /// Scan the snapshot, reconciling duplicates and dropping anti-matter.
    /// Only the projected paths are assembled from columnar components.
    pub fn scan(&self, projection: Option<&[Path]>) -> Result<Vec<Value>> {
        self.scan_pruned(projection, &[])
    }

    /// Like [`Snapshot::scan`], but skipping the components whose position
    /// (oldest-first, matching [`Snapshot::components`]) is flagged in
    /// `skip`. Missing trailing flags mean "do not skip".
    ///
    /// This is the zone-map pruning entry point: the query planner flags a
    /// component when its column statistics prove **no record in it can
    /// match the filter**. Skipping is nevertheless only sound when it
    /// cannot resurrect an older, shadowed version of one of the skipped
    /// component's keys (or drop one of its anti-matter entries): the caller
    /// must flag a component only if, additionally, its key range is
    /// disjoint from every *older* component's key range — see
    /// `query::physical::prune_flags`, the single implementation of that
    /// rule. Memtables are newer than every component and are always
    /// scanned, so they never constrain pruning.
    pub fn scan_pruned(
        &self,
        projection: Option<&[Path]>,
        skip: &[bool],
    ) -> Result<Vec<Value>> {
        let mut merged: BTreeMap<OrderedValue, Option<Value>> = BTreeMap::new();
        for (key, doc) in &self.active {
            merged
                .entry(OrderedValue(key.clone()))
                .or_insert_with(|| doc.clone());
        }
        for sealed in self.tree.sealed.iter().rev() {
            for (key, doc) in &sealed.entries {
                merged
                    .entry(OrderedValue(key.clone()))
                    .or_insert_with(|| doc.clone());
            }
        }
        for (i, component) in self.tree.components.iter().enumerate().rev() {
            if skip.get(i).copied().unwrap_or(false) {
                continue;
            }
            for entry in component.scan(projection)? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc);
            }
        }
        Ok(merged.into_values().flatten().collect())
    }

    /// Number of live records (COUNT(*)): only primary keys are read, which
    /// for AMAX means Page 0 alone.
    pub fn count(&self) -> Result<usize> {
        let mut merged: BTreeMap<OrderedValue, bool> = BTreeMap::new();
        for (key, doc) in &self.active {
            merged
                .entry(OrderedValue(key.clone()))
                .or_insert(doc.is_some());
        }
        for sealed in self.tree.sealed.iter().rev() {
            for (key, doc) in &sealed.entries {
                merged
                    .entry(OrderedValue(key.clone()))
                    .or_insert(doc.is_some());
            }
        }
        for component in self.tree.components.iter().rev() {
            for entry in component.scan(Some(&[]))? {
                let (key, doc) = entry?;
                merged.entry(OrderedValue(key)).or_insert(doc.is_some());
            }
        }
        Ok(merged.values().filter(|live| **live).count())
    }

    /// Batched point lookups for the (sorted) keys produced by a secondary
    /// index probe (§4.6).
    pub fn lookup_sorted_keys(
        &self,
        keys: &mut [Value],
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        keys.sort_by(docmodel::total_cmp);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys.iter() {
            if let Some(doc) = self.lookup(key, projection)? {
                out.push(doc);
            }
        }
        Ok(out)
    }

    /// The on-disk components visible to this snapshot, oldest first.
    pub fn components(&self) -> &[Arc<Component>] {
        &self.tree.components
    }

    /// Approximate heap bytes held by sealed memtables at snapshot time
    /// (what backpressure bounds).
    pub fn sealed_bytes(&self) -> usize {
        self.tree.sealed.iter().map(|s| s.bytes).sum()
    }

    /// Records (and anti-matter) still in memory at snapshot time: the
    /// frozen active memtable plus every sealed memtable.
    pub fn in_memory_entries(&self) -> usize {
        self.active.len()
            + self
                .tree
                .sealed
                .iter()
                .map(|s| s.entries.len())
                .sum::<usize>()
    }
}
