//! Consistent point-in-time read views and their streaming cursors.
//!
//! The dataset publishes its LSM tree as an immutable [`TreeState`] behind
//! an atomically-swapped `Arc`: sealed (flush-pending) memtables plus the
//! stack of on-disk components. A [`Snapshot`] pairs one such tree with a
//! frozen copy of the active memtable, giving readers — point lookups,
//! scans, and the whole query engine — a view that is internally consistent
//! no matter how many writers, flushes and merges run concurrently:
//!
//! * flushes move records from a sealed memtable into a component, but a
//!   snapshot taken earlier still holds the sealed memtable's `Arc`;
//! * merges retire their input components *after* the manifest commit, and
//!   the pages are freed only when the last snapshot releases its handles
//!   (`Component::retire` in the storage crate);
//! * the reconciliation order inside a snapshot is always newest-first:
//!   active memtable, then sealed memtables (newest first), then components
//!   (newest first) — the most recent version of each key wins and
//!   anti-matter hides older versions.
//!
//! ## The cursor protocol
//!
//! Scans are *pull-based*. [`Snapshot::cursor`] builds a k-way
//! merge-reconcile cursor ([`ScanCursor`]) over all sources of the snapshot:
//! every source is key-sorted (memtables by construction, components by the
//! storage cursor protocol), so the merge yields records in global key order
//! while holding **at most one decoded leaf per component** in memory —
//! O(components × leaf) instead of O(dataset). Reconciliation happens on the
//! fly and on **keys alone**: sources expose their next key without
//! assembling the record; when several sources head the same key, the newest
//! source's version wins and is the only one assembled — the shadowed
//! versions are batch-skipped at the column-cursor level (§4.4), never
//! decoded into documents. Anti-matter annihilates its key without emitting
//! it. Dropping the cursor early (a `LIMIT`, a short-circuiting consumer)
//! leaves every unread leaf unread; both effects show up in the `IoStats`
//! counters (`pages_read`, `records_assembled`).
//!
//! The same machinery, with anti-matter *preserved*, drives the dataset's
//! merges and index rebuilds ([`EntryMergeCursor`]): a merge is exactly a
//! newest-first reconciling union of component cursors.
//!
//! ## Filter push-down (late materialization)
//!
//! [`Snapshot::cursor_pushed`] threads a conjunction of sargable
//! [`ColumnPredicate`]s down into every source. The contract:
//!
//! * The merge evaluates **only the reconciliation winner** of each key.
//!   Shadowed versions are batch-skipped *before* the winner is tested — a
//!   stale value must never decide whether a live record survives, and a
//!   rejected winner must never resurrect the versions it shadowed.
//! * A rejected winner is consumed without assembly: columnar components
//!   evaluate the predicates over the **filter columns alone**
//!   ([`ComponentCursor::pushed_matches`]) and batch-skip rejections like
//!   reconciliation losers, counted in `IoStats` as
//!   `records_filtered_pre_assembly`. Memtable rejections cost no I/O and
//!   are not counted.
//! * Whole leaves whose persisted zone maps prove no match are skipped
//!   before any page read (`leaves_skipped`) — but only when the leaf's key
//!   range is disjoint from every **older** component's key range, so
//!   hiding it can neither resurrect a shadowed version nor drop an
//!   anti-matter annihilation.
//! * Anti-matter always passes the filter: it has no value to test and must
//!   reach the merge to annihilate ([`ScanCursor`] then drops it).
//!
//! Predicates the planner cannot push (disjunctions, repeated paths — the
//! existential-semantics lesson) stay in the query layer's *residual*
//! filter, applied after assembly. Merges and index rebuilds never push
//! filters: they must preserve every surviving version and all anti-matter.
//!
//! Cursors are fully owned (`Arc`s into the snapshot's sources), so they can
//! outlive the `&Snapshot` borrow they were created from — the facade hands
//! them out as streaming query results.

use std::sync::Arc;

use docmodel::{total_cmp, Path, Value};
use storage::component::{
    ColumnPredicate, Component, ComponentCursor, ComponentReader, Entry, ScanFilter,
};

use crate::Result;

/// A memtable sealed for flushing: an immutable, key-sorted run of entries
/// plus the id of the newest WAL segment containing its records.
pub struct SealedMemtable {
    /// Entries in key order (`None` = anti-matter).
    pub(crate) entries: Vec<(Value, Option<Value>)>,
    /// Newest WAL segment covering these entries (durable datasets only).
    pub(crate) wal_segment: Option<u64>,
    /// Approximate heap footprint, for accounting.
    pub(crate) bytes: usize,
}

impl SealedMemtable {
    fn find(&self, key: &Value) -> Option<&Option<Value>> {
        self.entries
            .binary_search_by(|(k, _)| total_cmp(k, key))
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// The immutable, atomically-swapped part of a dataset: everything except
/// the active memtable. Cloning is shallow (`Arc` bumps).
#[derive(Default, Clone)]
pub struct TreeState {
    /// Sealed memtables awaiting flush, oldest first.
    pub(crate) sealed: Vec<Arc<SealedMemtable>>,
    /// On-disk components, oldest first.
    pub(crate) components: Vec<Arc<Component>>,
}

/// A consistent point-in-time view of one dataset. Cloning is shallow: the
/// active memtable copy and the tree are both behind `Arc`s.
#[derive(Clone)]
pub struct Snapshot {
    /// Frozen copy of the active memtable, in key order.
    pub(crate) active: Arc<Vec<(Value, Option<Value>)>>,
    /// The published tree at snapshot time.
    pub(crate) tree: Arc<TreeState>,
}

impl Snapshot {
    /// Point lookup: newest version of `key`. `None` when the key does not
    /// exist or was deleted at snapshot time.
    pub fn lookup(&self, key: &Value, projection: Option<&[Path]>) -> Result<Option<Value>> {
        if let Ok(i) = self.active.binary_search_by(|(k, _)| total_cmp(k, key)) {
            return Ok(self.active[i].1.clone());
        }
        for sealed in self.tree.sealed.iter().rev() {
            if let Some(entry) = sealed.find(key) {
                return Ok(entry.clone());
            }
        }
        for component in self.tree.components.iter().rev() {
            if let Some(entry) = component.lookup(key, projection)? {
                return Ok(entry);
            }
        }
        Ok(None)
    }

    /// A streaming merge-reconcile cursor over the whole snapshot: live
    /// records in key order, duplicates reconciled newest-first, anti-matter
    /// dropped. Only the projected paths are assembled from columnar
    /// components. See the module-level cursor protocol.
    pub fn cursor(&self, projection: Option<&[Path]>) -> Result<ScanCursor> {
        self.cursor_pruned(projection, &[])
    }

    /// Like [`Snapshot::cursor`], but skipping the components whose position
    /// (oldest-first, matching [`Snapshot::components`]) is flagged in
    /// `skip`. Missing trailing flags mean "do not skip".
    ///
    /// This is the zone-map pruning entry point: the query planner flags a
    /// component when its column statistics prove **no record in it can
    /// match the filter**. Skipping is nevertheless only sound when it
    /// cannot resurrect an older, shadowed version of one of the skipped
    /// component's keys (or drop one of its anti-matter entries): the caller
    /// must flag a component only if, additionally, its key range is
    /// disjoint from every *older* component's key range — see
    /// `query::physical::prune_flags`, the single implementation of that
    /// rule. Memtables are newer than every component and are always
    /// scanned, so they never constrain pruning.
    pub fn cursor_pruned(
        &self,
        projection: Option<&[Path]>,
        skip: &[bool],
    ) -> Result<ScanCursor> {
        Ok(ScanCursor {
            inner: self.entry_cursor(projection, skip, None),
        })
    }

    /// Like [`Snapshot::cursor_pruned`], with a pushed-down filter: the
    /// conjunction of `predicates` is evaluated source-side on each key's
    /// reconciliation winner (filter columns only on columnar components —
    /// no assembly for rejections), and component leaves whose zone maps
    /// prove no match are skipped before any page read. See the
    /// module-level filter push-down contract. An empty predicate list is
    /// exactly [`Snapshot::cursor_pruned`].
    pub fn cursor_pushed(
        &self,
        projection: Option<&[Path]>,
        skip: &[bool],
        predicates: Arc<Vec<ColumnPredicate>>,
    ) -> Result<ScanCursor> {
        let filter = (!predicates.is_empty()).then_some(predicates);
        Ok(ScanCursor {
            inner: self.entry_cursor(projection, skip, filter),
        })
    }

    /// The underlying entry-level merge cursor (anti-matter included).
    fn entry_cursor(
        &self,
        projection: Option<&[Path]>,
        skip: &[bool],
        filter: Option<Arc<Vec<ColumnPredicate>>>,
    ) -> EntryMergeCursor {
        // Sources newest-first: active memtable, sealed memtables (newest
        // first), components (newest first, minus the pruned ones).
        let mut sources = Vec::with_capacity(1 + self.tree.sealed.len() + self.tree.components.len());
        sources.push(MergeSource::mem(self.active.clone()));
        for sealed in self.tree.sealed.iter().rev() {
            sources.push(MergeSource::sealed(sealed.clone()));
        }
        // Every component's key range, oldest first. Pruned components are
        // included: a component the *scan* skips entirely still has versions
        // a newer component's leaf could shadow, so it still constrains which
        // leaves may be hidden.
        let ranges: Vec<Option<(Value, Value)>> = if filter.is_some() {
            self.tree.components.iter().map(|c| c.key_range()).collect()
        } else {
            Vec::new()
        };
        for (i, component) in self.tree.components.iter().enumerate().rev() {
            if skip.get(i).copied().unwrap_or(false) {
                continue;
            }
            match &filter {
                Some(predicates) => {
                    let older: Vec<(Value, Value)> =
                        ranges[..i].iter().flatten().cloned().collect();
                    sources.push(MergeSource::disk(component.cursor_filtered(
                        projection,
                        Some(ScanFilter {
                            predicates: predicates.clone(),
                            older_key_ranges: Arc::new(older),
                        }),
                    )));
                }
                None => sources.push(MergeSource::disk(component.cursor(projection))),
            }
        }
        let mut cursor = EntryMergeCursor::new(sources);
        cursor.filter = filter;
        cursor
    }

    /// Scan the snapshot into a materialised batch, reconciling duplicates
    /// and dropping anti-matter. A convenience over [`Snapshot::cursor`] for
    /// callers that want the whole result anyway (tests, small datasets);
    /// the query engines stream instead.
    pub fn scan(&self, projection: Option<&[Path]>) -> Result<Vec<Value>> {
        self.scan_pruned(projection, &[])
    }

    /// Materialising variant of [`Snapshot::cursor_pruned`].
    pub fn scan_pruned(
        &self,
        projection: Option<&[Path]>,
        skip: &[bool],
    ) -> Result<Vec<Value>> {
        let mut out = Vec::new();
        for entry in self.cursor_pruned(projection, skip)? {
            out.push(entry?.1);
        }
        Ok(out)
    }

    /// Number of live records (COUNT(*)): streams the key-only cursor, so
    /// only primary keys are read (Page 0 alone for AMAX) and memory stays
    /// bounded by one leaf per component.
    pub fn count(&self) -> Result<usize> {
        let mut n = 0;
        for entry in self.cursor(Some(&[]))? {
            entry?;
            n += 1;
        }
        Ok(n)
    }

    /// Batched point lookups for the (sorted) keys produced by a secondary
    /// index probe (§4.6).
    pub fn lookup_sorted_keys(
        &self,
        keys: &mut [Value],
        projection: Option<&[Path]>,
    ) -> Result<Vec<Value>> {
        Ok(self
            .lookup_sorted_entries(keys, projection)?
            .into_iter()
            .map(|(_, doc)| doc)
            .collect())
    }

    /// Like [`Snapshot::lookup_sorted_keys`], but keeping each record paired
    /// with its primary key — what the query layer's key-ordered projection
    /// output needs.
    pub fn lookup_sorted_entries(
        &self,
        keys: &mut [Value],
        projection: Option<&[Path]>,
    ) -> Result<Vec<(Value, Value)>> {
        keys.sort_by(docmodel::total_cmp);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys.iter() {
            if let Some(doc) = self.lookup(key, projection)? {
                out.push((key.clone(), doc));
            }
        }
        Ok(out)
    }

    /// The on-disk components visible to this snapshot, oldest first.
    pub fn components(&self) -> &[Arc<Component>] {
        &self.tree.components
    }

    /// Approximate heap bytes held by sealed memtables at snapshot time
    /// (what backpressure bounds).
    pub fn sealed_bytes(&self) -> usize {
        self.tree.sealed.iter().map(|s| s.bytes).sum()
    }

    /// Records (and anti-matter) still in memory at snapshot time: the
    /// frozen active memtable plus every sealed memtable.
    pub fn in_memory_entries(&self) -> usize {
        self.active.len()
            + self
                .tree
                .sealed
                .iter()
                .map(|s| s.entries.len())
                .sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// The k-way merge-reconcile cursors.
// ---------------------------------------------------------------------------

/// One input of the merge: a key-sorted run of entries, either shared
/// in-memory slices (memtables) or a streaming component cursor.
enum SourceKind {
    /// Active memtable (frozen copy) or a sealed memtable's entries.
    Mem {
        entries: MemEntries,
        pos: usize,
    },
    /// A streaming on-disk component cursor (one leaf resident at a time).
    Disk(ComponentCursor),
}

/// The two shared in-memory entry runs a source can hold an `Arc` into.
enum MemEntries {
    Active(Arc<Vec<Entry>>),
    Sealed(Arc<SealedMemtable>),
}

impl MemEntries {
    fn get(&self, pos: usize) -> Option<&Entry> {
        match self {
            MemEntries::Active(entries) => entries.get(pos),
            MemEntries::Sealed(sealed) => sealed.entries.get(pos),
        }
    }
}

/// One merge input together with its buffered head **key**.
///
/// The merge reconciles on keys alone: a source's next entry is only
/// *assembled* ([`MergeSource::take_entry`]) when it wins its key, and
/// *skipped* ([`MergeSource::skip_entry`]) when a newer source shadows it —
/// for columnar components the skip advances every column cursor in one
/// batched step without decoding a single value (§4.4).
struct MergeSource {
    kind: SourceKind,
    /// The key of the source's next entry, peeked but not yet consumed.
    head_key: Option<Value>,
    /// Set once the source returned `None` (avoids re-polling).
    exhausted: bool,
}

impl MergeSource {
    fn mem(entries: Arc<Vec<Entry>>) -> MergeSource {
        MergeSource {
            kind: SourceKind::Mem { entries: MemEntries::Active(entries), pos: 0 },
            head_key: None,
            exhausted: false,
        }
    }

    fn sealed(sealed: Arc<SealedMemtable>) -> MergeSource {
        MergeSource {
            kind: SourceKind::Mem { entries: MemEntries::Sealed(sealed), pos: 0 },
            head_key: None,
            exhausted: false,
        }
    }

    fn disk(cursor: ComponentCursor) -> MergeSource {
        MergeSource { kind: SourceKind::Disk(cursor), head_key: None, exhausted: false }
    }

    /// Ensure `head_key` holds the source's next key (or mark it exhausted).
    /// The entry itself stays unassembled.
    fn fill_key(&mut self) -> Result<()> {
        if self.head_key.is_some() || self.exhausted {
            return Ok(());
        }
        match &mut self.kind {
            SourceKind::Mem { entries, pos } => match entries.get(*pos) {
                Some((key, _)) => self.head_key = Some(key.clone()),
                None => self.exhausted = true,
            },
            SourceKind::Disk(cursor) => match cursor.peek_key() {
                Some(key) => self.head_key = Some(key?),
                None => self.exhausted = true,
            },
        }
        Ok(())
    }

    /// Consume and assemble the entry whose key is `head_key` (the winner of
    /// the current merge step).
    fn take_entry(&mut self) -> Result<Entry> {
        self.head_key = None;
        match &mut self.kind {
            SourceKind::Mem { entries, pos } => {
                let entry = entries.get(*pos).expect("head key was filled").clone();
                *pos += 1;
                Ok(entry)
            }
            SourceKind::Disk(cursor) => cursor.next().expect("head key was filled"),
        }
    }

    /// Consume the entry whose key is `head_key` without assembling it (a
    /// shadowed version of a key a newer source already provided).
    fn skip_entry(&mut self) {
        self.head_key = None;
        match &mut self.kind {
            SourceKind::Mem { pos, .. } => *pos += 1,
            SourceKind::Disk(cursor) => cursor.skip_entry(),
        }
    }

    /// Does the source's next entry (the reconciliation winner of its key)
    /// pass the pushed-down filter? Memtable entries are evaluated in place
    /// (anti-matter always passes); disk sources delegate to the component
    /// cursor, which decodes filter columns only.
    fn head_passes_filter(&mut self, predicates: &[ColumnPredicate]) -> Result<bool> {
        match &mut self.kind {
            SourceKind::Mem { entries, pos } => Ok(match entries.get(*pos) {
                Some((_, Some(doc))) => predicates.iter().all(|p| p.matches(doc)),
                _ => true,
            }),
            SourceKind::Disk(cursor) => cursor.pushed_matches().unwrap_or(Ok(true)),
        }
    }

    /// Consume the entry whose key is `head_key` as a pushed-filter
    /// rejection. Disk sources count it as `records_filtered_pre_assembly`;
    /// memtable rejections cost no I/O and are uncounted.
    fn skip_entry_filtered(&mut self) {
        self.head_key = None;
        match &mut self.kind {
            SourceKind::Mem { pos, .. } => *pos += 1,
            SourceKind::Disk(cursor) => cursor.skip_entry_filtered(),
        }
    }

    /// Entries currently decoded and resident for this source (disk sources
    /// only — memtable sources share the snapshot's memory).
    fn buffered(&self) -> usize {
        match &self.kind {
            SourceKind::Mem { .. } => 0,
            SourceKind::Disk(cursor) => cursor.buffered(),
        }
    }
}

/// A k-way, newest-first merge-reconcile cursor over key-sorted entry runs.
///
/// Yields one [`Entry`] per distinct key, in ascending key order: the
/// version from the **newest** source holding the key (sources are ordered
/// newest-first at construction). Anti-matter entries are yielded as
/// `(key, None)` — callers that want live records only use [`ScanCursor`];
/// the dataset's merge keeps the anti-matter to write it into the merged
/// component.
pub struct EntryMergeCursor {
    /// Sources in newest-first order; index = reconciliation priority.
    sources: Vec<MergeSource>,
    /// Pushed-down filter: each key's reconciliation winner must pass this
    /// conjunction or the merge consumes it unassembled (see the module-level
    /// filter push-down contract). `None` = yield every winner.
    filter: Option<Arc<Vec<ColumnPredicate>>>,
    /// High-water mark of entries buffered across all sources (the peak-RSS
    /// proxy reported by the streaming benchmarks).
    peak_buffered: usize,
}

impl EntryMergeCursor {
    fn new(sources: Vec<MergeSource>) -> EntryMergeCursor {
        EntryMergeCursor { sources, filter: None, peak_buffered: 0 }
    }

    /// A merge cursor over on-disk components only (`components` given
    /// oldest-first, as stored in the tree), anti-matter preserved — the
    /// dataset's merge input.
    pub fn over_components(
        components: &[Arc<Component>],
        projection: Option<&[Path]>,
    ) -> EntryMergeCursor {
        EntryMergeCursor::new(
            components
                .iter()
                .rev()
                .map(|c| MergeSource::disk(c.cursor(projection)))
                .collect(),
        )
    }

    /// Like [`EntryMergeCursor::over_components`], with an additional
    /// in-memory key-sorted run that is newer than every component (the
    /// recovered memtable during index rebuilds).
    pub fn over_memtable_and_components(
        memtable_entries: Vec<Entry>,
        components: &[Arc<Component>],
        projection: Option<&[Path]>,
    ) -> EntryMergeCursor {
        let mut sources = vec![MergeSource::mem(Arc::new(memtable_entries))];
        for component in components.iter().rev() {
            sources.push(MergeSource::disk(component.cursor(projection)));
        }
        EntryMergeCursor::new(sources)
    }

    /// High-water mark of entries decoded and buffered across all disk
    /// sources so far — at most one leaf per component, the memory bound of
    /// the streaming scan (used as the peak-RSS proxy in benchmarks).
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Advance every source past all entries with key `<= bound` **without
    /// assembling them**: only key columns are decoded and each shadowed
    /// entry is batch-skipped at the column-cursor level, exactly like a
    /// reconciliation loser (§4.4). After the call, the cursor's next entry
    /// is the smallest key strictly greater than `bound`.
    ///
    /// This is what lets a long-running scan be *re-pinned* on a fresh
    /// snapshot mid-stream (bounded staleness): rebuild the cursor, then
    /// `skip_to` the last key already delivered. Cost is proportional to the
    /// skipped prefix's key columns, not to record assembly.
    pub fn skip_to(&mut self, bound: &Value) -> Result<()> {
        for source in &mut self.sources {
            loop {
                source.fill_key()?;
                match &source.head_key {
                    Some(key) if total_cmp(key, bound) != std::cmp::Ordering::Greater => {
                        source.skip_entry();
                    }
                    _ => break,
                }
            }
        }
        Ok(())
    }

    fn advance(&mut self) -> Result<Option<Entry>> {
        let filter = self.filter.clone();
        loop {
            // Fill every head key, then account the buffered high-water mark.
            for source in &mut self.sources {
                source.fill_key()?;
            }
            let buffered: usize = self.sources.iter().map(MergeSource::buffered).sum();
            self.peak_buffered = self.peak_buffered.max(buffered);

            // The smallest head key wins; among equal keys, the newest source
            // (lowest index) provides the surviving version.
            let mut best: Option<usize> = None;
            for (i, source) in self.sources.iter().enumerate() {
                let Some(key) = &source.head_key else { continue };
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let best_key = self.sources[b].head_key.as_ref().expect("head filled");
                        if total_cmp(key, best_key) == std::cmp::Ordering::Less {
                            best = Some(i);
                        }
                    }
                }
            }
            let Some(best) = best else { return Ok(None) };
            // The shadowed versions of the winning key in older sources are
            // skipped column-cursor-batch-wise, never decoded into documents
            // (§4.4) — *before* the winner is evaluated or assembled, so a
            // filter-rejected winner can never resurrect them.
            let best_key = self.sources[best].head_key.clone().expect("head filled");
            for source in &mut self.sources[best + 1..] {
                if let Some(key) = &source.head_key {
                    if total_cmp(key, &best_key) == std::cmp::Ordering::Equal {
                        source.skip_entry();
                    }
                }
            }
            // Pushed-down filter: only the winner is evaluated (filter
            // columns alone on columnar components); a rejection is consumed
            // without assembly and the merge moves on.
            if let Some(predicates) = &filter {
                if !self.sources[best].head_passes_filter(predicates)? {
                    self.sources[best].skip_entry_filtered();
                    continue;
                }
            }
            // Only the winner is assembled.
            return Ok(Some(self.sources[best].take_entry()?));
        }
    }
}

impl Iterator for EntryMergeCursor {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        self.advance().transpose()
    }
}

/// The snapshot-level streaming scan: live `(key, record)` pairs in key
/// order, anti-matter dropped. Created by [`Snapshot::cursor`] /
/// [`Snapshot::cursor_pruned`]; fully owned, so it may outlive the snapshot
/// borrow it came from.
pub struct ScanCursor {
    inner: EntryMergeCursor,
}

impl ScanCursor {
    /// High-water mark of entries decoded and buffered across all disk
    /// sources so far (see [`EntryMergeCursor::peak_buffered`]).
    pub fn peak_buffered(&self) -> usize {
        self.inner.peak_buffered()
    }

    /// Skip (without assembling) every entry with key `<= bound`; the next
    /// yielded record is the smallest live key strictly greater than
    /// `bound`. See [`EntryMergeCursor::skip_to`].
    pub fn skip_to(&mut self, bound: &Value) -> Result<()> {
        self.inner.skip_to(bound)
    }
}

impl Iterator for ScanCursor {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.inner.next()? {
                Ok((key, Some(doc))) => return Some(Ok((key, doc))),
                Ok((_, None)) => continue, // anti-matter: key is deleted
                Err(e) => return Some(Err(e)),
            }
        }
    }
}
