//! Background flush/merge scheduling and ingest backpressure.
//!
//! The dataset's mutable tree state is published as an immutable,
//! atomically-swapped [`TreeState`](crate::snapshot) snapshot; the
//! [`Scheduler`] is the small piece of per-dataset shared control state that
//! coordinates *who* advances that tree:
//!
//! * the **writer** seals the active memtable when it exceeds its budget,
//!   accounts for it ([`Scheduler::note_sealed`]) and queues a flush round
//!   on the worker pool (see [`pool`](crate::pool));
//! * the **pool workers** execute the dataset's queued flush/merge rounds;
//!   the scheduler counts how many rounds are queued and running
//!   ([`Scheduler::task_enqueued`] / [`Scheduler::begin_work`] /
//!   [`Scheduler::work_done`]) so draining and shutdown know when the
//!   dataset is quiescent;
//! * **backpressure**: when `max_sealed_memtables` sealed memtables are
//!   already waiting, [`Scheduler::admit`] blocks the writer until a flush
//!   retires one, bounding memory instead of letting ingest outrun the disk;
//! * **draining**: an explicit `flush()` queues a round and waits until no
//!   sealed memtable remains and no round is queued or running.
//!
//! A failure on a pool worker (I/O error, injected crash point) is parked
//! in the scheduler: the next `admit`/`drain` surfaces it to the caller,
//! exactly where a synchronous flush would have returned it. `drain`
//! *consumes* the failure so the caller can retry (recovery tests re-run a
//! flush after an injected crash).

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::LsmError;

/// Shared writer/worker control state.
#[derive(Default)]
struct Ctrl {
    /// Sealed memtables awaiting flush.
    sealed_count: usize,
    /// Background rounds submitted to the pool and not yet started.
    queued: usize,
    /// Background rounds currently running on pool workers.
    busy: usize,
    /// The dataset is shutting down; queued rounds become no-ops.
    shutdown: bool,
    /// A background flush/merge failed; surfaced on the next admit/drain.
    failed: Option<LsmError>,
}

/// A point-in-time, non-consuming view of the scheduler's control state
/// (see [`Scheduler::status`]).
pub(crate) struct SchedulerStatus {
    /// At least one background round is running on a pool worker.
    pub(crate) busy: bool,
    /// At least one background round is queued and not yet picked up.
    pub(crate) pending: bool,
    /// Sealed memtables awaiting flush.
    pub(crate) sealed_count: usize,
    /// A parked background failure (not consumed by reading it here).
    pub(crate) failed: Option<LsmError>,
}

/// Coordination between the ingest path and the background worker pool.
pub(crate) struct Scheduler {
    ctrl: Mutex<Ctrl>,
    /// Writers (backpressure), drainers and shutdown wait here for progress.
    done_cv: Condvar,
}

impl Scheduler {
    pub(crate) fn new() -> Scheduler {
        Scheduler {
            ctrl: Mutex::new(Ctrl::default()),
            done_cv: Condvar::new(),
        }
    }

    /// Backpressure gate, called by writers *before* taking the write lock:
    /// blocks while `max_sealed` sealed memtables are already queued.
    /// Surfaces (without consuming) a parked background failure. Returns how
    /// long the writer stalled, if it had to wait at all — the caller
    /// records it as backpressure stall time.
    pub(crate) fn admit(&self, max_sealed: usize) -> Result<Option<Duration>, LsmError> {
        let mut ctrl = self.ctrl.lock().unwrap();
        let mut stalled_since: Option<Instant> = None;
        loop {
            if let Some(err) = &ctrl.failed {
                return Err(err.clone());
            }
            if ctrl.sealed_count < max_sealed.max(1) {
                return Ok(stalled_since.map(|s| s.elapsed()));
            }
            stalled_since.get_or_insert_with(Instant::now);
            ctrl = self.done_cv.wait(ctrl).unwrap();
        }
    }

    /// A memtable was sealed: account for it (the caller queues the flush
    /// round on the pool separately).
    pub(crate) fn note_sealed(&self) {
        self.ctrl.lock().unwrap().sealed_count += 1;
    }

    /// A sealed memtable was flushed: release backpressure waiters.
    pub(crate) fn note_flushed(&self) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.sealed_count = ctrl.sealed_count.saturating_sub(1);
        self.done_cv.notify_all();
    }

    /// Sealed memtables currently queued.
    pub(crate) fn sealed_count(&self) -> usize {
        self.ctrl.lock().unwrap().sealed_count
    }

    /// Non-consuming view of the control state for health reporting: the
    /// parked failure (if any) stays parked, so reading health never races a
    /// writer out of observing the error.
    pub(crate) fn status(&self) -> SchedulerStatus {
        let ctrl = self.ctrl.lock().unwrap();
        SchedulerStatus {
            busy: ctrl.busy > 0,
            pending: ctrl.queued > 0,
            sealed_count: ctrl.sealed_count,
            failed: ctrl.failed.clone(),
        }
    }

    /// A background round was submitted to the pool. Call *before* the
    /// submission so a fast worker can never decrement the count first.
    pub(crate) fn task_enqueued(&self) {
        self.ctrl.lock().unwrap().queued += 1;
    }

    /// The pool refused the submission (it has shut down): undo the
    /// accounting of the matching [`Scheduler::task_enqueued`].
    pub(crate) fn task_rejected(&self) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.queued = ctrl.queued.saturating_sub(1);
        self.done_cv.notify_all();
    }

    /// Worker side: a queued round is starting. Returns `false` (and drops
    /// the round) when the dataset is shutting down.
    pub(crate) fn begin_work(&self) -> bool {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.queued = ctrl.queued.saturating_sub(1);
        if ctrl.shutdown {
            self.done_cv.notify_all();
            return false;
        }
        ctrl.busy += 1;
        true
    }

    /// Worker side: report the outcome of one background round.
    pub(crate) fn work_done(&self, result: Result<(), LsmError>) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.busy = ctrl.busy.saturating_sub(1);
        if let Err(err) = result {
            ctrl.failed = Some(err);
        }
        self.done_cv.notify_all();
    }

    /// Wait until every sealed memtable is flushed and no background round
    /// is queued or running. The caller queues a round first, so parked
    /// failures are retried. Consumes and returns a parked failure, so a
    /// subsequent drain retries the work.
    pub(crate) fn drain(&self) -> Result<(), LsmError> {
        let mut ctrl = self.ctrl.lock().unwrap();
        loop {
            if let Some(err) = ctrl.failed.take() {
                return Err(err);
            }
            if ctrl.sealed_count == 0 && ctrl.queued == 0 && ctrl.busy == 0 {
                return Ok(());
            }
            ctrl = self.done_cv.wait(ctrl).unwrap();
        }
    }

    /// Mark the dataset as shutting down: queued rounds become no-ops
    /// (their `begin_work` returns `false`). Idempotent.
    pub(crate) fn shutdown(&self) {
        self.ctrl.lock().unwrap().shutdown = true;
        self.done_cv.notify_all();
    }

    /// Wait until no background round is queued or running — the dataset
    /// quiescence gate `Drop` needs before releasing shared resources.
    /// Ignores sealed memtables (under shutdown they will never flush) and
    /// parked failures (nobody is left to retry them).
    pub(crate) fn wait_idle(&self) {
        let mut ctrl = self.ctrl.lock().unwrap();
        while ctrl.queued > 0 || ctrl.busy > 0 {
            ctrl = self.done_cv.wait(ctrl).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admit_blocks_until_flush_and_surfaces_failures() {
        let sched = Arc::new(Scheduler::new());
        sched.note_sealed();
        sched.note_sealed();
        let t = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.admit(2))
        };
        // Unblock the writer by "flushing" one sealed memtable.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.note_flushed();
        let stalled = t.join().unwrap().unwrap();
        assert!(stalled.is_some(), "the blocked admit must report its stall");

        // A background round fails: the error parks.
        sched.task_enqueued();
        assert!(sched.begin_work());
        sched.work_done(Err(LsmError::new("boom")));
        // status() surfaces the parked failure without consuming it.
        assert!(sched.status().failed.is_some());
        assert!(sched.admit(2).is_err(), "parked failure must surface");
        assert!(sched.status().failed.is_some(), "admit must not consume it");
        assert!(sched.drain().is_err(), "drain consumes the failure");
        assert!(sched.status().failed.is_none());
        // After drain consumed it, admit passes again (one slot free).
        sched.note_flushed();
        let stalled = sched.admit(2).unwrap();
        assert!(stalled.is_none(), "an unblocked admit reports no stall");
    }

    #[test]
    fn drain_waits_for_queued_and_running_rounds() {
        let sched = Arc::new(Scheduler::new());
        sched.note_sealed();
        sched.task_enqueued();
        assert!(sched.status().pending);
        // A simulated pool worker: picks up the round, "flushes", reports.
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                assert!(sched.begin_work());
                std::thread::sleep(std::time::Duration::from_millis(5));
                sched.note_flushed();
                sched.work_done(Ok(()));
            })
        };
        sched.drain().unwrap();
        assert_eq!(sched.sealed_count(), 0);
        assert!(!sched.status().busy);
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_makes_queued_rounds_noops_and_wait_idle_settles() {
        let sched = Scheduler::new();
        sched.task_enqueued();
        sched.task_enqueued();
        sched.shutdown();
        // Both queued rounds are dropped by their begin_work.
        assert!(!sched.begin_work());
        assert!(!sched.begin_work());
        sched.wait_idle();
        assert!(!sched.status().busy);
        assert!(!sched.status().pending);
    }
}
