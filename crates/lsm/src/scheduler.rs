//! Background flush/merge scheduling and ingest backpressure.
//!
//! The dataset's mutable tree state is published as an immutable,
//! atomically-swapped [`TreeState`](crate::snapshot) snapshot; the
//! [`Scheduler`] is the small piece of shared control state that coordinates
//! *who* advances that tree:
//!
//! * the **writer** seals the active memtable when it exceeds its budget and
//!   signals the scheduler ([`Scheduler::note_sealed`]);
//! * the **worker thread** (one per dataset, when
//!   [`DatasetConfig::background`](crate::DatasetConfig) is set) wakes up,
//!   flushes sealed memtables oldest-first and runs the tiering policy's
//!   merges after each flush — the fair FCFS order of the paper's setup
//!   (§6.3) falls out of the single worker processing one job at a time;
//! * **backpressure**: when `max_sealed_memtables` sealed memtables are
//!   already waiting, [`Scheduler::admit`] blocks the writer until a flush
//!   retires one, bounding memory instead of letting ingest outrun the disk;
//! * **draining**: an explicit `flush()` signals the worker and waits until
//!   no sealed memtable remains and the worker is idle.
//!
//! A failure on the worker thread (I/O error, injected crash point) is
//! parked in the scheduler: the next `admit`/`drain` surfaces it to the
//! caller, exactly where a synchronous flush would have returned it.
//! `drain` *consumes* the failure so the caller can retry (recovery tests
//! re-run a flush after an injected crash).

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::LsmError;

/// Shared writer/worker control state.
#[derive(Default)]
struct Ctrl {
    /// Sealed memtables awaiting flush.
    sealed_count: usize,
    /// Work has been signalled and not yet picked up.
    pending: bool,
    /// The worker is currently processing.
    busy: bool,
    /// The dataset is shutting down; the worker must exit.
    shutdown: bool,
    /// A background flush/merge failed; surfaced on the next admit/drain.
    failed: Option<LsmError>,
}

/// A point-in-time, non-consuming view of the scheduler's control state
/// (see [`Scheduler::status`]).
pub(crate) struct SchedulerStatus {
    /// The worker is currently processing a job.
    pub(crate) busy: bool,
    /// Work has been signalled and not yet picked up.
    pub(crate) pending: bool,
    /// Sealed memtables awaiting flush.
    pub(crate) sealed_count: usize,
    /// A parked background failure (not consumed by reading it here).
    pub(crate) failed: Option<LsmError>,
}

/// Coordination between the ingest path and the background worker.
pub(crate) struct Scheduler {
    ctrl: Mutex<Ctrl>,
    /// Worker waits here for work.
    work_cv: Condvar,
    /// Writers (backpressure) and drainers wait here for progress.
    done_cv: Condvar,
}

impl Scheduler {
    pub(crate) fn new() -> Scheduler {
        Scheduler {
            ctrl: Mutex::new(Ctrl::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Backpressure gate, called by writers *before* taking the write lock:
    /// blocks while `max_sealed` sealed memtables are already queued.
    /// Surfaces (without consuming) a parked background failure. Returns how
    /// long the writer stalled, if it had to wait at all — the caller
    /// records it as backpressure stall time.
    pub(crate) fn admit(&self, max_sealed: usize) -> Result<Option<Duration>, LsmError> {
        let mut ctrl = self.ctrl.lock().unwrap();
        let mut stalled_since: Option<Instant> = None;
        loop {
            if let Some(err) = &ctrl.failed {
                return Err(err.clone());
            }
            if ctrl.sealed_count < max_sealed.max(1) {
                return Ok(stalled_since.map(|s| s.elapsed()));
            }
            stalled_since.get_or_insert_with(Instant::now);
            ctrl = self.done_cv.wait(ctrl).unwrap();
        }
    }

    /// A memtable was sealed: account for it and wake the worker.
    pub(crate) fn note_sealed(&self) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.sealed_count += 1;
        ctrl.pending = true;
        self.work_cv.notify_one();
    }

    /// A sealed memtable was flushed: release backpressure waiters.
    pub(crate) fn note_flushed(&self) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.sealed_count = ctrl.sealed_count.saturating_sub(1);
        self.done_cv.notify_all();
    }

    /// Sealed memtables currently queued.
    pub(crate) fn sealed_count(&self) -> usize {
        self.ctrl.lock().unwrap().sealed_count
    }

    /// Non-consuming view of the control state for health reporting: the
    /// parked failure (if any) stays parked, so reading health never races a
    /// writer out of observing the error.
    pub(crate) fn status(&self) -> SchedulerStatus {
        let ctrl = self.ctrl.lock().unwrap();
        SchedulerStatus {
            busy: ctrl.busy,
            pending: ctrl.pending,
            sealed_count: ctrl.sealed_count,
            failed: ctrl.failed.clone(),
        }
    }

    /// Signal the worker and wait until every sealed memtable is flushed and
    /// the worker is idle. Consumes and returns a parked failure, so a
    /// subsequent drain retries the work.
    pub(crate) fn drain(&self) -> Result<(), LsmError> {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.pending = true;
        self.work_cv.notify_one();
        loop {
            if let Some(err) = ctrl.failed.take() {
                return Err(err);
            }
            if ctrl.sealed_count == 0 && !ctrl.busy && !ctrl.pending {
                return Ok(());
            }
            ctrl = self.done_cv.wait(ctrl).unwrap();
        }
    }

    /// Ask the worker to exit (idempotent); wakes it if it is waiting.
    pub(crate) fn shutdown(&self) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.shutdown = true;
        self.work_cv.notify_all();
    }

    /// Worker side: block until work is signalled. Returns `false` when the
    /// scheduler is shutting down.
    pub(crate) fn next_work(&self) -> bool {
        let mut ctrl = self.ctrl.lock().unwrap();
        loop {
            if ctrl.shutdown {
                return false;
            }
            if ctrl.pending {
                ctrl.pending = false;
                ctrl.busy = true;
                return true;
            }
            ctrl = self.work_cv.wait(ctrl).unwrap();
        }
    }

    /// Worker side: report the outcome of one processing round.
    pub(crate) fn work_done(&self, result: Result<(), LsmError>) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.busy = false;
        if let Err(err) = result {
            ctrl.failed = Some(err);
        }
        self.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admit_blocks_until_flush_and_surfaces_failures() {
        let sched = Arc::new(Scheduler::new());
        sched.note_sealed();
        sched.note_sealed();
        let t = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.admit(2))
        };
        // Unblock the writer by "flushing" one sealed memtable.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.note_flushed();
        let stalled = t.join().unwrap().unwrap();
        assert!(stalled.is_some(), "the blocked admit must report its stall");

        sched.work_done(Err(LsmError::new("boom")));
        // status() surfaces the parked failure without consuming it.
        assert!(sched.status().failed.is_some());
        assert!(sched.admit(2).is_err(), "parked failure must surface");
        assert!(sched.status().failed.is_some(), "admit must not consume it");
        assert!(sched.drain().is_err(), "drain consumes the failure");
        assert!(sched.status().failed.is_none());
        // After drain consumed it, admit passes again (one slot free).
        sched.note_flushed();
        let stalled = sched.admit(2).unwrap();
        assert!(stalled.is_none(), "an unblocked admit reports no stall");
    }

    #[test]
    fn drain_waits_for_idle_worker() {
        let sched = Arc::new(Scheduler::new());
        sched.note_sealed();
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || {
                while sched.next_work() {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    sched.note_flushed();
                    sched.work_done(Ok(()));
                }
            })
        };
        sched.drain().unwrap();
        assert_eq!(sched.sealed_count(), 0);
        sched.shutdown();
        worker.join().unwrap();
    }
}
