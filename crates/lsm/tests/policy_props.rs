//! Property tests for the tiering merge policy.
//!
//! For arbitrary component-size sequences (newest first) the policy must:
//!
//! * only ever schedule a merge of a contiguous **newest-first prefix** of
//!   at least two components (that is what the flush/merge pipeline and the
//!   manifest swap assume);
//! * respect `max_components`: more components than the cap always schedules
//!   a merge;
//! * **converge** under repeated application (merge the chosen prefix into
//!   one component, ask again): the tree settles to at most `max_components`
//!   components in a bounded number of steps — no livelock where a merge
//!   output immediately re-triggers forever.

use lsm::{MergeDecision, TieringPolicy};
use proptest::prelude::*;

/// Apply one merge decision to a newest-first size list: the merged prefix
/// is replaced by a single component holding the sum (exactly what
/// `merge_components` produces, modulo reconciliation shrinking it).
fn apply(sizes: &[u64], indexes: &[usize]) -> Vec<u64> {
    let merged: u64 = indexes.iter().map(|&i| sizes[i]).sum();
    let mut next = vec![merged];
    next.extend_from_slice(&sizes[indexes.len()..]);
    next
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn scheduled_merges_are_newest_first_prefixes(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        ratio in 1.05f64..4.0,
        max in 2usize..8,
    ) {
        let policy = TieringPolicy { size_ratio: ratio, max_components: max };
        match policy.decide(&sizes) {
            MergeDecision::None => {}
            MergeDecision::Merge(indexes) => {
                prop_assert!(indexes.len() >= 2, "a merge needs at least two inputs");
                prop_assert!(indexes.len() <= sizes.len());
                let expected: Vec<usize> = (0..indexes.len()).collect();
                prop_assert_eq!(
                    indexes, expected,
                    "tiering must pick a contiguous newest-first prefix"
                );
            }
        }
    }

    #[test]
    fn component_cap_always_triggers_a_merge(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        max in 2usize..6,
    ) {
        // A huge ratio disables the size rule, isolating the count rule.
        let policy = TieringPolicy { size_ratio: 1e12, max_components: max };
        let decision = policy.decide(&sizes);
        if sizes.len() > max {
            prop_assert_ne!(decision, MergeDecision::None, "cap exceeded but no merge");
        } else {
            prop_assert_eq!(decision, MergeDecision::None);
        }
    }

    #[test]
    fn repeated_application_converges_without_livelock(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        ratio in 1.05f64..4.0,
        max in 2usize..8,
    ) {
        let policy = TieringPolicy { size_ratio: ratio, max_components: max };
        let mut current = sizes.clone();
        let mut steps = 0usize;
        loop {
            match policy.decide(&current) {
                MergeDecision::None => break,
                MergeDecision::Merge(indexes) => {
                    let next = apply(&current, &indexes);
                    prop_assert!(
                        next.len() < current.len(),
                        "every merge must shrink the tree (no livelock)"
                    );
                    current = next;
                    steps += 1;
                    prop_assert!(
                        steps <= sizes.len(),
                        "convergence must take at most one merge per initial component"
                    );
                }
            }
        }
        prop_assert!(
            current.len() <= max,
            "a settled tree respects max_components ({} > {max})",
            current.len()
        );
        // Convergence is stable: asking again schedules nothing.
        prop_assert_eq!(policy.decide(&current), MergeDecision::None);
    }

    #[test]
    fn flush_then_merge_cycle_stays_bounded(
        flushes in prop::collection::vec(1u64..200_000, 1..40),
        ratio in 1.05f64..2.0,
        max in 2usize..6,
    ) {
        // Simulate the real lifecycle: each flush prepends a new (newest)
        // component, then the policy is applied to quiescence — exactly what
        // the scheduler does after every flush. The tree must never grow
        // beyond max_components + 1 at decision time.
        let policy = TieringPolicy { size_ratio: ratio, max_components: max };
        let mut current: Vec<u64> = Vec::new();
        for flushed in flushes {
            current.insert(0, flushed);
            prop_assert!(current.len() <= max + 1, "tree grew unboundedly");
            while let MergeDecision::Merge(indexes) = policy.decide(&current) {
                current = apply(&current, &indexes);
            }
        }
    }
}
