//! Property tests for the compaction strategies.
//!
//! For arbitrary component-size sequences (newest first) every strategy
//! must:
//!
//! * only ever schedule merges of **contiguous** index ranges of at least
//!   two components (that is what the flush/merge pipeline and the manifest
//!   swap assume — components are age-ordered);
//! * emit `decide_jobs` rounds whose jobs are pairwise **disjoint** (the
//!   dataset runs them concurrently);
//! * **converge** under repeated application (merge the chosen range into
//!   one component, ask again): the tree settles in a bounded number of
//!   steps — no livelock where a merge output immediately re-triggers
//!   forever.
//!
//! The tiering policy additionally promises newest-first *prefix* merges
//! and the `max_components` cap.

use lsm::{
    CompactionStrategy, LazyLeveledPolicy, LeveledPolicy, MergeDecision, TieringPolicy,
};
use proptest::prelude::*;

/// Apply one merge decision to a newest-first size list: the merged
/// (contiguous) range is replaced by a single component holding the sum
/// (exactly what `merge_jobs` produces, modulo reconciliation shrinking it).
fn apply(sizes: &[u64], indexes: &[usize]) -> Vec<u64> {
    assert!(
        indexes.windows(2).all(|w| w[1] == w[0] + 1),
        "merge ranges must be contiguous"
    );
    let merged: u64 = indexes.iter().map(|&i| sizes[i]).sum();
    let mut next = sizes[..indexes[0]].to_vec();
    next.push(merged);
    next.extend_from_slice(&sizes[indexes[0] + indexes.len()..]);
    next
}

/// Drive a strategy to quiescence, asserting progress at every step.
fn converge(policy: &dyn CompactionStrategy, sizes: Vec<u64>) -> Vec<u64> {
    let mut current = sizes.clone();
    let mut steps = 0usize;
    while let MergeDecision::Merge(indexes) = policy.decide(&current) {
        assert!(indexes.len() >= 2, "a merge needs at least two inputs");
        let next = apply(&current, &indexes);
        assert!(
            next.len() < current.len(),
            "every merge must shrink the tree (no livelock)"
        );
        current = next;
        steps += 1;
        assert!(
            steps <= sizes.len(),
            "convergence must take at most one merge per initial component"
        );
    }
    current
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn scheduled_merges_are_newest_first_prefixes(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        ratio in 1.05f64..4.0,
        max in 2usize..8,
    ) {
        let policy = TieringPolicy { size_ratio: ratio, max_components: max };
        match policy.decide(&sizes) {
            MergeDecision::None => {}
            MergeDecision::Merge(indexes) => {
                prop_assert!(indexes.len() >= 2, "a merge needs at least two inputs");
                prop_assert!(indexes.len() <= sizes.len());
                let expected: Vec<usize> = (0..indexes.len()).collect();
                prop_assert_eq!(
                    indexes, expected,
                    "tiering must pick a contiguous newest-first prefix"
                );
            }
        }
    }

    #[test]
    fn component_cap_always_triggers_a_merge(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        max in 2usize..6,
    ) {
        // A huge ratio disables the size rule, isolating the count rule.
        let policy = TieringPolicy { size_ratio: 1e12, max_components: max };
        let decision = policy.decide(&sizes);
        if sizes.len() > max {
            prop_assert_ne!(decision, MergeDecision::None, "cap exceeded but no merge");
        } else {
            prop_assert_eq!(decision, MergeDecision::None);
        }
    }

    #[test]
    fn repeated_application_converges_without_livelock(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        ratio in 1.05f64..4.0,
        max in 2usize..8,
    ) {
        let policy = TieringPolicy { size_ratio: ratio, max_components: max };
        let mut current = sizes.clone();
        let mut steps = 0usize;
        loop {
            match policy.decide(&current) {
                MergeDecision::None => break,
                MergeDecision::Merge(indexes) => {
                    let next = apply(&current, &indexes);
                    prop_assert!(
                        next.len() < current.len(),
                        "every merge must shrink the tree (no livelock)"
                    );
                    current = next;
                    steps += 1;
                    prop_assert!(
                        steps <= sizes.len(),
                        "convergence must take at most one merge per initial component"
                    );
                }
            }
        }
        prop_assert!(
            current.len() <= max,
            "a settled tree respects max_components ({} > {max})",
            current.len()
        );
        // Convergence is stable: asking again schedules nothing.
        prop_assert_eq!(policy.decide(&current), MergeDecision::None);
    }

    #[test]
    fn flush_then_merge_cycle_stays_bounded(
        flushes in prop::collection::vec(1u64..200_000, 1..40),
        ratio in 1.05f64..2.0,
        max in 2usize..6,
    ) {
        // Simulate the real lifecycle: each flush prepends a new (newest)
        // component, then the policy is applied to quiescence — exactly what
        // the scheduler does after every flush. The tree must never grow
        // beyond max_components + 1 at decision time.
        let policy = TieringPolicy { size_ratio: ratio, max_components: max };
        let mut current: Vec<u64> = Vec::new();
        for flushed in flushes {
            current.insert(0, flushed);
            prop_assert!(current.len() <= max + 1, "tree grew unboundedly");
            while let MergeDecision::Merge(indexes) = policy.decide(&current) {
                current = apply(&current, &indexes);
            }
        }
    }

    #[test]
    fn leveled_merges_are_contiguous_and_converge(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        target in 1_000u64..1_000_000,
        l0 in 2usize..6,
        ratio in 0.3f64..0.9,
    ) {
        let policy = LeveledPolicy { target_size: target, l0_threshold: l0, ratio };
        if let MergeDecision::Merge(indexes) = policy.decide(&sizes) {
            prop_assert!(indexes.len() >= 2);
            prop_assert!(*indexes.last().unwrap() < sizes.len());
            prop_assert!(indexes.windows(2).all(|w| w[1] == w[0] + 1), "contiguous");
        }
        converge(&policy, sizes);
    }

    #[test]
    fn leveled_jobs_are_disjoint_contiguous_ranges(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        target in 1_000u64..1_000_000,
        l0 in 2usize..6,
        ratio in 0.3f64..0.9,
    ) {
        let policy = LeveledPolicy { target_size: target, l0_threshold: l0, ratio };
        let jobs = policy.decide_jobs(&sizes);
        let mut seen = std::collections::HashSet::new();
        for job in &jobs {
            prop_assert!(job.len() >= 2);
            prop_assert!(job.windows(2).all(|w| w[1] == w[0] + 1), "contiguous");
            prop_assert!(*job.last().unwrap() < sizes.len());
            for &i in job {
                prop_assert!(seen.insert(i), "jobs must be disjoint (index {i} repeated)");
            }
        }
    }

    #[test]
    fn lazy_leveled_merges_are_contiguous_and_converge(
        sizes in prop::collection::vec(0u64..4_000_000, 0..12),
        target in 1_000u64..1_000_000,
        l0 in 2usize..6,
        ratio in 0.3f64..0.9,
    ) {
        let policy = LazyLeveledPolicy { target_size: target, l0_threshold: l0, ratio };
        if let MergeDecision::Merge(indexes) = policy.decide(&sizes) {
            prop_assert!(indexes.len() >= 2);
            prop_assert!(*indexes.last().unwrap() < sizes.len());
            prop_assert!(indexes.windows(2).all(|w| w[1] == w[0] + 1), "contiguous");
        }
        let settled = converge(&policy, sizes);
        // A settled tree has fewer tiers than the threshold (the tier rule
        // would otherwise still fire), so at most `l0` components total.
        prop_assert!(settled.len() <= l0, "{} tiers settled over threshold {l0}", settled.len());
    }

    #[test]
    fn lazy_leveled_flush_cycle_stays_bounded(
        flushes in prop::collection::vec(1u64..200_000, 1..40),
        l0 in 2usize..6,
    ) {
        // Small target so the fold rule is reachable; the tree must stay
        // bounded by the tier threshold plus the level.
        let policy = LazyLeveledPolicy { target_size: 1, l0_threshold: l0, ratio: 0.5 };
        let mut current: Vec<u64> = Vec::new();
        for flushed in flushes {
            current.insert(0, flushed);
            prop_assert!(current.len() <= l0 + 2, "tree grew unboundedly");
            while let MergeDecision::Merge(indexes) = policy.decide(&current) {
                current = apply(&current, &indexes);
            }
        }
    }
}
