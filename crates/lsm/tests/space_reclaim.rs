//! Long-lived space behaviour: the page file must not grow monotonically.
//!
//! An update-heavy LSM workload continuously retires whole runs of pages
//! (every merge frees its inputs). With freed-slot reuse plus the
//! `reclaim_space` GC pass, the page file should track the high-water mark
//! of *live* data through repeated ingest → update → delete → merge → GC
//! cycles — under every compaction strategy — while snapshots taken mid-GC
//! keep reading the pre-GC component copies.

use docmodel::{doc, Value};
use lsm::{CompactionSpec, DatasetConfig, LsmDataset};
use storage::{ComponentReader, LayoutKind};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("lsm-space-reclaim-tests-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(i: i64, round: i64) -> Value {
    doc!({
        "id": i,
        "round": round,
        "payload": (format!("round {round} payload for record {i} xxxxxxxxxxxxxxxx")),
        "score": (i * 31 % 997)
    })
}

fn strategies() -> Vec<(&'static str, CompactionSpec)> {
    vec![
        ("tiered", CompactionSpec::tiered(1.2, 3)),
        ("leveled", CompactionSpec::leveled()),
        ("lazy-leveled", CompactionSpec::lazy_leveled()),
    ]
}

/// Ingest, then repeatedly overwrite and delete the same key space. With
/// merges retiring inputs and GC packing + truncating the file, allocated
/// space must stay within a small factor of live data instead of growing
/// with the number of rounds.
#[test]
fn update_heavy_lifecycle_keeps_space_bounded() {
    const KEYS: i64 = 300;
    const ROUNDS: i64 = 6;
    for (name, spec) in strategies() {
        let dir = temp_dir(&format!("bounded-{name}"));
        let config = DatasetConfig::new("space", LayoutKind::Amax)
            .with_memtable_budget(8 * 1024)
            .with_page_size(4 * 1024)
            .with_compaction(spec);
        let ds = LsmDataset::open(&dir, config).unwrap();

        let mut peak_after_gc = 0u64;
        let mut amp_per_round: Vec<f64> = Vec::new();
        for round in 0..ROUNDS {
            for i in 0..KEYS {
                ds.insert(record(i, round)).unwrap();
            }
            // Delete a rotating tenth of the key space.
            for i in (round * 30..round * 30 + 30).map(|i| i % KEYS) {
                ds.delete(Value::Int(i)).unwrap();
            }
            ds.flush().unwrap();
            ds.reclaim_space().unwrap();
            peak_after_gc = peak_after_gc.max(ds.cache().store().allocated_bytes());
            amp_per_round
                .push(ds.metrics().gauge("amp.space").expect("amp.space gauge"));
        }

        // Every round rewrites the same keys, so live data is constant and
        // the post-GC footprint must settle, not march upward with rounds.
        let allocated = ds.cache().store().allocated_bytes();
        assert!(ds.primary_stored_bytes() > 0, "{name}");
        assert!(
            allocated <= peak_after_gc,
            "{name}: the page file must stop growing once the workload is steady"
        );
        // With no snapshot pinning anything, GC packs completely: every
        // remaining slot belongs to a live component, so space amplification
        // is at its floor (page-granularity fragmentation only, not leaked
        // dead pages) and stays flat across rounds instead of climbing.
        let live_pages: u64 = ds
            .components()
            .iter()
            .map(|c| c.meta().pages.len() as u64)
            .sum();
        assert_eq!(ds.cache().store().page_count(), live_pages, "{name}: fully packed");
        assert_eq!(ds.cache().store().free_page_count(), 0, "{name}");
        let first = amp_per_round[0];
        let last = *amp_per_round.last().unwrap();
        assert!(
            last <= first * 1.5,
            "{name}: amp.space must not climb with churn rounds: {amp_per_round:?}"
        );

        // The steady-state answer is intact under every strategy.
        assert_eq!(ds.count().unwrap(), (KEYS - 30) as usize, "{name}");
        let survivor = ds
            .lookup(&Value::Int((ROUNDS * 30 + 1) % KEYS), None)
            .unwrap()
            .expect("undeleted key");
        assert_eq!(
            survivor.get_field("round"),
            Some(&Value::Int(ROUNDS - 1)),
            "{name}: the newest version wins"
        );
    }
}

/// A snapshot taken before (and held across) a GC pass keeps reading the
/// retired pre-move components; once it drops, a second pass reclaims the
/// pages it was pinning.
#[test]
fn snapshot_held_across_gc_reads_retired_pages() {
    let dir = temp_dir("snapshot-across-gc");
    let config = DatasetConfig::new("space", LayoutKind::Amax)
        .with_memtable_budget(8 * 1024)
        .with_page_size(4 * 1024)
        .with_compaction(CompactionSpec::tiered(1.2, 3));
    let ds = LsmDataset::open(&dir, config).unwrap();
    for round in 0..3 {
        for i in 0..200 {
            ds.insert(record(i, round)).unwrap();
        }
        ds.flush().unwrap();
    }
    // Merge down so retired inputs free-list a mid-file hole, then hole-punch
    // state for GC to chew on.
    ds.compact_fully().unwrap();

    let snapshot = ds.snapshot();
    let expected = snapshot.scan(None).unwrap();
    assert_eq!(expected.len(), 200);

    // More churn while the snapshot is live, then GC: the snapshot's
    // components are retired (their slots pinned), not destroyed.
    for i in 0..200 {
        ds.insert(record(i, 99)).unwrap();
    }
    ds.flush().unwrap();
    ds.compact_fully().unwrap();
    ds.reclaim_space().unwrap();

    // The held snapshot still reads its pre-GC view, byte for byte.
    assert_eq!(snapshot.scan(None).unwrap(), expected);
    // And the post-GC dataset serves the new state.
    let newest = ds.lookup(&Value::Int(5), None).unwrap().unwrap();
    assert_eq!(newest.get_field("round"), Some(&Value::Int(99)));

    // Dropping the snapshot unpins its pages; the next pass reclaims them.
    let pinned = ds.cache().store().page_count();
    drop(snapshot);
    ds.reclaim_space().unwrap();
    let after = ds.cache().store().page_count();
    assert!(
        after < pinned,
        "dropping the snapshot must let GC reclaim its pages ({pinned} -> {after})"
    );
    // Fully packed: every remaining slot is referenced by a live component.
    let live_pages: u64 = ds
        .components()
        .iter()
        .map(|c| c.meta().pages.len() as u64)
        .sum();
    assert_eq!(after, live_pages, "no dead slots survive GC");
    assert_eq!(ds.cache().store().free_page_count(), 0);
}
