//! Telemetry integration tests: lifecycle events and metrics counters
//! emitted by the dataset, backpressure stall accounting, and worker health
//! reporting around injected background failures.

use std::time::Duration;

use docmodel::{doc, Value};
use lsm::{CompactionSpec, CrashPoint, DatasetConfig, LsmDataset, WorkerState};
use storage::{ComponentReader, LayoutKind};
use telemetry::EventKind;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("lsm-telemetry-tests-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_record(i: i64) -> Value {
    doc!({
        "id": i,
        "user": {"name": (format!("user{}", i % 13)), "followers": (i % 997)},
        "text": (format!("record {i} body text with characters")),
        "timestamp": (1_000_000 + i)
    })
}

fn tiny_config(name: &str) -> DatasetConfig {
    DatasetConfig::new(name, LayoutKind::Amax)
        .with_memtable_budget(8 * 1024)
        .with_page_size(4 * 1024)
}

#[test]
fn flush_and_merge_emit_events_and_metrics() {
    let ds = LsmDataset::new(tiny_config("events"));
    for i in 0..120 {
        ds.insert(sample_record(i)).unwrap();
    }
    for i in [3i64, 7, 11] {
        ds.delete(Value::Int(i)).unwrap();
    }
    ds.flush().unwrap();
    assert!(ds.stats().flushes >= 2, "tiny budget must flush repeatedly");
    ds.compact_fully().unwrap();
    assert_eq!(ds.component_count(), 1);
    let _ = ds.snapshot();

    let metrics = ds.metrics();
    assert_eq!(metrics.counter("ingest.records"), 120);
    assert_eq!(metrics.counter("ingest.deletes"), 3);
    assert!(metrics.counter("ingest.bytes") > 0);
    assert!(metrics.counter("flush.count") >= 2);
    assert!(metrics.counter("flush.pages_out") > 0);
    assert_eq!(metrics.counter("flush.entries_in"), 123, "120 upserts + 3 anti-matter");
    assert!(metrics.counter("merge.count") >= 1);
    assert!(metrics.counter("merge.pages_in") > 0);
    assert!(metrics.counter("merge.pages_out") > 0);
    assert!(metrics.counter("snapshot.count") >= 1);

    // Histogram counts line up with the counters they time.
    let flush_hist = metrics.histogram("flush.duration_micros").unwrap();
    assert_eq!(flush_hist.count, metrics.counter("flush.count"));
    let merge_hist = metrics.histogram("merge.duration_micros").unwrap();
    assert_eq!(merge_hist.count, metrics.counter("merge.count"));

    // Sampled storage counters and current-state gauges are present.
    let io = ds.io_stats();
    assert_eq!(metrics.counter("storage.pages_written"), io.pages_written);
    assert_eq!(metrics.gauge("lsm.components"), Some(1.0));

    // The amplification gauges are exactly recomputable from the raw
    // counters in the same snapshot — consumers never need a second source.
    let write_amp = metrics.gauge("amp.write").expect("write amp present");
    let expected =
        metrics.counter("storage.bytes_written") as f64 / metrics.counter("ingest.bytes") as f64;
    assert!((write_amp - expected).abs() < 1e-9, "{write_amp} vs {expected}");
    assert!(write_amp > 0.0);
    assert!(metrics.gauge("amp.space").is_some());

    // The event ring holds paired begin/end lifecycle events.
    let events = ds.recent_events(256);
    let count_of = |label: &str| {
        events.iter().filter(|e| e.kind.label() == label).count()
    };
    assert_eq!(count_of("flush_begin"), count_of("flush_end"));
    assert_eq!(count_of("flush_end") as u64, metrics.counter("flush.count"));
    assert_eq!(count_of("merge_begin"), count_of("merge_end"));
    assert!(count_of("merge_end") >= 1);
    // Events arrive oldest-first with dense, increasing sequence numbers.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    // The merge-end payload names real input components and page counts.
    let merge_end = events
        .iter()
        .rev()
        .find_map(|e| match &e.kind {
            EventKind::MergeEnd { inputs, pages_in, pages_out, .. } => {
                Some((inputs.clone(), *pages_in, *pages_out))
            }
            _ => None,
        })
        .expect("a merge_end event");
    assert!(merge_end.0.len() >= 2, "merged at least two components");
    assert!(merge_end.1 > 0 && merge_end.2 > 0);

    // Both export formats carry the counters.
    let text = metrics.to_text();
    assert!(
        text.lines()
            .any(|l| l.starts_with("ingest.records") && l.ends_with("120")),
        "{text}"
    );
    let json = metrics.to_json();
    assert!(json.contains("\"ingest.records\": 120"), "{json}");
    assert!(json.contains("\"amp.write\""), "{json}");
}

#[test]
fn disabled_telemetry_records_nothing_but_dataset_works() {
    let ds = LsmDataset::new(tiny_config("disabled").with_telemetry(false));
    for i in 0..120 {
        ds.insert(sample_record(i)).unwrap();
    }
    ds.flush().unwrap();
    ds.compact_fully().unwrap();
    assert_eq!(ds.count().unwrap(), 120);

    assert!(!ds.telemetry().enabled());
    assert!(ds.recent_events(256).is_empty(), "no events when disabled");
    let metrics = ds.metrics();
    assert_eq!(metrics.counter("ingest.records"), 0);
    assert_eq!(metrics.counter("flush.count"), 0);
    // Current-state gauges are still sampled — they cost nothing per write.
    assert_eq!(metrics.gauge("lsm.components"), Some(1.0));
}

/// Backpressure: with a one-deep sealed queue and a background worker, a
/// fast writer must eventually block in `admit` while a flush is in flight,
/// and that stall is counted with its duration.
#[test]
fn backpressure_stalls_are_counted() {
    let config = DatasetConfig::new("stalls", LayoutKind::Vb)
        .with_memtable_budget(4 * 1024)
        .with_page_size(4 * 1024)
        .with_background(true)
        .with_max_sealed(1);
    let ds = LsmDataset::new(config);

    // Insert until a stall has been recorded (bounded so a regression fails
    // rather than hangs). Every seal beyond the first forces the writer to
    // wait for the in-flight flush with a queue bound of one.
    let mut i = 0i64;
    while ds.telemetry().stalls.get() == 0 {
        assert!(i < 200_000, "no backpressure stall after {i} inserts");
        ds.insert(sample_record(i)).unwrap();
        i += 1;
    }
    ds.flush().unwrap();

    let metrics = ds.metrics();
    assert!(metrics.counter("backpressure.stalls") >= 1);
    assert!(
        metrics.counter("backpressure.stall_micros") > 0,
        "a stall implies non-zero waiting time"
    );
    let health = ds.health();
    assert_eq!(health.stalls, metrics.counter("backpressure.stalls"));
    assert_eq!(health.stall_micros, metrics.counter("backpressure.stall_micros"));
    assert_eq!(ds.count().unwrap(), i as usize);
}

/// A background worker failure must be visible through `health()` (which
/// never consumes the parked error) before — and independently of — the
/// write path observing it.
#[test]
fn worker_error_shows_in_health_before_writes_observe_it() {
    let dir = temp_dir("worker-health");
    let config = tiny_config("health")
        .with_background(true)
        .with_max_sealed(4);
    let ds = LsmDataset::open(&dir, config).unwrap();
    ds.set_crash_point(CrashPoint::AfterFlushComponentWrite);

    // Healthy to start.
    let healthy = ds.health();
    assert_eq!(healthy.worker, WorkerState::Idle);
    assert!(healthy.last_error.is_none());

    // Enough inserts to seal a memtable; the background flush then trips the
    // crash point. The inserts themselves are acknowledged.
    for i in 0..120 {
        if ds.insert(sample_record(i)).is_err() {
            break; // the parked failure can surface here too — that's fine
        }
    }

    // Poll health (read-only) until the failure is parked.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let health = loop {
        let h = ds.health();
        if h.worker == WorkerState::Failed {
            break h;
        }
        assert!(std::time::Instant::now() < deadline, "worker never failed");
        std::thread::sleep(Duration::from_millis(2));
    };
    let message = health.last_error.expect("failed worker reports its error");
    assert!(message.contains("injected crash"), "{message}");

    // Health is non-consuming: a second read still shows the failure, and
    // the event ring recorded it too.
    assert_eq!(ds.health().worker, WorkerState::Failed);
    assert!(ds
        .recent_events(256)
        .iter()
        .any(|e| matches!(&e.kind, EventKind::WorkerError { message } if message.contains("injected crash"))));

    // Only now does a write observe (without consuming) the parked error...
    let err = ds.insert(sample_record(1_000)).expect_err("write must fail");
    assert!(err.message.contains("injected crash"), "{err}");
    assert_eq!(ds.health().worker, WorkerState::Failed, "still parked");
    // ...and an explicit flush consumes it for retry; health recovers.
    let err = ds.flush().expect_err("drain surfaces the parked failure");
    assert!(err.message.contains("injected crash"), "{err}");
    ds.flush().unwrap();
    let recovered = ds.health();
    assert_eq!(recovered.worker, WorkerState::Idle);
    // The consumed error stays visible via the event ring until it scrolls off.
    assert!(recovered.last_error.is_some(), "ring keeps the last error");
    ds.insert(sample_record(1_000)).unwrap();
}

/// Inline (non-background) datasets report their worker as such.
#[test]
fn inline_dataset_health_is_inline() {
    let ds = LsmDataset::new(tiny_config("inline"));
    let health = ds.health();
    assert_eq!(health.worker, WorkerState::Inline);
    assert!(health.last_error.is_none());
    assert_eq!(health.pending_maintenance, 0);
}

/// WAL lifecycle and manifest events flow from the persistence layer into
/// the dataset's ring via the telemetry sink.
#[test]
fn durable_datasets_emit_wal_and_manifest_events() {
    let dir = temp_dir("wal-events");
    let ds = LsmDataset::open(&dir, tiny_config("wal")).unwrap();
    for i in 0..120 {
        ds.insert(sample_record(i)).unwrap();
    }
    ds.flush().unwrap();

    let metrics = ds.metrics();
    assert!(metrics.counter("wal.appends") >= 120);
    assert!(metrics.histogram("wal.append_micros").unwrap().count >= 120);

    let events = ds.recent_events(256);
    assert!(
        events.iter().any(|e| e.kind.label() == "manifest_commit"),
        "flush commits a manifest version"
    );
}

/// §4.4's batched skip, observed end-to-end: during a reconciling scan over
/// an update-heavy dataset, entries shadowed by a newer component are
/// skipped at the column-cursor level — every column advances past the
/// record in one go — and never assembled into documents. The
/// `records_assembled` counter therefore equals the number of *live*
/// records, not the (much larger) number of stored entries.
#[test]
fn update_heavy_scan_skips_shadowed_entries_without_assembly() {
    // A compaction spec that never merges: every round's components survive,
    // so older versions of each key stay on disk and must be skipped.
    let ds = LsmDataset::new(
        tiny_config("lazy-skip").with_compaction(CompactionSpec::tiered(100.0, 100)),
    );
    for round in 0..3i64 {
        for i in 0..150 {
            let mut doc = sample_record(i);
            doc.set_field("timestamp", Value::Int(round));
            ds.insert(doc).unwrap();
        }
        ds.flush().unwrap();
    }
    let total_entries: usize = ds
        .components()
        .iter()
        .map(|c| c.meta().record_count)
        .sum();
    assert!(
        total_entries > 150,
        "older rounds must survive as shadowed entries ({total_entries})"
    );

    ds.cache().store().reset_stats();
    let docs = ds.snapshot().scan(None).unwrap();
    assert_eq!(docs.len(), 150);
    let assembled = ds.io_stats().records_assembled;
    assert_eq!(
        assembled, 150,
        "only the winning version of each key is assembled; the \
         {total_entries} stored entries include shadowed versions that are \
         batch-skipped"
    );
    assert_eq!(ds.metrics().counter("storage.records_assembled"), 150);
}
