//! Concurrency stress tests: N writer threads and M reader threads against
//! one dataset with background flush/merge workers.
//!
//! The invariants checked:
//!
//! * every acknowledged record (insert returned `Ok` before a snapshot was
//!   taken) is readable from that snapshot;
//! * snapshots are internally consistent (scan length equals COUNT(*), keys
//!   come back sorted and unique) and *stable* — re-reading a snapshot after
//!   more flushes/merges returns the same answer;
//! * the final state equals a single-threaded oracle run of the same
//!   operations (writers own disjoint key ranges, so any interleaving must
//!   converge to the same reconciled state);
//! * backpressure bounds the sealed-memtable queue instead of letting
//!   ingestion outrun the flush workers.

use std::sync::Mutex;

use docmodel::{doc, total_cmp, Value};
use lsm::{DatasetConfig, LsmDataset};
use storage::LayoutKind;

const WRITERS: usize = 4;
/// Unoptimized builds run a reduced workload so the tier-1 `cargo test`
/// stays fast; CI additionally runs this suite in `--release` at full scale.
#[cfg(debug_assertions)]
const RECORDS_PER_WRITER: i64 = 60;
#[cfg(not(debug_assertions))]
const RECORDS_PER_WRITER: i64 = 300;
#[cfg(debug_assertions)]
const READER_ROUNDS: usize = 5;
#[cfg(not(debug_assertions))]
const READER_ROUNDS: usize = 20;
/// Writers use disjoint key ranges: writer `w` owns `w*STRIDE ..`.
const STRIDE: i64 = 1_000_000;

fn bg_config(layout: LayoutKind) -> DatasetConfig {
    DatasetConfig::new("concurrency", layout)
        .with_memtable_budget(8 * 1024)
        .with_page_size(4 * 1024)
        .with_background(true)
        .with_max_sealed(2)
}

fn record(key: i64, body: &str) -> Value {
    doc!({
        "id": key,
        "body": (body.to_string()),
        "num": (key % 977),
        "nested": {"tag": (format!("t{}", key % 13))}
    })
}

/// The deterministic per-writer script: insert every key, update every third
/// key, delete every tenth. Returns the ops in program order.
enum Op {
    Insert(i64, String),
    Delete(i64),
}

fn writer_script(writer: usize) -> Vec<Op> {
    let base = writer as i64 * STRIDE;
    let mut ops = Vec::new();
    for i in 0..RECORDS_PER_WRITER {
        ops.push(Op::Insert(base + i, format!("v1 of {i}")));
    }
    for i in (0..RECORDS_PER_WRITER).step_by(3) {
        ops.push(Op::Insert(base + i, format!("v2 of {i}")));
    }
    for i in (0..RECORDS_PER_WRITER).step_by(10) {
        ops.push(Op::Delete(base + i));
    }
    ops
}

fn apply_script(ds: &LsmDataset, writer: usize) {
    for op in writer_script(writer) {
        match op {
            Op::Insert(key, body) => ds.insert(record(key, &body)).unwrap(),
            Op::Delete(key) => ds.delete(Value::Int(key)).unwrap(),
        }
    }
}

/// Single-threaded oracle of the final state for `WRITERS` writers.
fn oracle() -> LsmDataset {
    let ds = LsmDataset::new(
        DatasetConfig::new("oracle", LayoutKind::Amax)
            .with_memtable_budget(8 * 1024)
            .with_page_size(4 * 1024),
    );
    for w in 0..WRITERS {
        apply_script(&ds, w);
    }
    ds.flush().unwrap();
    ds
}

#[test]
fn concurrent_writers_converge_to_the_oracle_state() {
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let ds = LsmDataset::new(bg_config(layout));
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let ds = &ds;
                scope.spawn(move || apply_script(ds, w));
            }
        });
        ds.flush().unwrap();

        let expected = oracle().scan(None).unwrap();
        let got = ds.scan(None).unwrap();
        assert_eq!(got.len(), expected.len(), "{layout:?}");
        assert_eq!(got, expected, "{layout:?}: concurrent run must equal the oracle");
        assert!(
            ds.stats().flushes > 1,
            "{layout:?}: background flushes must have happened"
        );
    }
}

#[test]
fn acknowledged_records_are_visible_to_readers() {
    let ds = LsmDataset::new(bg_config(LayoutKind::Amax));
    // Keys are pushed here *after* their insert was acknowledged.
    let acked: Mutex<Vec<i64>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ds = &ds;
            let acked = &acked;
            scope.spawn(move || {
                let base = w as i64 * STRIDE;
                for i in 0..RECORDS_PER_WRITER {
                    let key = base + i;
                    ds.insert(record(key, "ack-test")).unwrap();
                    acked.lock().unwrap().push(key);
                }
            });
        }
        // Readers: everything acknowledged before the snapshot must be in it.
        for _ in 0..2 {
            let ds = &ds;
            let acked = &acked;
            scope.spawn(move || {
                for _ in 0..READER_ROUNDS {
                    let visible_before: Vec<i64> = acked.lock().unwrap().clone();
                    let snapshot = ds.snapshot();
                    for &key in &visible_before {
                        assert!(
                            snapshot.lookup(&Value::Int(key), None).unwrap().is_some(),
                            "acknowledged key {key} missing from snapshot"
                        );
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    ds.flush().unwrap();
    assert_eq!(ds.count().unwrap(), WRITERS * RECORDS_PER_WRITER as usize);
}

#[test]
fn snapshots_are_internally_consistent_and_stable_under_churn() {
    let ds = LsmDataset::new(bg_config(LayoutKind::Amax));
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ds = &ds;
            scope.spawn(move || apply_script(ds, w));
        }
        for _ in 0..2 {
            let ds = &ds;
            scope.spawn(move || {
                for _ in 0..READER_ROUNDS {
                    let snapshot = ds.snapshot();
                    let count = snapshot.count().unwrap();
                    let docs = snapshot.scan(None).unwrap();
                    // Scan and COUNT(*) agree on the same snapshot.
                    assert_eq!(docs.len(), count);
                    // Keys are sorted and unique (reconciliation worked).
                    for pair in docs.windows(2) {
                        let a = pair[0].get_field("id").unwrap();
                        let b = pair[1].get_field("id").unwrap();
                        assert_eq!(total_cmp(a, b), std::cmp::Ordering::Less);
                    }
                    // Stability: the same snapshot answers the same later,
                    // despite flushes/merges retiring components meanwhile.
                    assert_eq!(snapshot.count().unwrap(), count);
                    std::thread::yield_now();
                }
            });
        }
    });
    ds.flush().unwrap();
    let expected = oracle().scan(None).unwrap();
    assert_eq!(ds.scan(None).unwrap(), expected);
}

#[test]
fn a_snapshot_survives_full_compaction() {
    let n = RECORDS_PER_WRITER; // scale with the profile
    let ds = LsmDataset::new(bg_config(LayoutKind::Amax));
    for i in 0..n {
        ds.insert(record(i, "before")).unwrap();
    }
    ds.flush().unwrap();
    let snapshot = ds.snapshot();
    let before = snapshot.scan(None).unwrap();

    // Churn: more data, deletes, then compact everything to one component.
    for i in n..2 * n {
        ds.insert(record(i, "after")).unwrap();
    }
    for i in 0..n / 4 {
        ds.delete(Value::Int(i)).unwrap();
    }
    ds.compact_fully().unwrap();
    assert_eq!(ds.component_count(), 1);

    // The old snapshot still reads the retired components' pages.
    assert_eq!(snapshot.scan(None).unwrap(), before);
    assert_eq!(snapshot.count().unwrap(), n as usize);
    assert_eq!(ds.count().unwrap(), (2 * n - n / 4) as usize);
}

#[test]
fn backpressure_bounds_the_sealed_queue() {
    let max_sealed = 2;
    let ds = LsmDataset::new(
        bg_config(LayoutKind::Vb).with_max_sealed(max_sealed),
    );
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ds = &ds;
            scope.spawn(move || {
                let base = w as i64 * STRIDE;
                for i in 0..RECORDS_PER_WRITER {
                    ds.insert(record(base + i, "backpressure")).unwrap();
                }
            });
        }
        let ds = &ds;
        scope.spawn(move || {
            for _ in 0..READER_ROUNDS * 2 {
                // Each writer can overshoot the gate by at most one seal.
                assert!(
                    ds.sealed_count() <= max_sealed + WRITERS,
                    "sealed queue exceeded the backpressure bound"
                );
                std::thread::yield_now();
            }
        });
    });
    ds.flush().unwrap();
    assert_eq!(ds.count().unwrap(), WRITERS * RECORDS_PER_WRITER as usize);
    assert!(ds.stats().flushes > 1);
}

#[test]
fn durable_concurrent_ingest_recovers_after_restart() {
    let dir = std::env::temp_dir()
        .join(format!("lsm-concurrency-tests-{}", std::process::id()))
        .join("durable-restart");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let ds = LsmDataset::open(&dir, bg_config(LayoutKind::Amax)).unwrap();
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let ds = &ds;
                scope.spawn(move || apply_script(ds, w));
            }
        });
        ds.flush().unwrap();
    }
    let ds = LsmDataset::reopen(&dir).unwrap();
    let expected = oracle().scan(None).unwrap();
    assert_eq!(
        ds.scan(None).unwrap(),
        expected,
        "recovered state must equal the oracle"
    );
}
