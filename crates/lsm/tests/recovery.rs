//! Crash-recovery tests for durable datasets.
//!
//! Each test ingests into a directory-backed dataset, "kills" it at a chosen
//! point (by dropping it mid-protocol, with `CrashPoint` injections forcing
//! the interesting windows), reopens the directory, and asserts that exactly
//! the acknowledged inserts and deletes are visible — no lost records, no
//! resurrected deletes, no duplicates.
//!
//! The `crash_under_load_*` tests arm the same crash points while background
//! flush/merge workers and a writer thread are active, then reopen and
//! verify that exactly the acknowledged prefix survives.

use std::sync::Mutex;

use docmodel::{doc, Value};
use lsm::{CrashPoint, DatasetConfig, LsmDataset};
use storage::{ComponentReader, LayoutKind};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("lsm-recovery-tests-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small budgets so flushes and merges happen with little data.
fn tiny_config(layout: LayoutKind) -> DatasetConfig {
    DatasetConfig::new("recovery", layout)
        .with_memtable_budget(8 * 1024)
        .with_page_size(4 * 1024)
}

/// A big budget so nothing flushes until we say so.
fn unflushed_config(layout: LayoutKind) -> DatasetConfig {
    DatasetConfig::new("recovery", layout)
        .with_memtable_budget(usize::MAX)
        .with_page_size(4 * 1024)
}

fn sample_record(i: i64) -> Value {
    doc!({
        "id": i,
        "user": {"name": (format!("user{}", i % 13)), "followers": (i % 997)},
        "text": (format!("record {i} body text with characters")),
        "timestamp": (1_000_000 + i),
        "tags": [(format!("tag{}", i % 5))]
    })
}

/// The state every test drives the dataset into: keys 0..N inserted, the
/// even keys under 20 updated, keys 3/7/11 deleted.
const N: i64 = 120;

fn apply_workload(ds: &mut LsmDataset) {
    for i in 0..N {
        ds.insert(sample_record(i)).unwrap();
    }
    for i in (0..20).step_by(2) {
        let mut updated = sample_record(i);
        updated.set_field("text", Value::from("updated"));
        ds.insert(updated).unwrap();
    }
    for i in [3i64, 7, 11] {
        ds.delete(Value::Int(i)).unwrap();
    }
}

/// Assert the reopened dataset holds exactly the acknowledged state.
fn assert_workload_recovered(ds: &LsmDataset) {
    assert_eq!(ds.count().unwrap(), (N - 3) as usize);
    let docs = ds.scan(None).unwrap();
    assert_eq!(docs.len(), (N - 3) as usize);
    // Deletes stay deleted.
    for i in [3i64, 7, 11] {
        assert!(ds.lookup(&Value::Int(i), None).unwrap().is_none(), "key {i}");
    }
    // Updates stay updated; originals stay original.
    let updated = ds.lookup(&Value::Int(2), None).unwrap().unwrap();
    assert_eq!(updated.get_field("text"), Some(&Value::from("updated")));
    let original = ds.lookup(&Value::Int(1), None).unwrap().unwrap();
    assert_ne!(original.get_field("text"), Some(&Value::from("updated")));
    // Nested structure survives the WAL/component round trip.
    let nested = ds.lookup(&Value::Int(50), None).unwrap().unwrap();
    assert_eq!(
        nested.get_path_str("user.name"),
        Some(&Value::from("user11"))
    );
    assert_eq!(
        nested.get_field("tags").unwrap().as_array().unwrap().len(),
        1
    );
}

#[test]
fn kill_before_any_flush_recovers_from_wal_alone() {
    for layout in LayoutKind::ALL {
        let dir = temp_dir(&format!("before-flush-{}", layout.name()));
        {
            let mut ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
            apply_workload(&mut ds);
            assert_eq!(ds.component_count(), 0, "nothing may have flushed");
            assert!(ds.wal_bytes() > 0);
            assert_eq!(ds.manifest_version(), 0);
            // Dropped here without flush: the WAL is the only durable copy.
        }
        let ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
        assert_eq!(ds.component_count(), 0, "{layout:?}");
        assert_workload_recovered(&ds);
    }
}

#[test]
fn kill_after_component_write_before_manifest_commit() {
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let dir = temp_dir(&format!("pre-manifest-{}", layout.name()));
        {
            let mut ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
            apply_workload(&mut ds);
            ds.set_crash_point(CrashPoint::AfterFlushComponentWrite);
            let err = ds.flush().expect_err("injected crash must surface");
            assert!(err.message.contains("injected crash"), "{err}");
            // On disk: component pages written but unreferenced; no
            // manifest; the full WAL.
            assert_eq!(ds.manifest_version(), 0);
            assert!(ds.wal_bytes() > 0);
        }
        let ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
        assert_eq!(
            ds.manifest_version(),
            0,
            "{layout:?}: the aborted flush must not be visible"
        );
        assert_eq!(ds.component_count(), 0, "{layout:?}");
        assert_workload_recovered(&ds);

        // The recovered dataset keeps working: flush it for real this time.
        let ds = ds;
        ds.flush().unwrap();
        assert!(ds.manifest_version() > 0);
        assert_eq!(ds.wal_bytes(), 0);
        assert_workload_recovered(&ds);
    }
}

#[test]
fn kill_after_manifest_commit_before_wal_truncate() {
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let dir = temp_dir(&format!("pre-truncate-{}", layout.name()));
        {
            let mut ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
            apply_workload(&mut ds);
            ds.set_crash_point(CrashPoint::AfterFlushManifestCommit);
            let err = ds.flush().expect_err("injected crash must surface");
            assert!(err.message.contains("injected crash"), "{err}");
            // On disk: manifest committed AND the WAL still present — the
            // records exist twice.
            assert_eq!(ds.manifest_version(), 1);
            assert!(ds.wal_bytes() > 0);
        }
        let ds = LsmDataset::reopen(&dir).unwrap();
        assert_eq!(ds.component_count(), 1, "{layout:?}");
        // Replaying the WAL over the flushed component must reconcile, not
        // duplicate: count() deduplicates by key.
        assert_workload_recovered(&ds);
    }
}

#[test]
fn kill_during_merge_before_manifest_commit_keeps_inputs() {
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let dir = temp_dir(&format!("pre-merge-commit-{}", layout.name()));
        {
            let mut ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
            apply_workload(&mut ds);
            ds.flush().unwrap();
            // Second batch so a multi-component merge is possible.
            for i in N..N + 40 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.flush().unwrap();
            let components_before = ds.component_count();
            assert!(components_before >= 2, "{layout:?}");
            let version_before = ds.manifest_version();

            ds.set_crash_point(CrashPoint::BeforeMergeManifestCommit);
            let err = ds.compact_fully().expect_err("injected crash must surface");
            assert!(err.message.contains("injected crash"), "{err}");
            assert_eq!(ds.manifest_version(), version_before);
        }
        let ds = LsmDataset::reopen(&dir).unwrap();
        // The manifest still lists the pre-merge components, whose pages
        // were never freed; the merged orphan pages are invisible.
        assert!(ds.component_count() >= 2, "{layout:?}");
        assert_eq!(ds.count().unwrap(), (N - 3 + 40) as usize, "{layout:?}");
        for i in [3i64, 7, 11] {
            assert!(ds.lookup(&Value::Int(i), None).unwrap().is_none());
        }
        assert!(ds.lookup(&Value::Int(N + 39), None).unwrap().is_some());

        // And a rerun of the merge completes.
        let ds = ds;
        ds.compact_fully().unwrap();
        assert_eq!(ds.component_count(), 1, "{layout:?}");
        assert_eq!(ds.count().unwrap(), (N - 3 + 40) as usize);
    }
}

#[test]
fn flush_truncates_wal_and_restart_uses_components() {
    for layout in LayoutKind::ALL {
        let dir = temp_dir(&format!("flushed-{}", layout.name()));
        let schema_description;
        {
            let mut ds = LsmDataset::open(&dir, tiny_config(layout)).unwrap();
            apply_workload(&mut ds);
            ds.flush().unwrap();
            assert!(ds.stats().flushes > 1, "{layout:?}: tiny budget must flush repeatedly");
            assert_eq!(ds.wal_bytes(), 0, "{layout:?}: flush truncates the WAL");
            assert!(ds.manifest_version() >= 1);
            schema_description = ds.schema().describe();
        }
        let ds = LsmDataset::reopen(&dir).unwrap();
        assert!(ds.component_count() >= 1, "{layout:?}");
        assert_eq!(
            ds.schema().describe(),
            schema_description,
            "{layout:?}: the inferred schema must survive restarts"
        );
        assert_workload_recovered(&ds);
    }
}

#[test]
fn repeated_restarts_and_mixed_batches_converge() {
    let dir = temp_dir("repeated-restarts");
    // Session 1: a first batch, flushed.
    {
        let ds = LsmDataset::open(&dir, tiny_config(LayoutKind::Amax)).unwrap();
        for i in 0..60 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
    }
    // Session 2: updates and deletes, left unflushed in the WAL.
    {
        let ds = LsmDataset::reopen(&dir).unwrap();
        assert_eq!(ds.count().unwrap(), 60);
        for i in 0..10 {
            let mut updated = sample_record(i);
            updated.set_field("text", Value::from("second session"));
            ds.insert(updated).unwrap();
        }
        ds.delete(Value::Int(59)).unwrap();
        ds.sync().unwrap();
    }
    // Session 3: heterogeneous records widening the schema, then a flush.
    {
        let ds = LsmDataset::reopen(&dir).unwrap();
        assert_eq!(ds.count().unwrap(), 59);
        let doc = ds.lookup(&Value::Int(4), None).unwrap().unwrap();
        assert_eq!(doc.get_field("text"), Some(&Value::from("second session")));
        for i in 100..130 {
            ds.insert(doc!({"id": i, "brand_new_field": {"nested": (i * 2)}}))
                .unwrap();
        }
        ds.flush().unwrap();
    }
    // Session 4: everything visible, schema is the superset.
    let ds = LsmDataset::reopen(&dir).unwrap();
    assert_eq!(ds.count().unwrap(), 89);
    let wide = ds.lookup(&Value::Int(110), None).unwrap().unwrap();
    assert_eq!(
        wide.get_path_str("brand_new_field.nested"),
        Some(&Value::Int(220))
    );
    assert!(ds.schema().describe().contains("brand_new_field"));
    assert!(ds.lookup(&Value::Int(59), None).unwrap().is_none());
}

#[test]
fn secondary_index_is_rebuilt_on_recovery() {
    let dir = temp_dir("secondary-rebuild");
    let config = || {
        tiny_config(LayoutKind::Apax)
            .with_secondary_index(docmodel::Path::parse("timestamp"))
    };
    {
        let ds = LsmDataset::open(&dir, config()).unwrap();
        for i in 0..150 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.flush().unwrap();
        // A few unflushed updates so recovery covers WAL + components.
        for i in 0..5 {
            let mut updated = sample_record(i);
            updated.set_field("timestamp", Value::Int(5_000_000 + i));
            ds.insert(updated).unwrap();
        }
    }
    // reopen() restores the secondary index config from the manifest.
    let ds = LsmDataset::reopen(&dir).unwrap();
    let hits = ds
        .secondary_range(&Value::Int(1_000_100), &Value::Int(1_000_149), None)
        .unwrap();
    assert_eq!(hits.len(), 50);
    // The updated records moved out of the old timestamp range...
    let stale = ds
        .secondary_range(&Value::Int(1_000_000), &Value::Int(1_000_004), None)
        .unwrap();
    assert!(stale.is_empty(), "moved entries must not linger, got {stale:?}");
    // ...and into the new one.
    let moved = ds
        .secondary_range(&Value::Int(5_000_000), &Value::Int(5_000_004), None)
        .unwrap();
    assert_eq!(moved.len(), 5);
}

// ---------------------------------------------------------------------------
// Per-component statistics across restarts (the planner's zone maps).
// ---------------------------------------------------------------------------

#[test]
fn component_stats_survive_restart_and_planner_choices_are_identical() {
    use query::{AccessPathChoice, ExecMode, Expr, PlannerOptions, Query, QueryEngine};

    let dir = temp_dir("stats-roundtrip");
    let config = || {
        tiny_config(LayoutKind::Amax)
            .with_secondary_index(docmodel::Path::parse("timestamp"))
    };
    // A range that hits a strict subset of the workload's timestamps, so
    // both pruning and the estimate have something to decide.
    let filter = Expr::between("timestamp", 1_000_030i64, 1_000_059i64);
    let query = Query::count_star().with_filter(filter.clone());
    let engine = QueryEngine::new(ExecMode::Compiled);

    let (stats_before, pruned_before, explain_before, rows_before);
    {
        let mut ds = LsmDataset::open(&dir, config()).unwrap();
        apply_workload(&mut ds);
        ds.flush().unwrap();
        assert!(ds.stats().flushes > 1, "the tiny budget must flush repeatedly");
        assert!(ds.component_count() >= 1);

        let snapshot = ds.snapshot();
        stats_before = snapshot
            .components()
            .iter()
            .map(|c| {
                let stats = c.stats().expect("freshly written components carry stats");
                (c.meta().id, (**stats).clone())
            })
            .collect::<Vec<_>>();
        // Every component's stats must actually see the indexed column.
        for (id, stats) in &stats_before {
            assert!(stats.column("timestamp").is_some(), "component {id}");
            assert!(stats.live_records > 0, "component {id}");
        }
        pruned_before = query::physical::prunable_component_ids(&snapshot, &filter);
        explain_before = engine.explain(&ds, &query).unwrap();
        rows_before = engine.execute(&ds, &query).unwrap();
    }

    // Reopen: statistics come back from the manifest, and the planner makes
    // the exact same decisions — same access path, same estimates, same
    // prune set, same answer.
    let ds = LsmDataset::reopen(&dir).unwrap();
    let snapshot = ds.snapshot();
    let stats_after: Vec<_> = snapshot
        .components()
        .iter()
        .map(|c| {
            let stats = c.stats().expect("stats must survive the manifest round-trip");
            (c.meta().id, (**stats).clone())
        })
        .collect();
    assert_eq!(stats_before, stats_after, "per-component stats changed across restart");
    assert_eq!(
        query::physical::prunable_component_ids(&snapshot, &filter),
        pruned_before,
        "the zone maps must prune the same components after the restart"
    );
    assert_eq!(
        engine.explain(&ds, &query).unwrap(),
        explain_before,
        "the planner must make the same access-path choice (and estimates)"
    );
    assert_eq!(engine.execute(&ds, &query).unwrap(), rows_before);
    // And every forced path still agrees on the recovered dataset.
    for choice in [AccessPathChoice::ForceIndex, AccessPathChoice::ForceScan] {
        let forced = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(choice),
        );
        assert_eq!(forced.execute(&ds, &query).unwrap(), rows_before, "{choice:?}");
    }
}

#[test]
fn aborted_flush_between_component_write_and_manifest_commit_leaves_no_stale_stats() {
    use query::{ExecMode, Expr, Query, QueryEngine};

    let dir = temp_dir("stats-stale");
    {
        let mut ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Amax)).unwrap();
        apply_workload(&mut ds);
        // The crash fires after the component (and its stats) hit the page
        // file but before the manifest commit that would publish them.
        ds.set_crash_point(CrashPoint::AfterFlushComponentWrite);
        let err = ds.flush().expect_err("injected crash must surface");
        assert!(err.message.contains("injected crash"), "{err}");
    }
    let ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Amax)).unwrap();
    // The aborted flush is invisible: no component, hence no statistics for
    // the planner to consume — stale zone maps can never skip live data.
    assert_eq!(ds.component_count(), 0);
    let snapshot = ds.snapshot();
    assert!(snapshot.components().is_empty());
    let filter = Expr::between("timestamp", 1_000_000i64, 1_000_010i64);
    assert!(
        query::physical::prunable_component_ids(&snapshot, &filter).is_empty(),
        "nothing to prune on a component-less dataset"
    );
    // The WAL-recovered records answer the query exactly.
    let engine = QueryEngine::new(ExecMode::Compiled);
    let rows = engine
        .execute(&ds, &Query::count_star().with_filter(filter.clone()))
        .unwrap();
    let expected = (0..N).filter(|i| (0..=10).contains(i) && ![3, 7].contains(i)).count() as i64;
    assert_eq!(rows[0].agg(), &docmodel::Value::Int(expected));

    // A real flush then publishes fresh statistics and changes nothing.
    ds.flush().unwrap();
    assert!(ds.component_count() >= 1);
    let snapshot = ds.snapshot();
    for c in snapshot.components() {
        assert!(c.stats().is_some(), "a committed flush publishes stats");
    }
    assert_eq!(
        engine
            .execute(&ds, &Query::count_star().with_filter(filter))
            .unwrap()[0]
            .agg(),
        &docmodel::Value::Int(expected)
    );
    assert_workload_recovered(&ds);
}

#[test]
fn reopen_without_manifest_is_an_error_but_open_works() {
    let dir = temp_dir("no-manifest");
    assert!(LsmDataset::reopen(&dir).is_err(), "nothing there yet");
    {
        let ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Vb)).unwrap();
        ds.insert(sample_record(1)).unwrap();
        // No flush: still no manifest, only a WAL.
    }
    assert!(LsmDataset::reopen(&dir).is_err(), "reopen needs a manifest");
    let ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Vb)).unwrap();
    assert_eq!(ds.count().unwrap(), 1);
}

#[test]
fn torn_wal_tail_loses_only_the_unacknowledged_record() {
    let dir = temp_dir("torn-tail");
    {
        let ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Vb)).unwrap();
        for i in 0..20 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.sync().unwrap();
    }
    // Tear the last frame in half, as a crash mid-write would.
    let wal_path = dir.join("wal.log");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();

    let ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Vb)).unwrap();
    assert_eq!(ds.count().unwrap(), 19, "only the torn record may be lost");
    assert!(ds.lookup(&Value::Int(18), None).unwrap().is_some());
    assert!(ds.lookup(&Value::Int(19), None).unwrap().is_none());
}

/// Recovery tracing (telemetry): the `RecoveryReplay` event a reopened
/// dataset emits must match the ground truth of what was on disk — WAL
/// segments scanned, records replayed, whether a torn tail was truncated,
/// and components reloaded from the manifest.
#[test]
fn recovery_replay_event_matches_ground_truth() {
    use telemetry::EventKind;

    let dir = temp_dir("replay-event");
    let replay_of = |ds: &LsmDataset| {
        ds.recent_events(256)
            .into_iter()
            .find_map(|e| match e.kind {
                EventKind::RecoveryReplay { segments, records, torn_tail_healed, components } => {
                    Some((segments, records, torn_tail_healed, components))
                }
                _ => None,
            })
            .expect("every durable open emits a recovery summary")
    };

    // Kill before any flush: one WAL segment, all 20 records, no components.
    {
        let ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Vb)).unwrap();
        for i in 0..20 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.sync().unwrap();
    }
    {
        let ds = LsmDataset::open(&dir, unflushed_config(LayoutKind::Vb)).unwrap();
        assert_eq!(replay_of(&ds), (1, 20, false, 0));

        // Flush, then a short unflushed tail: the manifest now carries one
        // component and only the tail is replayed.
        ds.flush().unwrap();
        for i in 20..25 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.sync().unwrap();
    }
    {
        let ds = LsmDataset::reopen(&dir).unwrap();
        assert_eq!(replay_of(&ds), (1, 5, false, 1));
    }

    // Tear the last WAL frame in half, as a crash mid-append would: the
    // summary reports the healed tail and one fewer record. The WAL may
    // have rotated, so find the newest (active) segment file.
    let wal_path = {
        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let path = e.unwrap().path();
                let name = path.file_name()?.to_str()?;
                (name.starts_with("wal") && name.ends_with(".log")).then(|| path.clone())
            })
            .collect();
        segments.sort();
        segments.pop().expect("an active WAL segment exists")
    };
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();
    let ds = LsmDataset::reopen(&dir).unwrap();
    assert_eq!(replay_of(&ds), (1, 4, true, 1));
    assert_eq!(ds.count().unwrap(), 24, "only the torn record is lost");
}

// ---------------------------------------------------------------------------
// Orphaned-page reclamation at recovery.
// ---------------------------------------------------------------------------

/// Page slots neither referenced by a live component nor on the free list —
/// the leak the recovery sweep exists to close.
fn orphaned_pages(ds: &LsmDataset) -> u64 {
    let store = ds.cache().store();
    let live: u64 = ds
        .components()
        .iter()
        .map(|c| c.meta().pages.len() as u64)
        .sum();
    store.page_count() - store.free_page_count() - live
}

fn orphan_sweep_of(ds: &LsmDataset) -> Option<(u64, u64, u64)> {
    ds.recent_events(256).into_iter().find_map(|e| match e.kind {
        telemetry::EventKind::OrphanSweep { scanned, freed, truncated } => {
            Some((scanned, freed, truncated))
        }
        _ => None,
    })
}

#[test]
fn crash_after_component_write_orphans_are_swept_at_reopen() {
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let dir = temp_dir(&format!("orphan-flush-{}", layout.name()));
        {
            let mut ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
            apply_workload(&mut ds);
            ds.set_crash_point(CrashPoint::AfterFlushComponentWrite);
            let err = ds.flush().expect_err("injected crash must surface");
            assert!(err.message.contains("injected crash"), "{err}");
            // The aborted component's pages are in the file, referenced by
            // no manifest: orphans.
            assert!(orphaned_pages(&ds) > 0, "{layout:?}: the crash must orphan pages");
        }
        let ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
        assert_eq!(orphaned_pages(&ds), 0, "{layout:?}: reopen must sweep every orphan");
        let (scanned, freed, _) = orphan_sweep_of(&ds).expect("sweep event emitted");
        assert!(freed > 0 && scanned >= freed, "{layout:?}");
        // With no live components at all, the sweep truncates the entire
        // file rather than just free-listing it.
        assert_eq!(ds.cache().store().page_count(), 0, "{layout:?}");
        assert_workload_recovered(&ds);

        // The swept dataset keeps working, reusing the reclaimed space.
        ds.flush().unwrap();
        assert_eq!(orphaned_pages(&ds), 0, "{layout:?}");
        assert_workload_recovered(&ds);
    }
}

#[test]
fn crash_before_merge_commit_orphans_are_swept_at_reopen() {
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let dir = temp_dir(&format!("orphan-merge-{}", layout.name()));
        {
            let mut ds = LsmDataset::open(&dir, unflushed_config(layout)).unwrap();
            apply_workload(&mut ds);
            ds.flush().unwrap();
            for i in N..N + 40 {
                ds.insert(sample_record(i)).unwrap();
            }
            ds.flush().unwrap();
            assert!(ds.component_count() >= 2, "{layout:?}");
            ds.set_crash_point(CrashPoint::BeforeMergeManifestCommit);
            let err = ds.compact_fully().expect_err("injected crash must surface");
            assert!(err.message.contains("injected crash"), "{err}");
            // The merge output was written and synced but never committed.
            assert!(orphaned_pages(&ds) > 0, "{layout:?}: the aborted merge must orphan pages");
        }
        let ds = LsmDataset::reopen(&dir).unwrap();
        assert_eq!(orphaned_pages(&ds), 0, "{layout:?}: reopen must sweep every orphan");
        assert!(ds.component_count() >= 2, "{layout:?}: inputs stay live");
        assert_eq!(ds.count().unwrap(), (N - 3 + 40) as usize, "{layout:?}");

        // The re-run merge reuses the swept slots instead of growing the
        // file past its pre-crash size.
        let before = ds.cache().store().page_count();
        ds.compact_fully().unwrap();
        ds.reclaim_space().unwrap();
        assert!(
            ds.cache().store().page_count() <= before,
            "{layout:?}: merge + GC must not grow the file ({} -> {})",
            before,
            ds.cache().store().page_count()
        );
        assert_eq!(ds.count().unwrap(), (N - 3 + 40) as usize);
    }
}

#[test]
fn durable_and_in_memory_datasets_agree() {
    let dir = temp_dir("parity");
    let mut mem = LsmDataset::new(tiny_config(LayoutKind::Amax));
    let mut dur = LsmDataset::open(&dir, tiny_config(LayoutKind::Amax)).unwrap();
    for ds in [&mut mem, &mut dur] {
        apply_workload(ds);
        ds.flush().unwrap();
    }
    let mem_docs = mem.scan(None).unwrap();
    let dur_docs = dur.scan(None).unwrap();
    assert_eq!(mem_docs, dur_docs);
    drop(dur);
    let dur = LsmDataset::reopen(&dir).unwrap();
    assert_eq!(dur.scan(None).unwrap(), mem_docs);
}

// ---------------------------------------------------------------------------
// Crash points under concurrent load (background workers + writer thread).
// ---------------------------------------------------------------------------

/// Unoptimized builds ingest less so the tier-1 `cargo test` stays fast; CI
/// additionally runs this suite in `--release` at full scale.
#[cfg(debug_assertions)]
const LOAD: i64 = 400;
#[cfg(not(debug_assertions))]
const LOAD: i64 = 2_000;

/// Background config with a tiny budget so flushes and merges fire while the
/// writer is still running.
fn bg_config(layout: LayoutKind) -> DatasetConfig {
    tiny_config(layout)
        .with_background(true)
        .with_max_sealed(2)
}

/// Drive a writer thread (recording every acknowledged insert) and a reader
/// thread against a dataset whose durability layer has `point` armed. The
/// injected failure fires on the background worker; the writer observes it
/// through the scheduler on a later insert and stops. Returns the
/// acknowledged keys.
fn crash_under_load(dir: &std::path::Path, layout: LayoutKind, point: CrashPoint) -> Vec<i64> {
    let ds = LsmDataset::open(dir, bg_config(layout)).unwrap();
    ds.set_crash_point(point);
    let acked: Mutex<Vec<i64>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let writer = {
            let ds = &ds;
            let acked = &acked;
            scope.spawn(move || {
                for i in 0..LOAD {
                    match ds.insert(sample_record(i)) {
                        Ok(()) => acked.lock().unwrap().push(i),
                        // The parked background failure surfaced: stop, like
                        // a client whose writes start erroring out.
                        Err(err) => {
                            assert!(
                                err.message.contains("injected crash"),
                                "unexpected failure: {err}"
                            );
                            break;
                        }
                    }
                }
            })
        };
        // A concurrent reader keeps taking snapshots while the crash fires.
        {
            let ds = &ds;
            scope.spawn(move || {
                for _ in 0..10 {
                    let snapshot = ds.snapshot();
                    let count = snapshot.count().unwrap();
                    assert_eq!(snapshot.scan(None).unwrap().len(), count);
                    std::thread::yield_now();
                }
            });
        }
        writer.join().unwrap();
    });
    // The final drain may surface the parked failure — that is the "crash".
    let _ = ds.flush();
    drop(ds); // kill: the dataset is abandoned mid-protocol
    acked.into_inner().unwrap()
}

#[test]
fn crash_under_load_preserves_the_acknowledged_prefix() {
    for (name, point) in [
        ("flush-pre-manifest", CrashPoint::AfterFlushComponentWrite),
        ("flush-pre-truncate", CrashPoint::AfterFlushManifestCommit),
        ("merge-pre-commit", CrashPoint::BeforeMergeManifestCommit),
    ] {
        for layout in [LayoutKind::Vb, LayoutKind::Amax] {
            let dir = temp_dir(&format!("under-load-{name}-{}", layout.name()));
            let acked = crash_under_load(&dir, layout, point);
            assert!(!acked.is_empty(), "{name}/{layout:?}: some inserts must be acknowledged");

            let ds = LsmDataset::open(&dir, tiny_config(layout)).unwrap();
            // Exactly the acknowledged prefix survives: every acknowledged
            // insert is visible, and nothing beyond it.
            assert_eq!(
                ds.count().unwrap(),
                acked.len(),
                "{name}/{layout:?}: exactly the acknowledged records survive"
            );
            for &i in &acked {
                assert!(
                    ds.lookup(&Value::Int(i), None).unwrap().is_some(),
                    "{name}/{layout:?}: acknowledged key {i} lost"
                );
            }
            // And the recovered dataset keeps working.
            ds.insert(sample_record(1_000_000)).unwrap();
            ds.flush().unwrap();
            assert_eq!(ds.count().unwrap(), acked.len() + 1);
        }
    }
}

#[test]
fn background_flush_error_surfaces_on_explicit_flush() {
    let dir = temp_dir("bg-error-on-flush");
    let ds = LsmDataset::open(&dir, bg_config(LayoutKind::Amax)).unwrap();
    for i in 0..40 {
        ds.insert(sample_record(i)).unwrap();
    }
    ds.flush().unwrap();
    let version = ds.manifest_version();

    ds.set_crash_point(CrashPoint::AfterFlushComponentWrite);
    for i in 40..80 {
        ds.insert(sample_record(i)).unwrap();
    }
    let err = ds.flush().expect_err("the injected worker crash must surface");
    assert!(err.message.contains("injected crash"), "{err}");
    assert_eq!(ds.manifest_version(), version, "aborted flush must not commit");

    // The crash point is consumed: a retry drains cleanly and nothing is lost.
    ds.flush().unwrap();
    assert_eq!(ds.count().unwrap(), 80);
    assert!(ds.manifest_version() > version);
    drop(ds);
    let ds = LsmDataset::reopen(&dir).unwrap();
    assert_eq!(ds.count().unwrap(), 80);
}

#[test]
fn crash_under_load_with_deletes_keeps_them_deleted() {
    let dir = temp_dir("under-load-deletes");
    let acked_deletes: Mutex<Vec<i64>> = Mutex::new(Vec::new());
    {
        let ds = LsmDataset::open(&dir, bg_config(LayoutKind::Vb)).unwrap();
        for i in 0..LOAD / 2 {
            ds.insert(sample_record(i)).unwrap();
        }
        ds.set_crash_point(CrashPoint::AfterFlushManifestCommit);
        std::thread::scope(|scope| {
            let ds = &ds;
            let acked_deletes = &acked_deletes;
            scope.spawn(move || {
                for i in (0..LOAD / 2).step_by(7) {
                    match ds.delete(Value::Int(i)) {
                        Ok(()) => acked_deletes.lock().unwrap().push(i),
                        Err(_) => break,
                    }
                }
            });
            scope.spawn(move || {
                for i in LOAD / 2..LOAD {
                    if ds.insert(sample_record(i)).is_err() {
                        break;
                    }
                }
            });
        });
        let _ = ds.flush();
    }
    let ds = LsmDataset::open(&dir, tiny_config(LayoutKind::Vb)).unwrap();
    for i in acked_deletes.into_inner().unwrap() {
        assert!(
            ds.lookup(&Value::Int(i), None).unwrap().is_none(),
            "acknowledged delete of {i} resurrected"
        );
    }
}
