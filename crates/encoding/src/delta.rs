//! Delta binary packed encoding for 64-bit integers.
//!
//! Monotone or slowly-varying integer columns — timestamps, auto-increment
//! keys, sensor sequence numbers, call durations — dominate the numeric
//! datasets in the paper's evaluation (`cell`, `sensors`). Delta encoding
//! stores the first value, then zigzag-encoded deltas bit-packed per block,
//! which is why the columnar layouts beat page-level compression alone by
//! 5–8x on the `sensors` dataset (Figure 12a).
//!
//! The format is a simplified Parquet `DELTA_BINARY_PACKED`:
//!
//! ```text
//! varint  count
//! varint  zigzag(first_value)            (absent when count == 0)
//! blocks: varint zigzag(min_delta), u8 bit_width, bitpacked deltas
//! ```
//!
//! Each block covers up to [`BLOCK_SIZE`] deltas.

use crate::bitpack;
use crate::varint;
use crate::{DecodeError, DecodeResult};

/// Number of deltas per block. A power of two keeps the packing aligned and
/// lets short columns still benefit from per-block widths.
pub const BLOCK_SIZE: usize = 128;

/// Encode `values`, appending to `out`.
pub fn encode(values: &[i64], out: &mut Vec<u8>) {
    varint::write_u64(out, values.len() as u64);
    if values.is_empty() {
        return;
    }
    varint::write_i64(out, values[0]);
    let mut deltas = Vec::with_capacity(BLOCK_SIZE);
    let mut prev = values[0];
    let mut idx = 1usize;
    while idx < values.len() {
        deltas.clear();
        let end = (idx + BLOCK_SIZE).min(values.len());
        for &v in &values[idx..end] {
            deltas.push(v.wrapping_sub(prev));
            prev = v;
        }
        let min_delta = *deltas.iter().min().expect("non-empty block");
        varint::write_i64(out, min_delta);
        // Re-base deltas on the block minimum so they are non-negative.
        let rebased: Vec<u64> = deltas
            .iter()
            .map(|&d| d.wrapping_sub(min_delta) as u64)
            .collect();
        let max = rebased.iter().copied().max().unwrap_or(0);
        let width = if max == 0 { 0 } else { bitpack::bit_width(max) };
        out.push(width as u8);
        bitpack::pack(&rebased, width, out);
        idx = end;
    }
}

/// Decode a delta-packed column from `buf` starting at `*pos`.
pub fn decode(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<i64>> {
    let count = varint::read_u64(buf, pos)? as usize;
    // Clamp the speculative allocation: `count` comes from the (possibly
    // corrupt) byte stream, and truncation errors surface while decoding.
    let mut out = Vec::with_capacity(count.min(1 << 16));
    if count == 0 {
        return Ok(out);
    }
    let first = varint::read_i64(buf, pos)?;
    out.push(first);
    let mut prev = first;
    let mut scratch: Vec<u64> = Vec::with_capacity(BLOCK_SIZE);
    while out.len() < count {
        let block_len = BLOCK_SIZE.min(count - out.len());
        let min_delta = varint::read_i64(buf, pos)?;
        let width = *buf
            .get(*pos)
            .ok_or_else(|| DecodeError::new("truncated delta block header"))? as u32;
        *pos += 1;
        scratch.clear();
        bitpack::unpack_into(buf, pos, block_len, width, &mut scratch)?;
        for &rebased in &scratch {
            let delta = (rebased as i64).wrapping_add(min_delta);
            prev = prev.wrapping_add(delta);
            out.push(prev);
        }
    }
    Ok(out)
}

/// Convenience: encoded length of `values` without keeping the buffer.
pub fn encoded_len(values: &[i64]) -> usize {
    let mut buf = Vec::new();
    encode(values, &mut buf);
    buf.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[i64]) -> usize {
        let mut buf = Vec::new();
        encode(values, &mut buf);
        let mut pos = 0;
        let decoded = decode(&buf, &mut pos).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn roundtrip_basic_sequences() {
        roundtrip(&[]);
        roundtrip(&[42]);
        roundtrip(&[1, 2, 3, 4, 5]);
        roundtrip(&[-5, -4, 0, 100, -3]);
        roundtrip(&(0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn monotone_sequences_compress_tightly() {
        let timestamps: Vec<i64> = (0..10_000).map(|i| 1_600_000_000_000 + i * 1000).collect();
        let size = roundtrip(&timestamps);
        // Constant stride: each block needs only its header (~3 bytes).
        assert!(size < 500, "expected tight encoding, got {size} bytes");
        let plain = timestamps.len() * 8;
        assert!(size * 10 < plain);
    }

    #[test]
    fn random_like_values_still_roundtrip() {
        let values: Vec<i64> = (0..5000)
            .map(|i: i64| (i.wrapping_mul(6364136223846793005).rotate_left(17)) ^ (i << 3))
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn extreme_values_roundtrip() {
        roundtrip(&[i64::MIN, i64::MAX, 0, i64::MIN, i64::MAX]);
        roundtrip(&[i64::MAX; 300]);
        roundtrip(&[i64::MIN; 300]);
    }

    #[test]
    fn block_boundaries_are_exact() {
        for n in [BLOCK_SIZE - 1, BLOCK_SIZE, BLOCK_SIZE + 1, 2 * BLOCK_SIZE, 2 * BLOCK_SIZE + 7] {
            let values: Vec<i64> = (0..n as i64).map(|i| i * 3 - 50).collect();
            roundtrip(&values);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let values: Vec<i64> = (0..500).collect();
        let mut buf = Vec::new();
        encode(&values, &mut buf);
        buf.truncate(buf.len() / 2);
        let mut pos = 0;
        assert!(decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn encoded_len_matches_encode() {
        let values: Vec<i64> = (0..321).map(|i| i * i).collect();
        let mut buf = Vec::new();
        encode(&values, &mut buf);
        assert_eq!(encoded_len(&values), buf.len());
    }
}
