//! RLE / bit-packed hybrid encoding for small integers.
//!
//! This is the encoding Parquet (and therefore the paper) uses for definition
//! levels and booleans. The value stream is split into runs:
//!
//! * an *RLE run* `(count << 1) | 0`, followed by the repeated value packed
//!   into `ceil(width/8)` bytes — chosen when the same value repeats;
//! * a *bit-packed run* `(groups << 1) | 1`, followed by `groups * 8` values
//!   packed at `width` bits — chosen for irregular stretches.
//!
//! Definition-level streams of real documents are dominated by long runs
//! (every record has the field, or almost none do), which is exactly the case
//! this hybrid compresses to almost nothing.

use crate::bitpack;
use crate::varint;
use crate::{DecodeError, DecodeResult};

/// Minimum repeat length at which the encoder switches to an RLE run.
const MIN_RLE_RUN: usize = 8;

/// Encode `values` at the given bit `width`, appending to `out`.
///
/// The encoding is self-delimiting given the value count, which readers know
/// from the page header; the width is likewise stored by the caller.
pub fn encode(values: &[u64], width: u32, out: &mut Vec<u8>) {
    let mut i = 0usize;
    let mut pending: Vec<u64> = Vec::with_capacity(64);
    while i < values.len() {
        // Measure the run of identical values starting at i.
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        if run >= MIN_RLE_RUN {
            flush_bitpacked(&mut pending, width, out);
            varint::write_u64(out, (run as u64) << 1);
            write_fixed(v, width, out);
            i += run;
        } else {
            pending.extend(std::iter::repeat_n(v, run));
            i += run;
        }
    }
    flush_bitpacked(&mut pending, width, out);
}

fn flush_bitpacked(pending: &mut Vec<u64>, width: u32, out: &mut Vec<u8>) {
    if pending.is_empty() {
        return;
    }
    // Bit-packed runs cover a multiple of 8 values; pad with zeros. The
    // decoder truncates to the requested count, so padding is harmless.
    let groups = pending.len().div_ceil(8);
    varint::write_u64(out, ((groups as u64) << 1) | 1);
    varint::write_u64(out, pending.len() as u64);
    pending.resize(groups * 8, 0);
    bitpack::pack(pending, width, out);
    pending.clear();
}

fn write_fixed(value: u64, width: u32, out: &mut Vec<u8>) {
    let nbytes = (width as usize).div_ceil(8);
    out.extend_from_slice(&value.to_le_bytes()[..nbytes]);
}

fn read_fixed(buf: &[u8], pos: &mut usize, width: u32) -> DecodeResult<u64> {
    let nbytes = (width as usize).div_ceil(8);
    if *pos + nbytes > buf.len() {
        return Err(DecodeError::new("truncated RLE literal"));
    }
    let mut bytes = [0u8; 8];
    bytes[..nbytes].copy_from_slice(&buf[*pos..*pos + nbytes]);
    *pos += nbytes;
    Ok(u64::from_le_bytes(bytes))
}

/// Decode exactly `count` values of the given `width` from `buf`, advancing
/// `*pos`.
pub fn decode(buf: &[u8], pos: &mut usize, count: usize, width: u32) -> DecodeResult<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    decode_into(buf, pos, count, width, &mut out)?;
    Ok(out)
}

/// Like [`decode`] but appends into a caller-provided buffer.
pub fn decode_into(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    width: u32,
    out: &mut Vec<u64>,
) -> DecodeResult<()> {
    let target = out.len() + count;
    while out.len() < target {
        let header = varint::read_u64(buf, pos)?;
        if header & 1 == 0 {
            // RLE run.
            let run = (header >> 1) as usize;
            if run == 0 {
                return Err(DecodeError::new("zero-length RLE run"));
            }
            let value = read_fixed(buf, pos, width)?;
            if out.len() + run > target {
                return Err(DecodeError::new("RLE run exceeds requested count"));
            }
            out.extend(std::iter::repeat_n(value, run));
        } else {
            // Bit-packed run.
            let groups = (header >> 1) as usize;
            let packed = groups
                .checked_mul(8)
                .ok_or_else(|| DecodeError::new("bit-packed run size overflow"))?;
            let logical = varint::read_u64(buf, pos)? as usize;
            if logical > packed {
                return Err(DecodeError::new("bit-packed run length inconsistent"));
            }
            let mut scratch = Vec::new();
            bitpack::unpack_into(buf, pos, packed, width, &mut scratch)?;
            scratch.truncate(logical);
            if out.len() + scratch.len() > target {
                return Err(DecodeError::new("bit-packed run exceeds requested count"));
            }
            out.extend_from_slice(&scratch);
        }
    }
    Ok(())
}

/// An incremental reader over an RLE/bit-packed stream that yields values one
/// at a time without materializing the whole column — used by column
/// iterators that skip batches of records during LSM reconciliation.
#[derive(Debug)]
pub struct RleReader<'a> {
    buf: &'a [u8],
    pos: usize,
    width: u32,
    remaining: usize,
    /// Current run: either a repeated value or a buffer of unpacked literals.
    run: Run,
}

#[derive(Debug)]
enum Run {
    Empty,
    Repeat { value: u64, left: usize },
    Literals { values: Vec<u64>, next: usize },
}

impl<'a> RleReader<'a> {
    /// Create a reader that will yield exactly `count` values.
    pub fn new(buf: &'a [u8], width: u32, count: usize) -> Self {
        RleReader {
            buf,
            pos: 0,
            width,
            remaining: count,
            run: Run::Empty,
        }
    }

    /// Number of values not yet returned.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Byte offset just past the last consumed run (only meaningful once the
    /// reader is exhausted).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn refill(&mut self) -> DecodeResult<()> {
        let header = varint::read_u64(self.buf, &mut self.pos)?;
        if header & 1 == 0 {
            let run = (header >> 1) as usize;
            let value = read_fixed(self.buf, &mut self.pos, self.width)?;
            self.run = Run::Repeat { value, left: run };
        } else {
            let groups = (header >> 1) as usize;
            let packed = groups
                .checked_mul(8)
                .ok_or_else(|| DecodeError::new("bit-packed run size overflow"))?;
            let logical = varint::read_u64(self.buf, &mut self.pos)? as usize;
            let mut values = Vec::new();
            bitpack::unpack_into(self.buf, &mut self.pos, packed, self.width, &mut values)?;
            values.truncate(logical);
            self.run = Run::Literals { values, next: 0 };
        }
        Ok(())
    }

    /// Next value, or an error on truncation. Returns `None` once `count`
    /// values have been produced.
    pub fn next_value(&mut self) -> DecodeResult<Option<u64>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        loop {
            match &mut self.run {
                Run::Repeat { value, left } if *left > 0 => {
                    *left -= 1;
                    self.remaining -= 1;
                    return Ok(Some(*value));
                }
                Run::Literals { values, next } if *next < values.len() => {
                    let v = values[*next];
                    *next += 1;
                    self.remaining -= 1;
                    return Ok(Some(v));
                }
                _ => self.refill()?,
            }
        }
    }

    /// Skip `n` values without returning them (cheaper than `next_value` in a
    /// loop because repeated runs are skipped arithmetically).
    pub fn skip(&mut self, mut n: usize) -> DecodeResult<()> {
        n = n.min(self.remaining);
        while n > 0 {
            match &mut self.run {
                Run::Repeat { left, .. } if *left > 0 => {
                    let take = (*left).min(n);
                    *left -= take;
                    self.remaining -= take;
                    n -= take;
                }
                Run::Literals { values, next } if *next < values.len() => {
                    let take = (values.len() - *next).min(n);
                    *next += take;
                    self.remaining -= take;
                    n -= take;
                }
                _ => self.refill()?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64], width: u32) -> usize {
        let mut buf = Vec::new();
        encode(values, width, &mut buf);
        let mut pos = 0;
        let decoded = decode(&buf, &mut pos, values.len(), width).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn roundtrip_mixed_runs() {
        let mut values = vec![2u64; 100];
        values.extend([0, 1, 2, 3, 0, 1, 2, 3, 1, 0]);
        values.extend(vec![0u64; 50]);
        roundtrip(&values, 2);
    }

    #[test]
    fn long_runs_compress_well() {
        let values = vec![1u64; 10_000];
        let size = roundtrip(&values, 1);
        assert!(size < 16, "10k identical levels should take a few bytes, got {size}");
    }

    #[test]
    fn irregular_values_roundtrip() {
        let values: Vec<u64> = (0..1000).map(|i| (i * 7) % 5).collect();
        roundtrip(&values, 3);
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[], 1);
        roundtrip(&[3], 2);
        roundtrip(&[0], 1);
    }

    #[test]
    fn wide_values() {
        let values: Vec<u64> = (0..100).map(|i| i * 1_000_003).collect();
        roundtrip(&values, 27);
    }

    #[test]
    fn truncation_detected() {
        let values = vec![3u64; 100];
        let mut buf = Vec::new();
        encode(&values, 2, &mut buf);
        buf.truncate(1);
        let mut pos = 0;
        assert!(decode(&buf, &mut pos, 100, 2).is_err());
    }

    #[test]
    fn reader_yields_same_sequence_as_bulk_decode() {
        let values: Vec<u64> = (0..500)
            .map(|i| if i % 37 < 30 { 2 } else { (i % 4) as u64 })
            .collect();
        let mut buf = Vec::new();
        encode(&values, 2, &mut buf);
        let mut reader = RleReader::new(&buf, 2, values.len());
        let mut seen = Vec::new();
        while let Some(v) = reader.next_value().unwrap() {
            seen.push(v);
        }
        assert_eq!(seen, values);
        assert_eq!(reader.remaining(), 0);
        assert!(reader.next_value().unwrap().is_none());
    }

    #[test]
    fn reader_skip_is_equivalent_to_reading() {
        let values: Vec<u64> = (0..1000).map(|i| (i / 100) % 4).collect();
        let mut buf = Vec::new();
        encode(&values, 2, &mut buf);

        let mut reader = RleReader::new(&buf, 2, values.len());
        reader.skip(250).unwrap();
        assert_eq!(reader.next_value().unwrap(), Some(values[250]));
        reader.skip(500).unwrap();
        assert_eq!(reader.next_value().unwrap(), Some(values[751]));
        reader.skip(10_000).unwrap(); // over-skip clamps
        assert!(reader.next_value().unwrap().is_none());
    }
}
