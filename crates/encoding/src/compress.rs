//! Page-level block compression.
//!
//! AsterixDB (and the paper's experiments) apply Snappy page-level
//! compression to every on-disk page regardless of layout. Snappy itself is
//! not in the approved offline crate set, so this module implements a small
//! LZ77-family byte-oriented compressor with the same role and broadly the
//! same behaviour: cheap, byte-aligned, good at repeated substrings (field
//! names, JSON syntax, repeated values in row pages), useless against already
//! high-entropy data. The substitution is documented in DESIGN.md §2.
//!
//! Format: `varint uncompressed_len`, then a token stream. Each token byte
//! encodes a literal run (`0x00..=0x7F`: 1–128 literal bytes follow) or a
//! match (`0x80..=0xFF`: length 4–131, followed by a 2-byte little-endian
//! back-distance).

use crate::varint;
use crate::{DecodeError, DecodeResult};

/// Minimum match length worth emitting (shorter matches cost as much as the
/// literals they would replace).
const MIN_MATCH: usize = 4;
/// Maximum match length a single token can express.
const MAX_MATCH: usize = 131;
/// Maximum back-reference distance (64 KiB window).
const MAX_DISTANCE: usize = 65_535;
/// Size of the hash table used to find match candidates.
const HASH_BITS: u32 = 14;

/// Compress `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    varint::write_u64(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut literal_start = 0usize;

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..i + 4]);
        let candidate = table[h];
        table[h] = i;
        let is_match = candidate != usize::MAX
            && i - candidate <= MAX_DISTANCE
            && input[candidate..candidate + 4] == input[i..i + 4];
        if is_match {
            // Extend the match as far as it goes.
            let mut len = 4;
            while i + len < input.len()
                && len < MAX_MATCH
                && input[candidate + len] == input[i + len]
            {
                len += 1;
            }
            flush_literals(&input[literal_start..i], &mut out);
            let distance = (i - candidate) as u16;
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&distance.to_le_bytes());
            // Seed the hash table inside the match so later data can refer
            // back into it (coarsely, every 3rd byte, to bound CPU cost).
            let mut j = i + 1;
            while j + 4 <= i + len && j + 4 <= input.len() {
                table[hash4(&input[j..j + 4])] = j;
                j += 3;
            }
            i += len;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&input[literal_start..], &mut out);
    out
}

fn flush_literals(mut literals: &[u8], out: &mut Vec<u8>) {
    while !literals.is_empty() {
        let take = literals.len().min(128);
        out.push((take - 1) as u8);
        out.extend_from_slice(&literals[..take]);
        literals = &literals[take..];
    }
}

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(2654435761)) >> (32 - HASH_BITS)) as usize
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> DecodeResult<Vec<u8>> {
    let mut pos = 0usize;
    let expected = varint::read_u64(input, &mut pos)? as usize;
    // The declared length is untrusted input; clamp the speculative
    // allocation and let the final length check reject mismatches.
    let mut out = Vec::with_capacity(expected.min(1 << 20));
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        if token & 0x80 == 0 {
            let len = (token as usize) + 1;
            let end = pos + len;
            if end > input.len() {
                return Err(DecodeError::new("truncated literal run"));
            }
            out.extend_from_slice(&input[pos..end]);
            pos = end;
        } else {
            let len = ((token & 0x7F) as usize) + MIN_MATCH;
            if pos + 2 > input.len() {
                return Err(DecodeError::new("truncated match token"));
            }
            let distance = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
            pos += 2;
            if distance == 0 || distance > out.len() {
                return Err(DecodeError::new("invalid match distance"));
            }
            let start = out.len() - distance;
            // Byte-by-byte copy: matches may overlap their own output
            // (distance < len), which is how runs are expressed.
            for k in 0..len {
                let byte = out[start + k];
                out.push(byte);
            }
        }
    }
    if out.len() != expected {
        return Err(DecodeError::new(format!(
            "decompressed length mismatch: expected {expected}, got {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Compress only if it helps: returns `(compressed_flag, bytes)`. Pages whose
/// payload does not shrink are stored raw, as real page-compression layers do.
pub fn compress_if_smaller(input: &[u8]) -> (bool, Vec<u8>) {
    let compressed = compress(input);
    if compressed.len() < input.len() {
        (true, compressed)
    } else {
        (false, input.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let compressed = compress(data);
        let decompressed = decompress(&compressed).unwrap();
        assert_eq!(decompressed, data);
        compressed.len()
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repeated_json_compresses_well() {
        let doc = br#"{"sensor_id": 12, "battery": 88, "readings": [1,2,3]}"#;
        let mut data = Vec::new();
        for _ in 0..200 {
            data.extend_from_slice(doc);
        }
        let size = roundtrip(&data);
        assert!(size * 4 < data.len(), "expected >4x compression, got {size} vs {}", data.len());
    }

    #[test]
    fn long_runs_compress() {
        let data = vec![7u8; 100_000];
        let size = roundtrip(&data);
        assert!(size < 3_000);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes: should not compress but must round-trip.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn compress_if_smaller_skips_incompressible() {
        let mut state = 99u64;
        let random: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 24) as u8
            })
            .collect();
        let (flag, bytes) = compress_if_smaller(&random);
        if !flag {
            assert_eq!(bytes, random);
        }
        let text = vec![b'x'; 4096];
        let (flag, bytes) = compress_if_smaller(&text);
        assert!(flag);
        assert!(bytes.len() < text.len());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let compressed = compress(b"hello hello hello hello hello hello");
        // Truncate payload.
        let truncated = &compressed[..compressed.len() - 3];
        assert!(decompress(truncated).is_err());
        // Corrupt the declared length.
        let mut wrong = compressed.clone();
        wrong[0] = wrong[0].wrapping_add(1);
        assert!(decompress(&wrong).is_err());
        // Invalid distance: match token referring before the start.
        let mut bogus = Vec::new();
        varint::write_u64(&mut bogus, 10);
        bogus.push(0x80);
        bogus.extend_from_slice(&100u16.to_le_bytes());
        assert!(decompress(&bogus).is_err());
    }

    #[test]
    fn overlapping_matches_expand_runs() {
        let data = b"abababababababababababababab".to_vec();
        roundtrip(&data);
    }
}
