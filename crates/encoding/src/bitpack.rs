//! Fixed-width bit packing of small unsigned integers.
//!
//! Definition levels are tiny integers (bounded by the schema depth), and the
//! extended Dremel format stores one per atomic value, so packing them at
//! `ceil(log2(max_level + 1))` bits per value — instead of a byte or more —
//! is one of the main storage wins of the columnar layouts over row formats.

use crate::{DecodeError, DecodeResult};

/// Number of bits needed to represent `max_value` (at least 1 so that a
/// column whose only level is 0 still advances the reader).
pub fn bit_width(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

/// Pack `values` at `width` bits each (LSB-first within each byte), appending
/// to `out`. Values must fit in `width` bits; this is a programming error and
/// is checked with a debug assertion. A width of 0 is legal and writes no
/// bytes at all (used when every value in a block is zero).
pub fn pack(values: &[u64], width: u32, out: &mut Vec<u8>) {
    assert!(width <= 64, "bit width out of range");
    if width == 0 {
        debug_assert!(values.iter().all(|&v| v == 0), "non-zero value at width 0");
        return;
    }
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    out.reserve((values.len() * width as usize).div_ceil(8));
    for &v in values {
        debug_assert!(width == 64 || v < (1u64 << width), "value does not fit bit width");
        acc |= u128::from(v) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Unpack `count` values of `width` bits each from `buf`, starting at byte
/// offset `*pos`. Advances `*pos` past the consumed bytes.
pub fn unpack(buf: &[u8], pos: &mut usize, count: usize, width: u32) -> DecodeResult<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    unpack_into(buf, pos, count, width, &mut out)?;
    Ok(out)
}

/// Like [`unpack`] but appends into a caller-provided vector (used by readers
/// that reuse scratch buffers across pages).
pub fn unpack_into(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    width: u32,
    out: &mut Vec<u64>,
) -> DecodeResult<()> {
    if width > 64 {
        return Err(DecodeError::new("bit width out of range"));
    }
    if width == 0 {
        out.extend(std::iter::repeat_n(0u64, count));
        return Ok(());
    }
    let total_bits = count
        .checked_mul(width as usize)
        .ok_or_else(|| DecodeError::new("bitpack length overflow"))?;
    let nbytes = total_bits.div_ceil(8);
    let end = *pos + nbytes;
    if end > buf.len() {
        return Err(DecodeError::new("truncated bit-packed run"));
    }
    let data = &buf[*pos..end];
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    let mut byte_idx = 0usize;
    out.reserve(count);
    for _ in 0..count {
        while acc_bits < width {
            let byte = u128::from(data[byte_idx]);
            byte_idx += 1;
            acc |= byte << acc_bits;
            acc_bits += 8;
        }
        out.push((acc & u128::from(mask(width))) as u64);
        acc >>= width;
        acc_bits -= width;
    }
    *pos = end;
    Ok(())
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64], width: u32) {
        let mut buf = Vec::new();
        pack(values, width, &mut buf);
        let mut pos = 0;
        let decoded = unpack(&buf, &mut pos, values.len(), width).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn bit_width_of_common_maxima() {
        assert_eq!(bit_width(0), 1);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(2), 2);
        assert_eq!(bit_width(3), 2);
        assert_eq!(bit_width(4), 3);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
        assert_eq!(bit_width(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_small_widths() {
        roundtrip(&[0, 1, 1, 0, 1, 0, 0, 1, 1], 1);
        roundtrip(&[0, 1, 2, 3, 3, 2, 1, 0, 2], 2);
        roundtrip(&[5, 0, 7, 3, 6, 1, 2, 4], 3);
        roundtrip(&(0..100).map(|i| i % 13).collect::<Vec<_>>(), 4);
    }

    #[test]
    fn roundtrip_wide_and_awkward_widths() {
        roundtrip(&[1000, 0, 12345, 999], 14);
        roundtrip(&[u32::MAX as u64, 0, 17], 32);
        roundtrip(&[(1u64 << 57) - 1, 3, 1 << 40], 57);
        roundtrip(&[u64::MAX, 0, 42, u64::MAX - 1], 64);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        roundtrip(&[], 5);
    }

    #[test]
    fn packed_size_matches_expectation() {
        let values = vec![1u64; 16];
        let mut buf = Vec::new();
        pack(&values, 3, &mut buf);
        assert_eq!(buf.len(), 6); // 48 bits = 6 bytes
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let mut buf = Vec::new();
        pack(&[7; 100], 3, &mut buf);
        buf.truncate(buf.len() / 2);
        let mut pos = 0;
        assert!(unpack(&buf, &mut pos, 100, 3).is_err());
    }

    #[test]
    fn invalid_width_is_an_error() {
        let buf = vec![0u8; 8];
        let mut pos = 0;
        assert!(unpack(&buf, &mut pos, 4, 65).is_err());
    }

    #[test]
    fn zero_width_encodes_nothing_and_decodes_zeros() {
        let mut buf = Vec::new();
        pack(&[0, 0, 0, 0], 0, &mut buf);
        assert!(buf.is_empty());
        let mut pos = 0;
        assert_eq!(unpack(&buf, &mut pos, 4, 0).unwrap(), vec![0, 0, 0, 0]);
        assert_eq!(pos, 0);
    }

    #[test]
    fn consecutive_runs_share_a_buffer() {
        let mut buf = Vec::new();
        pack(&[1, 2, 3], 2, &mut buf);
        let first_len = buf.len();
        pack(&[9, 8, 7, 6], 4, &mut buf);
        let mut pos = 0;
        assert_eq!(unpack(&buf, &mut pos, 3, 2).unwrap(), vec![1, 2, 3]);
        assert_eq!(pos, first_len);
        assert_eq!(unpack(&buf, &mut pos, 4, 4).unwrap(), vec![9, 8, 7, 6]);
    }
}
