//! CRC-32 (IEEE 802.3 polynomial), used to checksum durable structures: WAL
//! frames, manifest bodies, and file-backed page headers. A torn or bit-rotted
//! write must be *detected* (and treated as the end of the log, or a corrupt
//! page) rather than silently decoded into garbage.

/// Compute the CRC-32 (IEEE, reflected, `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continue a CRC-32 computation (`crc` is the value returned so far).
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !crc;
    for &byte in data {
        let index = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[index];
    }
    !crc
}

fn table() -> &'static [u32; 256] {
    // Built on first use; the build is cheap and the table is shared.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"incremental crc computation must agree";
        let oneshot = crc32(data);
        let (a, b) = data.split_at(10);
        assert_eq!(crc32_update(crc32(a), b), oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"some page payload".to_vec();
        let original = crc32(&data);
        for bit in 0..data.len() * 8 {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), original, "flip of bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
