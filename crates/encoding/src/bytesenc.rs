//! Byte-array (string) encodings: delta-length and incremental delta strings.
//!
//! Textual columns dominate the `tweet` and `wos` datasets. Two encodings are
//! provided, mirroring Parquet:
//!
//! * [`delta_length`] — `DELTA_LENGTH_BYTE_ARRAY`: all lengths are
//!   delta-binary-packed up front, then the raw bytes of every value are
//!   concatenated. Good for arbitrary strings, enables vectorised scans.
//! * [`delta_strings`] — `DELTA_BYTE_ARRAY` ("delta strings" in the paper):
//!   every value stores the length of the prefix it shares with its
//!   predecessor plus the remaining suffix. Excellent for sorted or highly
//!   repetitive strings (hashtags, country names, console names).

use crate::delta;
use crate::varint;
use crate::{DecodeError, DecodeResult};

/// Delta-length byte array encoding.
pub mod delta_length {
    use super::*;

    /// Encode `values` (any byte strings), appending to `out`.
    pub fn encode<S: AsRef<[u8]>>(values: &[S], out: &mut Vec<u8>) {
        let lengths: Vec<i64> = values.iter().map(|v| v.as_ref().len() as i64).collect();
        delta::encode(&lengths, out);
        for v in values {
            out.extend_from_slice(v.as_ref());
        }
    }

    /// Decode the values encoded by [`encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<Vec<u8>>> {
        let lengths = delta::decode(buf, pos)?;
        let mut out = Vec::with_capacity(lengths.len());
        for len in lengths {
            let len = usize::try_from(len)
                .map_err(|_| DecodeError::new("negative string length"))?;
            let end = pos.checked_add(len).ok_or_else(|| DecodeError::new("length overflow"))?;
            if end > buf.len() {
                return Err(DecodeError::new("truncated byte-array payload"));
            }
            out.push(buf[*pos..end].to_vec());
            *pos = end;
        }
        Ok(out)
    }

    /// Decode into UTF-8 strings (lossy conversion never fails; the columnar
    /// layer only stores valid UTF-8 so the conversion is exact in practice).
    pub fn decode_strings(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<String>> {
        Ok(decode(buf, pos)?
            .into_iter()
            .map(|b| String::from_utf8_lossy(&b).into_owned())
            .collect())
    }
}

/// Incremental (prefix-sharing) delta string encoding.
pub mod delta_strings {
    use super::*;

    /// Encode `values`, appending to `out`.
    ///
    /// Layout: varint count, then per value `varint prefix_len`,
    /// `varint suffix_len`, suffix bytes.
    pub fn encode<S: AsRef<[u8]>>(values: &[S], out: &mut Vec<u8>) {
        varint::write_u64(out, values.len() as u64);
        let mut prev: &[u8] = &[];
        for v in values {
            let cur = v.as_ref();
            let prefix = common_prefix(prev, cur);
            varint::write_u64(out, prefix as u64);
            varint::write_u64(out, (cur.len() - prefix) as u64);
            out.extend_from_slice(&cur[prefix..]);
            prev = cur;
        }
    }

    /// Decode the values encoded by [`encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<Vec<u8>>> {
        let count = varint::read_u64(buf, pos)? as usize;
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(count.min(1 << 16));
        let mut prev: Vec<u8> = Vec::new();
        for _ in 0..count {
            let prefix = varint::read_u64(buf, pos)? as usize;
            let suffix_len = varint::read_u64(buf, pos)? as usize;
            if prefix > prev.len() {
                return Err(DecodeError::new("prefix longer than previous value"));
            }
            let end = pos.checked_add(suffix_len).ok_or_else(|| DecodeError::new("suffix length overflow"))?;
            if end > buf.len() {
                return Err(DecodeError::new("truncated delta-string suffix"));
            }
            let mut value = Vec::with_capacity(prefix + suffix_len);
            value.extend_from_slice(&prev[..prefix]);
            value.extend_from_slice(&buf[*pos..end]);
            *pos = end;
            prev = value.clone();
            out.push(value);
        }
        Ok(out)
    }

    /// Decode into UTF-8 strings.
    pub fn decode_strings(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<String>> {
        Ok(decode(buf, pos)?
            .into_iter()
            .map(|b| String::from_utf8_lossy(&b).into_owned())
            .collect())
    }

    fn common_prefix(a: &[u8], b: &[u8]) -> usize {
        a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
    }
}

/// Pick the smaller of the two byte-array encodings for the given values and
/// return `(encoding_tag, bytes)`. Column writers use this to adapt per
/// column chunk, mimicking Parquet writers' per-page encoding choice.
pub fn encode_adaptive<S: AsRef<[u8]>>(values: &[S]) -> (crate::Encoding, Vec<u8>) {
    let mut dl = Vec::new();
    delta_length::encode(values, &mut dl);
    let mut ds = Vec::new();
    delta_strings::encode(values, &mut ds);
    if ds.len() < dl.len() {
        (crate::Encoding::DeltaByteArray, ds)
    } else {
        (crate::Encoding::DeltaLengthByteArray, dl)
    }
}

/// Decode a byte-array column produced by [`encode_adaptive`].
pub fn decode_adaptive(
    encoding: crate::Encoding,
    buf: &[u8],
    pos: &mut usize,
) -> DecodeResult<Vec<Vec<u8>>> {
    match encoding {
        crate::Encoding::DeltaLengthByteArray => delta_length::decode(buf, pos),
        crate::Encoding::DeltaByteArray => delta_strings::decode(buf, pos),
        other => Err(DecodeError::new(format!(
            "not a byte-array encoding: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_strings() -> Vec<String> {
        vec![
            "NFL".to_string(),
            "FIFA".to_string(),
            "NBA".to_string(),
            "NFL".to_string(),
            "".to_string(),
            "a much longer tweet-like string with spaces".to_string(),
            "a much longer tweet-like string with hashtags #jobs".to_string(),
        ]
    }

    #[test]
    fn delta_length_roundtrip() {
        let values = sample_strings();
        let mut buf = Vec::new();
        delta_length::encode(&values, &mut buf);
        let mut pos = 0;
        let decoded = delta_length::decode_strings(&buf, &mut pos).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn delta_strings_roundtrip() {
        let values = sample_strings();
        let mut buf = Vec::new();
        delta_strings::encode(&values, &mut buf);
        let mut pos = 0;
        let decoded = delta_strings::decode_strings(&buf, &mut pos).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<String> = Vec::new();
        let mut buf = Vec::new();
        delta_length::encode(&empty, &mut buf);
        let mut pos = 0;
        assert!(delta_length::decode(&buf, &mut pos).unwrap().is_empty());

        let mut buf = Vec::new();
        delta_strings::encode(&empty, &mut buf);
        let mut pos = 0;
        assert!(delta_strings::decode(&buf, &mut pos).unwrap().is_empty());
    }

    #[test]
    fn prefix_sharing_beats_plain_for_sorted_keys() {
        let values: Vec<String> = (0..1000).map(|i| format!("user_prefix_{i:08}")).collect();
        let mut sorted = values.clone();
        sorted.sort();
        let mut ds = Vec::new();
        delta_strings::encode(&sorted, &mut ds);
        let mut dl = Vec::new();
        delta_length::encode(&sorted, &mut dl);
        assert!(ds.len() < dl.len(), "delta strings should win on sorted data");
    }

    #[test]
    fn adaptive_choice_roundtrips_both_ways() {
        // Repetitive data -> delta strings; random-ish data -> delta length.
        let repetitive: Vec<String> = (0..200).map(|i| format!("hashtag_jobs_{}", i % 3)).collect();
        let varied: Vec<String> = (0..200)
            .map(|i| format!("{}", (i * 2654435761u64) % 100000))
            .collect();
        for values in [repetitive, varied] {
            let (enc, buf) = encode_adaptive(&values);
            let mut pos = 0;
            let decoded = decode_adaptive(enc, &buf, &mut pos).unwrap();
            let decoded: Vec<String> = decoded
                .into_iter()
                .map(|b| String::from_utf8(b).unwrap())
                .collect();
            assert_eq!(decoded, values);
        }
    }

    #[test]
    fn adaptive_rejects_non_string_encoding() {
        let mut pos = 0;
        assert!(decode_adaptive(crate::Encoding::Plain, &[], &mut pos).is_err());
    }

    #[test]
    fn binary_safe() {
        let values: Vec<Vec<u8>> = vec![vec![0, 255, 1, 2], vec![], vec![0xC0, 0xFF, 0xEE]];
        let mut buf = Vec::new();
        delta_length::encode(&values, &mut buf);
        let mut pos = 0;
        assert_eq!(delta_length::decode(&buf, &mut pos).unwrap(), values);

        let mut buf = Vec::new();
        delta_strings::encode(&values, &mut buf);
        let mut pos = 0;
        assert_eq!(delta_strings::decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn truncation_is_detected() {
        let values = sample_strings();
        let mut buf = Vec::new();
        delta_strings::encode(&values, &mut buf);
        buf.truncate(buf.len() - 4);
        let mut pos = 0;
        assert!(delta_strings::decode(&buf, &mut pos).is_err());
    }
}
