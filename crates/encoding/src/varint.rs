//! Unsigned LEB128 varints and the zigzag transform.
//!
//! Varints are the low-level primitive shared by the RLE hybrid, the delta
//! encoders, the vector-based row format and the page headers: most of the
//! integers we persist (lengths, counts, levels, deltas) are small, so a
//! variable-length representation saves a large fraction of the bytes.

use crate::{DecodeError, DecodeResult};

/// Append `value` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `value` as a zigzag-encoded signed varint.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Read an unsigned LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past it.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> DecodeResult<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| DecodeError::new("truncated varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::new("varint overflows u64"));
        }
        result |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

/// Read a zigzag-encoded signed varint.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> DecodeResult<i64> {
    Ok(zigzag_decode(read_u64(buf, pos)?))
}

/// Map a signed integer onto an unsigned one so that values of small
/// magnitude (positive *or* negative) get small encodings.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`write_u64`] would use for `value`.
pub fn encoded_len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unsigned_edge_cases() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), encoded_len_u64(v));
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn roundtrip_signed_edge_cases() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789, -987654321] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in [-5i64, -1, 0, 1, 5, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1_000_000);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
        let mut pos = 0;
        assert!(read_u64(&[], &mut pos).is_err());
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn sequences_decode_in_order() {
        let mut buf = Vec::new();
        for v in 0..200u64 {
            write_u64(&mut buf, v * 31);
        }
        let mut pos = 0;
        for v in 0..200u64 {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v * 31);
        }
        assert_eq!(pos, buf.len());
    }
}
