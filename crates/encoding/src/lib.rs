//! # encoding — columnar value encodings and page compression
//!
//! The extended-Dremel columnar format encodes every column (its definition
//! levels and its values) before writing it into APAX minipages or AMAX
//! megapages. The paper adopts Apache Parquet's encoding toolbox — except
//! dictionary encoding, which it explicitly leaves for future work — and
//! additionally applies page-level compression (Snappy in the paper).
//!
//! This crate provides that toolbox:
//!
//! * [`varint`] — unsigned LEB128 varints and zigzag transforms, the building
//!   block of several encodings and of the row formats in `storage`;
//! * [`bitpack`] — fixed-width bit-packing of small unsigned integers
//!   (definition levels, booleans, dictionary-free enums);
//! * [`rle`] — the Parquet RLE / bit-packed *hybrid* used for definition
//!   levels, where long runs of the same level (all values present, or all
//!   missing) collapse to a few bytes;
//! * [`delta`] — delta binary packing for integer columns (timestamps,
//!   counters, monotone keys);
//! * [`bytesenc`] — delta-length byte arrays and incremental (prefix-sharing)
//!   delta strings for textual columns;
//! * [`plain`] — plain little-endian encodings for every scalar type;
//! * [`compress`] — an LZ-style block compressor standing in for Snappy
//!   page-level compression (see DESIGN.md §2 for the substitution note);
//! * [`crc`] — CRC-32 checksums guarding the durable structures (WAL frames,
//!   manifests and file-backed page headers) of the `persist` subsystem.
//!
//! Every encoder writes into a caller-supplied `Vec<u8>` so the columnar
//! writers can reuse temporary buffers across pages, and every decoder reads
//! from a byte slice without copying the payload.

pub mod bitpack;
pub mod bytesenc;
pub mod compress;
pub mod crc;
pub mod delta;
pub mod plain;
pub mod rle;
pub mod varint;

use std::fmt;

/// Error returned by decoders when the byte stream is corrupt or truncated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Description of what went wrong.
    pub message: String,
}

impl DecodeError {
    /// Construct a new decode error.
    pub fn new(message: impl Into<String>) -> Self {
        DecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Result alias for decoders.
pub type DecodeResult<T> = Result<T, DecodeError>;

/// Identifies the encoding used for a column chunk. Persisted in page headers
/// so readers can pick the right decoder; mirrors Parquet's encoding enum
/// restricted to what the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Fixed-width little-endian values, or length-prefixed byte arrays.
    Plain,
    /// RLE / bit-packed hybrid (definition levels, booleans).
    RleBitPacked,
    /// Delta binary packed integers.
    DeltaBinaryPacked,
    /// Delta-length byte arrays (lengths delta packed, bytes concatenated).
    DeltaLengthByteArray,
    /// Incremental ("delta strings"): shared-prefix length + suffix.
    DeltaByteArray,
}

impl Encoding {
    /// Stable numeric tag used when persisting page headers.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::RleBitPacked => 1,
            Encoding::DeltaBinaryPacked => 2,
            Encoding::DeltaLengthByteArray => 3,
            Encoding::DeltaByteArray => 4,
        }
    }

    /// Inverse of [`Encoding::tag`].
    pub fn from_tag(tag: u8) -> DecodeResult<Encoding> {
        Ok(match tag {
            0 => Encoding::Plain,
            1 => Encoding::RleBitPacked,
            2 => Encoding::DeltaBinaryPacked,
            3 => Encoding::DeltaLengthByteArray,
            4 => Encoding::DeltaByteArray,
            other => return Err(DecodeError::new(format!("unknown encoding tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_tags_roundtrip() {
        for enc in [
            Encoding::Plain,
            Encoding::RleBitPacked,
            Encoding::DeltaBinaryPacked,
            Encoding::DeltaLengthByteArray,
            Encoding::DeltaByteArray,
        ] {
            assert_eq!(Encoding::from_tag(enc.tag()).unwrap(), enc);
        }
        assert!(Encoding::from_tag(200).is_err());
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::new("boom");
        assert!(e.to_string().contains("boom"));
    }
}
