//! Plain encodings: fixed-width little-endian scalars and length-prefixed
//! byte arrays.
//!
//! Plain encoding is the fallback when a fancier encoding would not pay off
//! (e.g. doubles, very short columns) and it is also what the row-major
//! formats use internally for scalar payloads.

use crate::varint;
use crate::{DecodeError, DecodeResult};

/// Append an `i64` little-endian.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Read an `i64` little-endian.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> DecodeResult<i64> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(DecodeError::new("truncated i64"));
    }
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(i64::from_le_bytes(bytes))
}

/// Append an `f64` little-endian.
pub fn write_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Read an `f64` little-endian.
pub fn read_f64(buf: &[u8], pos: &mut usize) -> DecodeResult<f64> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(DecodeError::new("truncated f64"));
    }
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(f64::from_le_bytes(bytes))
}

/// Append a `u32` little-endian (page headers, offsets).
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Read a `u32` little-endian.
pub fn read_u32(buf: &[u8], pos: &mut usize) -> DecodeResult<u32> {
    let end = *pos + 4;
    if end > buf.len() {
        return Err(DecodeError::new("truncated u32"));
    }
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(bytes))
}

/// Overwrite a previously written `u32` at `offset` (used by page builders
/// that reserve header slots and patch them after the payload is known).
pub fn patch_u32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

/// Append a length-prefixed byte slice.
pub fn write_bytes(out: &mut Vec<u8>, value: &[u8]) {
    varint::write_u64(out, value.len() as u64);
    out.extend_from_slice(value);
}

/// Read a length-prefixed byte slice (borrowed from the input).
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> DecodeResult<&'a [u8]> {
    let len = varint::read_u64(buf, pos)? as usize;
    let end = *pos + len;
    if end > buf.len() {
        return Err(DecodeError::new("truncated byte slice"));
    }
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Append a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, value: &str) {
    write_bytes(out, value.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str<'a>(buf: &'a [u8], pos: &mut usize) -> DecodeResult<&'a str> {
    let bytes = read_bytes(buf, pos)?;
    std::str::from_utf8(bytes).map_err(|_| DecodeError::new("invalid utf-8 string"))
}

/// Encode a slice of i64 plainly (8 bytes each) with a count prefix.
pub fn encode_i64_column(values: &[i64], out: &mut Vec<u8>) {
    varint::write_u64(out, values.len() as u64);
    for &v in values {
        write_i64(out, v);
    }
}

/// Decode a plain i64 column.
pub fn decode_i64_column(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<i64>> {
    let count = varint::read_u64(buf, pos)? as usize;
    if count.saturating_mul(8) > buf.len() - *pos {
        return Err(DecodeError::new("i64 column count exceeds buffer"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(read_i64(buf, pos)?);
    }
    Ok(out)
}

/// Encode a slice of f64 plainly with a count prefix.
pub fn encode_f64_column(values: &[f64], out: &mut Vec<u8>) {
    varint::write_u64(out, values.len() as u64);
    for &v in values {
        write_f64(out, v);
    }
}

/// Decode a plain f64 column.
pub fn decode_f64_column(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<f64>> {
    let count = varint::read_u64(buf, pos)? as usize;
    if count.saturating_mul(8) > buf.len() - *pos {
        return Err(DecodeError::new("f64 column count exceeds buffer"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(read_f64(buf, pos)?);
    }
    Ok(out)
}

/// Encode booleans as a bit vector with a count prefix.
pub fn encode_bool_column(values: &[bool], out: &mut Vec<u8>) {
    varint::write_u64(out, values.len() as u64);
    let mut byte = 0u8;
    for (i, &b) in values.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !values.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Decode a boolean bit-vector column.
pub fn decode_bool_column(buf: &[u8], pos: &mut usize) -> DecodeResult<Vec<bool>> {
    let count = varint::read_u64(buf, pos)? as usize;
    let nbytes = count.div_ceil(8);
    let end = *pos + nbytes;
    if end > buf.len() {
        return Err(DecodeError::new("truncated boolean column"));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let byte = buf[*pos + i / 8];
        out.push(byte & (1 << (i % 8)) != 0);
    }
    *pos = end;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut buf = Vec::new();
        write_i64(&mut buf, -123456789);
        write_f64(&mut buf, 2.5e-3);
        write_u32(&mut buf, 0xDEADBEEF);
        write_str(&mut buf, "héllo");
        write_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(read_i64(&buf, &mut pos).unwrap(), -123456789);
        assert_eq!(read_f64(&buf, &mut pos).unwrap(), 2.5e-3);
        assert_eq!(read_u32(&buf, &mut pos).unwrap(), 0xDEADBEEF);
        assert_eq!(read_str(&buf, &mut pos).unwrap(), "héllo");
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), &[1, 2, 3]);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_scalars_error() {
        let buf = vec![0u8; 3];
        let mut pos = 0;
        assert!(read_i64(&buf, &mut pos).is_err());
        let mut pos = 0;
        assert!(read_f64(&buf, &mut pos).is_err());
        let mut pos = 2;
        assert!(read_u32(&buf, &mut pos).is_err());
        let mut buf2 = Vec::new();
        write_bytes(&mut buf2, &[9; 10]);
        buf2.truncate(5);
        let mut pos = 0;
        assert!(read_bytes(&buf2, &mut pos).is_err());
    }

    #[test]
    fn patch_u32_overwrites_in_place() {
        let mut buf = vec![0u8; 8];
        patch_u32(&mut buf, 2, 77);
        let mut pos = 2;
        assert_eq!(read_u32(&buf, &mut pos).unwrap(), 77);
    }

    #[test]
    fn i64_and_f64_columns_roundtrip() {
        let ints: Vec<i64> = (-50..50).map(|i| i * 7).collect();
        let mut buf = Vec::new();
        encode_i64_column(&ints, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_i64_column(&buf, &mut pos).unwrap(), ints);

        let doubles: Vec<f64> = (0..100).map(|i| i as f64 * 0.25 - 7.5).collect();
        let mut buf = Vec::new();
        encode_f64_column(&doubles, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_f64_column(&buf, &mut pos).unwrap(), doubles);
    }

    #[test]
    fn bool_column_roundtrips_with_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let values: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut buf = Vec::new();
            encode_bool_column(&values, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_bool_column(&buf, &mut pos).unwrap(), values);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xFF, 0xFE]);
        let mut pos = 0;
        assert!(read_str(&buf, &mut pos).is_err());
    }
}
