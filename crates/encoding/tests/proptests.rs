//! Property-based round-trip tests for every encoder in the crate.

use encoding::{bitpack, bytesenc, compress, delta, plain, rle, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::read_u64(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_signed_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::read_i64(&buf, &mut pos).unwrap(), v);
    }

    #[test]
    fn bitpack_roundtrip(width in 1u32..=64, values in prop::collection::vec(any::<u64>(), 0..200)) {
        let masked: Vec<u64> = values
            .iter()
            .map(|v| if width == 64 { *v } else { v & ((1u64 << width) - 1) })
            .collect();
        let mut buf = Vec::new();
        bitpack::pack(&masked, width, &mut buf);
        let mut pos = 0;
        let decoded = bitpack::unpack(&buf, &mut pos, masked.len(), width).unwrap();
        prop_assert_eq!(decoded, masked);
    }

    #[test]
    fn rle_roundtrip(width in 1u32..=8, values in prop::collection::vec(0u64..200, 0..500)) {
        let masked: Vec<u64> = values.iter().map(|v| v & ((1u64 << width) - 1)).collect();
        let mut buf = Vec::new();
        rle::encode(&masked, width, &mut buf);
        let mut pos = 0;
        let decoded = rle::decode(&buf, &mut pos, masked.len(), width).unwrap();
        prop_assert_eq!(&decoded, &masked);

        // Incremental reader must agree with bulk decode.
        let mut reader = rle::RleReader::new(&buf, width, masked.len());
        let mut streamed = Vec::new();
        while let Some(v) = reader.next_value().unwrap() {
            streamed.push(v);
        }
        prop_assert_eq!(streamed, masked);
    }

    #[test]
    fn rle_skip_equals_read(values in prop::collection::vec(0u64..4, 1..300), split in 0usize..300) {
        let mut buf = Vec::new();
        rle::encode(&values, 2, &mut buf);
        let split = split.min(values.len());
        let mut reader = rle::RleReader::new(&buf, 2, values.len());
        reader.skip(split).unwrap();
        let mut rest = Vec::new();
        while let Some(v) = reader.next_value().unwrap() {
            rest.push(v);
        }
        prop_assert_eq!(rest, values[split..].to_vec());
    }

    #[test]
    fn delta_roundtrip(values in prop::collection::vec(any::<i64>(), 0..400)) {
        let mut buf = Vec::new();
        delta::encode(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(delta::decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn delta_length_bytes_roundtrip(values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..60)) {
        let mut buf = Vec::new();
        bytesenc::delta_length::encode(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(bytesenc::delta_length::decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn delta_strings_roundtrip(values in prop::collection::vec("[a-z#@ ]{0,32}", 0..60)) {
        let mut buf = Vec::new();
        bytesenc::delta_strings::encode(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(bytesenc::delta_strings::decode_strings(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn adaptive_bytes_roundtrip(values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..60)) {
        let (enc, buf) = bytesenc::encode_adaptive(&values);
        let mut pos = 0;
        prop_assert_eq!(bytesenc::decode_adaptive(enc, &buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn compression_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn compression_roundtrip_repetitive(unit in prop::collection::vec(any::<u8>(), 1..32), reps in 1usize..200) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let compressed = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn bool_column_roundtrip(values in prop::collection::vec(any::<bool>(), 0..300)) {
        let mut buf = Vec::new();
        plain::encode_bool_column(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(plain::decode_bool_column(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn f64_column_roundtrip(values in prop::collection::vec(any::<f64>(), 0..200)) {
        let mut buf = Vec::new();
        plain::encode_f64_column(&values, &mut buf);
        let mut pos = 0;
        let decoded = plain::decode_f64_column(&buf, &mut pos).unwrap();
        prop_assert_eq!(decoded.len(), values.len());
        for (a, b) in decoded.iter().zip(values.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut pos = 0;
        let _ = varint::read_u64(&data, &mut pos);
        let mut pos = 0;
        let _ = delta::decode(&data, &mut pos);
        let mut pos = 0;
        let _ = rle::decode(&data, &mut pos, 64, 3);
        let mut pos = 0;
        let _ = bytesenc::delta_strings::decode(&data, &mut pos);
        let mut pos = 0;
        let _ = bytesenc::delta_length::decode(&data, &mut pos);
        let _ = compress::decompress(&data);
        let mut pos = 0;
        let _ = plain::decode_bool_column(&data, &mut pos);
    }
}
