//! # telemetry — metrics registry and lifecycle event tracing
//!
//! The measurement layer of the store: every dataset (and every shard of a
//! sharded dataset) owns one [`Telemetry`] registry, and the write/flush/
//! merge/WAL paths record into it with a handful of atomic instructions per
//! event. Nothing here allocates on the hot path; snapshots, rendering and
//! merging are done by the reader.
//!
//! ## Metric taxonomy
//!
//! Metric names are dot-separated, grouped by subsystem:
//!
//! | prefix         | kind       | examples |
//! |----------------|------------|----------|
//! | `ingest.*`     | counters   | `ingest.records`, `ingest.bytes`, `ingest.deletes` |
//! | `flush.*`      | counters + histogram | `flush.count`, `flush.entries_in`, `flush.pages_out`, `flush.duration_micros` |
//! | `merge.*`      | counters + histogram | `merge.count`, `merge.pages_in`, `merge.pages_out`, `merge.duration_micros` |
//! | `wal.*`        | counters + histograms | `wal.appends`, `wal.syncs`, `wal.append_micros`, `wal.sync_micros` |
//! | `backpressure.*` | counters | `backpressure.stalls`, `backpressure.stall_micros` |
//! | `snapshot.*`   | counters   | `snapshot.count` |
//! | `storage.*`    | sampled counters / gauges | the `IoStats` block folded in: `storage.pages_read`, `storage.bytes_written`, `storage.cache_hits`, …, plus `storage.allocated_bytes` |
//! | `lsm.*`        | sampled gauges | `lsm.memtable_bytes`, `lsm.sealed_queue_depth`, `lsm.components`, `lsm.live_stored_bytes` |
//! | `amp.*`        | derived gauges | `amp.write`, `amp.read`, `amp.space` |
//!
//! Three metric kinds exist:
//!
//! * **counters** — monotonic `u64`s recorded by the engine as work happens
//!   ([`Counter`], one relaxed `fetch_add`);
//! * **sampled counters / gauges** — point-in-time values the dataset reads
//!   off live state at snapshot time (queue depths, byte totals, the
//!   storage layer's `IoStats` block) and pushes into the snapshot;
//! * **derived gauges** — ratios computed *from the snapshot itself* by
//!   [`MetricsSnapshot::with_derived_gauges`], so they are always
//!   recomputable from the raw counters they summarise:
//!   `amp.write = storage.bytes_written / ingest.bytes` (physical bytes
//!   written per logical byte ingested over the store's lifetime),
//!   `amp.read = storage.bytes_read / ingest.bytes` (lifetime read
//!   amplification relative to the ingested volume), and
//!   `amp.space = storage.allocated_bytes / lsm.live_stored_bytes`
//!   (allocated page-file space per live component byte).
//!
//! ## Histogram bucket scheme
//!
//! [`Histogram`] is a fixed array of 32 power-of-two buckets: an observation
//! `v` lands in bucket `⌈log2(v+1)⌉` (bucket 0 holds `v == 0`, bucket `i`
//! holds `2^(i-1) < v ≤ 2^i`, the last bucket is unbounded). Recording is
//! two relaxed `fetch_add`s plus a `fetch_max`; quantiles (`p50`/`p95`/
//! `p99`) are resolved at snapshot time as the upper bound of the bucket
//! containing the requested rank, clamped to the observed maximum — i.e.
//! they are upper estimates with at most 2× bucket resolution, which is
//! plenty for "did the fsync take microseconds or milliseconds". Histograms
//! from different shards merge exactly (bucket-wise addition).
//!
//! ## Event-ring semantics
//!
//! [`EventRing`] is a bounded in-memory ring of structured lifecycle
//! [`Event`]s (flush/merge begin+end, WAL segment seal/remove, manifest
//! commits, recovery replay summaries, parked worker errors) with capacity
//! [`EventRing::DEFAULT_CAPACITY`]. Emission takes one short mutex hold;
//! when full, the oldest event is dropped — the ring is a flight recorder,
//! not an audit log. Every event carries a monotonically increasing
//! per-ring sequence number and a wall-clock timestamp in unix
//! microseconds. [`EventRing::recent`] returns the newest events oldest →
//! newest; [`EventRing::last_error`] scans for the most recent
//! [`EventKind::WorkerError`], which is how worker health surfaces a parked
//! background failure without consuming it.
//!
//! ## Disabling
//!
//! A registry built with [`Telemetry::disabled`] ignores every record and
//! emit call behind a single non-atomic bool read, so the `--only
//! observability` bench experiment can measure the overhead of the
//! enabled path against a true baseline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Wall-clock "now" in microseconds since the unix epoch (event timestamps).
pub fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Counters.
// ---------------------------------------------------------------------------

/// A monotonic counter: one relaxed `fetch_add` to record.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------------

/// Number of power-of-two buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket latency/size histogram (see the module docs for the
/// bucket scheme). Lock-free: recording is two `fetch_add`s and a
/// `fetch_max`.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for an observation: `⌈log2(v+1)⌉`, clamped to the last
/// (unbounded) bucket.
fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`], mergeable across shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see the module docs for bounds).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Bucket-wise merge of another snapshot into this one (exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Upper estimate of the `q`-quantile (`0.0 ..= 1.0`): the upper bound
    /// of the bucket containing the requested rank, clamped to the
    /// observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i is 2^i (bucket 0 holds zeros).
                let bound = if i == 0 { 0 } else { 1u64 << i.min(63) };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median upper estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Lifecycle events.
// ---------------------------------------------------------------------------

/// One structured lifecycle event (see [`EventKind`] for the vocabulary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Per-ring monotonic sequence number (dense from ring creation).
    pub seq: u64,
    /// Wall-clock timestamp, microseconds since the unix epoch.
    pub unix_micros: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The lifecycle event vocabulary emitted by the LSM and persistence
/// layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A sealed memtable started flushing to a component.
    FlushBegin {
        /// Entries in the sealed memtable being flushed.
        entries: usize,
    },
    /// A flush finished and its component is live in the tree.
    FlushEnd {
        /// Entries written.
        entries: usize,
        /// Pages the new component occupies.
        pages_out: u64,
        /// Flush wall time in microseconds.
        micros: u64,
    },
    /// A merge of the named components started.
    MergeBegin {
        /// Ids of the input components, oldest first.
        inputs: Vec<u64>,
    },
    /// A merge finished; the inputs were retired.
    MergeEnd {
        /// Ids of the input components, oldest first.
        inputs: Vec<u64>,
        /// Pages read from the inputs.
        pages_in: u64,
        /// Pages the merged component occupies.
        pages_out: u64,
        /// Merge wall time in microseconds.
        micros: u64,
    },
    /// The WAL rotated: the named segment is sealed (immutable).
    WalSegmentSealed {
        /// Id of the sealed segment.
        segment: u64,
    },
    /// Sealed WAL segments up to and including `through` were removed
    /// after a flush made them redundant.
    WalSegmentsRemoved {
        /// Highest removed segment id.
        through: u64,
    },
    /// A manifest version committed durably.
    ManifestCommit {
        /// The committed manifest version.
        version: u64,
    },
    /// Summary of a recovery replay at open.
    RecoveryReplay {
        /// WAL segments replayed.
        segments: usize,
        /// WAL records replayed into the memtable.
        records: usize,
        /// Whether a torn tail was truncated from the newest segment.
        torn_tail_healed: bool,
        /// Components reloaded from the manifest.
        components: usize,
    },
    /// Recovery reconciled the page file against the manifest and freed
    /// slots no live component references (crash-orphaned pages, plus the
    /// free list the file backend does not persist).
    OrphanSweep {
        /// Allocated page slots inspected.
        scanned: u64,
        /// Slots freed back onto the free list.
        freed: u64,
        /// Trailing freed slots truncated off the page file.
        truncated: u64,
    },
    /// A space-reclamation (GC) pass finished: live pages were relocated
    /// downward and the dead tail of the page file was truncated.
    SpaceReclaimed {
        /// Components rewritten into lower slots.
        components_rewritten: usize,
        /// Pages copied to lower slots.
        pages_moved: u64,
        /// Page slots released (the page file shrank by this many pages).
        pages_reclaimed: u64,
    },
    /// A background worker error was parked (writes will observe it).
    WorkerError {
        /// Display form of the parked error.
        message: String,
    },
}

impl EventKind {
    /// Short stable label for the event type (text/JSON rendering, tests).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::FlushBegin { .. } => "flush_begin",
            EventKind::FlushEnd { .. } => "flush_end",
            EventKind::MergeBegin { .. } => "merge_begin",
            EventKind::MergeEnd { .. } => "merge_end",
            EventKind::WalSegmentSealed { .. } => "wal_segment_sealed",
            EventKind::WalSegmentsRemoved { .. } => "wal_segments_removed",
            EventKind::ManifestCommit { .. } => "manifest_commit",
            EventKind::RecoveryReplay { .. } => "recovery_replay",
            EventKind::OrphanSweep { .. } => "orphan_sweep",
            EventKind::SpaceReclaimed { .. } => "space_reclaimed",
            EventKind::WorkerError { .. } => "worker_error",
        }
    }

    /// One-line human-readable rendering of the event payload.
    pub fn describe(&self) -> String {
        match self {
            EventKind::FlushBegin { entries } => format!("flush begin: {entries} entries"),
            EventKind::FlushEnd { entries, pages_out, micros } => {
                format!("flush end: {entries} entries -> {pages_out} pages in {micros}us")
            }
            EventKind::MergeBegin { inputs } => format!("merge begin: inputs {inputs:?}"),
            EventKind::MergeEnd { inputs, pages_in, pages_out, micros } => format!(
                "merge end: inputs {inputs:?} ({pages_in} pages) -> {pages_out} pages in {micros}us"
            ),
            EventKind::WalSegmentSealed { segment } => {
                format!("wal segment {segment} sealed")
            }
            EventKind::WalSegmentsRemoved { through } => {
                format!("wal segments removed through {through}")
            }
            EventKind::ManifestCommit { version } => {
                format!("manifest version {version} committed")
            }
            EventKind::RecoveryReplay { segments, records, torn_tail_healed, components } => {
                format!(
                    "recovery: {segments} segments, {records} records replayed, \
                     torn tail healed: {torn_tail_healed}, {components} components reloaded"
                )
            }
            EventKind::OrphanSweep { scanned, freed, truncated } => format!(
                "orphan sweep: {scanned} slots scanned, {freed} freed, {truncated} truncated"
            ),
            EventKind::SpaceReclaimed { components_rewritten, pages_moved, pages_reclaimed } => {
                format!(
                    "space reclaimed: {components_rewritten} components rewritten, \
                     {pages_moved} pages moved, {pages_reclaimed} pages released"
                )
            }
            EventKind::WorkerError { message } => format!("worker error parked: {message}"),
        }
    }
}

/// A bounded ring of lifecycle [`Event`]s (flight-recorder semantics: when
/// full, the oldest event is dropped).
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl EventRing {
    /// Default ring capacity (events retained).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Record an event (timestamped now), dropping the oldest if full.
    pub fn emit(&self, kind: EventKind) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            unix_micros: unix_micros(),
            kind,
        };
        let mut ring = self.ring.lock().expect("event ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The newest `n` events, oldest → newest.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let ring = self.ring.lock().expect("event ring poisoned");
        ring.iter().skip(ring.len().saturating_sub(n)).cloned().collect()
    }

    /// Total events ever emitted (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The most recent [`EventKind::WorkerError`] message still in the
    /// ring, if any.
    pub fn last_error(&self) -> Option<String> {
        let ring = self.ring.lock().expect("event ring poisoned");
        ring.iter().rev().find_map(|e| match &e.kind {
            EventKind::WorkerError { message } => Some(message.clone()),
            _ => None,
        })
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new(Self::DEFAULT_CAPACITY)
    }
}

// ---------------------------------------------------------------------------
// The per-dataset registry.
// ---------------------------------------------------------------------------

/// The per-dataset (per-shard) metrics registry: every counter and
/// histogram the LSM/persistence layers record into, plus the lifecycle
/// event ring. See the module docs for the taxonomy.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// `ingest.records` — documents inserted.
    pub records_ingested: Counter,
    /// `ingest.bytes` — approximate logical bytes ingested (memtable
    /// accounting bytes of inserted entries); denominator of `amp.write`.
    pub bytes_ingested: Counter,
    /// `ingest.deletes` — delete operations.
    pub deletes: Counter,
    /// `flush.count` — sealed memtables flushed to components.
    pub flushes: Counter,
    /// `flush.entries_in` — entries across all flushes.
    pub flush_entries: Counter,
    /// `flush.pages_out` — pages written by flushes (all indexes).
    pub flush_pages_out: Counter,
    /// `merge.count` — component merges completed.
    pub merges: Counter,
    /// `merge.pages_in` — input pages consumed by merges.
    pub merge_pages_in: Counter,
    /// `merge.pages_out` — pages written by merges.
    pub merge_pages_out: Counter,
    /// `wal.appends` — WAL records appended.
    pub wal_appends: Counter,
    /// `wal.syncs` — explicit WAL fsyncs.
    pub wal_syncs: Counter,
    /// `backpressure.stalls` — inserts that blocked on the sealed queue.
    pub stalls: Counter,
    /// `backpressure.stall_micros` — total time inserts spent blocked.
    pub stall_micros: Counter,
    /// `snapshot.count` — read snapshots taken.
    pub snapshots: Counter,
    /// `flush.duration_micros` — per-flush wall time.
    pub flush_duration: Histogram,
    /// `merge.duration_micros` — per-merge wall time.
    pub merge_duration: Histogram,
    /// `wal.append_micros` — per-append WAL latency.
    pub wal_append_latency: Histogram,
    /// `wal.sync_micros` — per-fsync WAL latency.
    pub wal_sync_latency: Histogram,
    /// The lifecycle event ring.
    pub events: EventRing,
}

impl Telemetry {
    /// An enabled registry with the default event-ring capacity.
    pub fn new() -> Self {
        Telemetry::with_state(true)
    }

    /// A registry whose record/emit calls are all no-ops (baseline for
    /// overhead measurement).
    pub fn disabled() -> Self {
        Telemetry::with_state(false)
    }

    fn with_state(enabled: bool) -> Self {
        Telemetry {
            enabled,
            records_ingested: Counter::default(),
            bytes_ingested: Counter::default(),
            deletes: Counter::default(),
            flushes: Counter::default(),
            flush_entries: Counter::default(),
            flush_pages_out: Counter::default(),
            merges: Counter::default(),
            merge_pages_in: Counter::default(),
            merge_pages_out: Counter::default(),
            wal_appends: Counter::default(),
            wal_syncs: Counter::default(),
            stalls: Counter::default(),
            stall_micros: Counter::default(),
            snapshots: Counter::default(),
            flush_duration: Histogram::default(),
            merge_duration: Histogram::default(),
            wal_append_latency: Histogram::default(),
            wal_sync_latency: Histogram::default(),
            events: EventRing::default(),
        }
    }

    /// Whether this registry records anything. Call sites that must pay a
    /// timing capture (`Instant::now`) to record should gate on this.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Emit a lifecycle event (no-op when disabled).
    pub fn emit(&self, kind: EventKind) {
        if self.enabled {
            self.events.emit(kind);
        }
    }

    /// The newest `n` lifecycle events, oldest → newest.
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        self.events.recent(n)
    }

    /// Freeze the registry's counters and histograms into a
    /// [`MetricsSnapshot`] for `dataset`. Sampled gauges (queue depths,
    /// the `IoStats` block, byte totals) are pushed by the caller
    /// afterwards; derived gauges by
    /// [`MetricsSnapshot::with_derived_gauges`].
    pub fn snapshot(&self, dataset: &str) -> MetricsSnapshot {
        let counters = vec![
            ("ingest.records".to_string(), self.records_ingested.get()),
            ("ingest.bytes".to_string(), self.bytes_ingested.get()),
            ("ingest.deletes".to_string(), self.deletes.get()),
            ("flush.count".to_string(), self.flushes.get()),
            ("flush.entries_in".to_string(), self.flush_entries.get()),
            ("flush.pages_out".to_string(), self.flush_pages_out.get()),
            ("merge.count".to_string(), self.merges.get()),
            ("merge.pages_in".to_string(), self.merge_pages_in.get()),
            ("merge.pages_out".to_string(), self.merge_pages_out.get()),
            ("wal.appends".to_string(), self.wal_appends.get()),
            ("wal.syncs".to_string(), self.wal_syncs.get()),
            ("backpressure.stalls".to_string(), self.stalls.get()),
            ("backpressure.stall_micros".to_string(), self.stall_micros.get()),
            ("snapshot.count".to_string(), self.snapshots.get()),
        ];
        let histograms = vec![
            ("flush.duration_micros".to_string(), self.flush_duration.snapshot()),
            ("merge.duration_micros".to_string(), self.merge_duration.snapshot()),
            ("wal.append_micros".to_string(), self.wal_append_latency.snapshot()),
            ("wal.sync_micros".to_string(), self.wal_sync_latency.snapshot()),
        ];
        MetricsSnapshot {
            dataset: dataset.to_string(),
            shards: 1,
            counters,
            gauges: Vec::new(),
            histograms,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

// ---------------------------------------------------------------------------
// Snapshots: merge + render.
// ---------------------------------------------------------------------------

/// A frozen, mergeable view of one registry (or of several shard
/// registries merged), exportable as aligned plain text
/// ([`MetricsSnapshot::to_text`]) or JSON ([`MetricsSnapshot::to_json`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The dataset this snapshot describes.
    pub dataset: String,
    /// Number of shard registries merged into this snapshot.
    pub shards: usize,
    /// Monotonic + sampled counters, name → value.
    pub counters: Vec<(String, u64)>,
    /// Sampled and derived gauges, name → value.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, name → frozen state.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Append (or add into an existing) counter.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => self.counters.push((name.to_string(), value)),
        }
    }

    /// Append (or add into an existing) gauge. Additive gauges (byte
    /// totals, queue depths) sum across shards; derived ratio gauges are
    /// recomputed after merging instead.
    pub fn push_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => self.gauges.push((name.to_string(), value)),
        }
    }

    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merge another shard's snapshot into this one: counters and gauges
    /// add, histograms merge bucket-wise, the shard count accumulates.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.shards += other.shards;
        for (name, value) in &other.counters {
            self.push_counter(name, *value);
        }
        for (name, value) in &other.gauges {
            self.push_gauge(name, *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.histograms.push((name.clone(), hist.clone())),
            }
        }
    }

    /// Compute the `amp.*` derived gauges from the raw counters/gauges
    /// already present (see the module docs for the definitions). Call
    /// after all shards are merged so the ratios are over the totals.
    pub fn with_derived_gauges(mut self) -> Self {
        self.gauges.retain(|(n, _)| !n.starts_with("amp."));
        let ingested = self.counter("ingest.bytes") as f64;
        if ingested > 0.0 {
            let written = self.counter("storage.bytes_written") as f64;
            let read = self.counter("storage.bytes_read") as f64;
            self.gauges.push(("amp.write".to_string(), written / ingested));
            self.gauges.push(("amp.read".to_string(), read / ingested));
        }
        let live = self.gauge("lsm.live_stored_bytes").unwrap_or(0.0);
        if live > 0.0 {
            let allocated = self.gauge("storage.allocated_bytes").unwrap_or(0.0);
            self.gauges.push(("amp.space".to_string(), allocated / live));
        }
        self
    }

    /// Render as aligned plain text (sorted by name within each section).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} ({} shard(s))\n", self.dataset, self.shards));
        let mut counters = self.counters.clone();
        counters.sort();
        for (name, value) in &counters {
            out.push_str(&format!("{name:<34} {value}\n"));
        }
        let mut gauges = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, value) in &gauges {
            out.push_str(&format!("{name:<34} {value:.3}\n"));
        }
        let mut histograms: Vec<&(String, HistogramSnapshot)> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in histograms {
            out.push_str(&format!(
                "{name:<34} count={} p50<={} p95<={} p99<={} max={}\n",
                h.count,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            ));
        }
        out
    }

    /// Render as a JSON document (hand-rolled: no serde in the tree).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"dataset\": \"{}\", \"shards\": {}, \"counters\": {{",
            escape(&self.dataset),
            self.shards
        ));
        let mut counters = self.counters.clone();
        counters.sort();
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", escape(name), value));
        }
        out.push_str("}, \"gauges\": {");
        let mut gauges = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (name, value)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let value = if value.is_finite() { *value } else { -1.0 };
            out.push_str(&format!("\"{}\": {}", escape(name), value));
        }
        out.push_str("}, \"histograms\": {");
        let mut histograms: Vec<&(String, HistogramSnapshot)> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (name, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                escape(name),
                h.count,
                h.sum,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let c = Counter::default();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 101_106);
        assert_eq!(s.max, 100_000);
        // p50 is an upper estimate: the 3rd of 6 observations lives in the
        // bucket holding 3 (2 < v <= 4), so the bound is 4.
        assert_eq!(s.p50(), 4);
        // p99 resolves to the last occupied bucket, clamped to the max.
        assert_eq!(s.p99(), 100_000);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let h = Histogram::default();
        h.record(5); // bucket for 4 < v <= 8: bound 8, but max is 5.
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.p99(), 5);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [2u64, 20, 200, 2000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let whole = Histogram::default();
        for v in [1u64, 10, 100, 2, 20, 200, 2000] {
            whole.record(v);
        }
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn event_ring_drops_oldest_and_surfaces_errors() {
        let ring = EventRing::new(3);
        ring.emit(EventKind::WorkerError { message: "early".into() });
        for segment in 0..3 {
            ring.emit(EventKind::WalSegmentSealed { segment });
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 3);
        // The worker error was the oldest event, so the ring dropped it.
        assert_eq!(ring.last_error(), None);
        assert_eq!(ring.emitted(), 4);
        assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq));

        ring.emit(EventKind::WorkerError { message: "late".into() });
        assert_eq!(ring.last_error().as_deref(), Some("late"));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::disabled();
        t.records_ingested.incr();
        t.emit(EventKind::ManifestCommit { version: 1 });
        assert!(!t.enabled());
        assert!(t.recent_events(10).is_empty());
        // Counters themselves still work (call sites gate on enabled()).
        assert_eq!(t.records_ingested.get(), 1);
    }

    #[test]
    fn snapshot_merges_and_derives_amplification() {
        let a = Telemetry::new();
        a.bytes_ingested.add(1000);
        a.records_ingested.add(10);
        a.flush_duration.record(500);
        let b = Telemetry::new();
        b.bytes_ingested.add(3000);
        b.flush_duration.record(700);

        let mut snap = a.snapshot("ds");
        snap.merge(&b.snapshot("ds"));
        snap.push_counter("storage.bytes_written", 8000);
        snap.push_counter("storage.bytes_read", 2000);
        snap.push_gauge("storage.allocated_bytes", 4096.0);
        snap.push_gauge("lsm.live_stored_bytes", 2048.0);
        let snap = snap.with_derived_gauges();

        assert_eq!(snap.shards, 2);
        assert_eq!(snap.counter("ingest.bytes"), 4000);
        assert_eq!(snap.counter("ingest.records"), 10);
        assert_eq!(snap.gauge("amp.write"), Some(2.0));
        assert_eq!(snap.gauge("amp.read"), Some(0.5));
        assert_eq!(snap.gauge("amp.space"), Some(2.0));
        assert_eq!(snap.histogram("flush.duration_micros").unwrap().count, 2);

        let text = snap.to_text();
        assert!(text.contains("ingest.bytes"), "{text}");
        assert!(text.contains("amp.write"), "{text}");
        let json = snap.to_json();
        assert!(json.contains("\"ingest.bytes\": 4000"), "{json}");
        assert!(json.contains("\"amp.write\": 2"), "{json}");
    }
}
