//! # datagen — synthetic versions of the paper's evaluation datasets
//!
//! The paper evaluates against five datasets (Table 1): `cell` (telecom call
//! records, flat/1NF, mixed numeric and string scalars), `sensors`
//! (numeric-heavy nested readings), `tweet_1` (text-heavy, very many
//! columns), `wos` (Web of Science records with heterogeneous union-typed
//! fields) and `tweet_2` (a moderate-column tweet sample with a monotone
//! timestamp, used for the secondary-index and update experiments).
//!
//! The real datasets are proprietary (telecom data, Twitter API captures,
//! Clarivate's Web of Science), so this crate generates synthetic documents
//! with the same *structural* characteristics — record shape, nesting,
//! column counts, value-type mix, heterogeneity — which is what every
//! experiment in the paper actually exercises (see DESIGN.md §2). Sizes are
//! scaled to laptop scale through [`DatasetSpec::records`].
//!
//! Generators are deterministic given a seed, so experiments are repeatable.

use docmodel::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's datasets to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Telecom call records: flat (1NF), mixed int/double/string scalars.
    Cell,
    /// Sensor readings: numeric-heavy with a nested readings array.
    Sensors,
    /// Tweets (2020–2021 capture): text-heavy, very many columns.
    Tweet1,
    /// Web of Science publications: large text values plus union-typed
    /// (object vs. array-of-object) address fields.
    Wos,
    /// Tweets (2016 sample): moderate columns, monotone `timestamp`.
    Tweet2,
}

impl DatasetKind {
    /// All five datasets, in the paper's order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Cell,
        DatasetKind::Sensors,
        DatasetKind::Tweet1,
        DatasetKind::Wos,
        DatasetKind::Tweet2,
    ];

    /// Name used in experiment output (matches the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cell => "cell",
            DatasetKind::Sensors => "sensors",
            DatasetKind::Tweet1 => "tweet_1",
            DatasetKind::Wos => "wos",
            DatasetKind::Tweet2 => "tweet_2",
        }
    }

    /// The primary-key field of the generated records.
    pub fn key_field(self) -> &'static str {
        "id"
    }
}

/// How much data to generate.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which dataset.
    pub kind: DatasetKind,
    /// Number of records.
    pub records: usize,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
}

impl DatasetSpec {
    /// A spec with the default seed.
    pub fn new(kind: DatasetKind, records: usize) -> DatasetSpec {
        DatasetSpec {
            kind,
            records,
            seed: 0x5EED_0001,
        }
    }
}

/// Generate the dataset described by `spec`.
pub fn generate(spec: &DatasetSpec) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.records)
        .map(|i| generate_record(spec.kind, i as i64, &mut rng))
        .collect()
}

/// Generate a single record of the given dataset with primary key `id`.
pub fn generate_record(kind: DatasetKind, id: i64, rng: &mut StdRng) -> Value {
    match kind {
        DatasetKind::Cell => cell_record(id, rng),
        DatasetKind::Sensors => sensors_record(id, rng),
        DatasetKind::Tweet1 => tweet_record(id, rng, true),
        DatasetKind::Wos => wos_record(id, rng),
        DatasetKind::Tweet2 => tweet_record(id, rng, false),
    }
}

/// Generate an update stream: `fraction` of the previously generated records
/// are re-generated (same keys, new payloads), uniformly at random — the
/// update-intensive workload of §6.3.2.
pub fn generate_updates(spec: &DatasetSpec, fraction: f64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xDEAD_BEEF);
    let count = (spec.records as f64 * fraction) as usize;
    (0..count)
        .map(|_| {
            let id = rng.gen_range(0..spec.records as i64);
            generate_record(spec.kind, id, &mut rng)
        })
        .collect()
}

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn words(rng: &mut StdRng, n: usize) -> String {
    const WORDS: [&str; 24] = [
        "data", "column", "store", "query", "lsm", "flush", "merge", "page", "schema", "tweet",
        "sensor", "reading", "game", "title", "science", "paper", "result", "fast", "slow",
        "big", "small", "new", "old", "test",
    ];
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

// --- cell: flat 1NF call records ------------------------------------------

fn cell_record(id: i64, rng: &mut StdRng) -> Value {
    Value::empty_object()
        .with_field("id", Value::Int(id))
        .with_field("caller", Value::from(format!("+1202555{:04}", rng.gen_range(0..10_000))))
        .with_field("callee", Value::from(format!("+1415555{:04}", rng.gen_range(0..10_000))))
        .with_field("duration", Value::Int(rng.gen_range(1..3600)))
        .with_field("tower", Value::Int(rng.gen_range(0..5_000)))
        .with_field("signal", Value::Double(rng.gen_range(-120.0..-40.0)))
        .with_field("ts", Value::Int(1_600_000_000_000 + id * 977))
}

// --- sensors: numeric-heavy nested readings --------------------------------

fn sensors_record(id: i64, rng: &mut StdRng) -> Value {
    let reading_count = rng.gen_range(4..12);
    let readings: Vec<Value> = (0..reading_count)
        .map(|j| {
            Value::empty_object()
                .with_field("seq", Value::Int(j))
                .with_field("temp", Value::Double((rng.gen_range(-200..450) as f64) / 10.0))
                .with_field("humidity", Value::Int(rng.gen_range(0..100)))
        })
        .collect();
    Value::empty_object()
        .with_field("id", Value::Int(id))
        .with_field("sensor_id", Value::Int(id % 5_000))
        .with_field("report_time", Value::Int(1_556_400_000_000 + id * 60_000))
        .with_field(
            "status",
            Value::empty_object()
                .with_field("battery", Value::Int(rng.gen_range(0..100)))
                .with_field("rssi", Value::Int(rng.gen_range(-90..-30)))
                .with_field("online", Value::Bool(rng.gen_bool(0.95))),
        )
        .with_field("readings", Value::Array(readings))
}

// --- tweets: text heavy ------------------------------------------------------

fn tweet_record(id: i64, rng: &mut StdRng, wide: bool) -> Value {
    let text_len = if wide { rng.gen_range(12..40) } else { rng.gen_range(6..20) };
    let hashtags: Vec<Value> = (0..rng.gen_range(0..4))
        .map(|_| {
            Value::empty_object().with_field(
                "text",
                Value::from(pick(rng, &["jobs", "rust", "vldb", "news", "sports"])),
            )
        })
        .collect();
    let mut user = Value::empty_object()
        .with_field("name", Value::from(format!("user_{}", rng.gen_range(0..50_000))))
        .with_field("followers_count", Value::Int(rng.gen_range(0..1_000_000)))
        .with_field("verified", Value::Bool(rng.gen_bool(0.02)))
        .with_field("lang", Value::from(pick(rng, &["en", "es", "ja", "ar", "pt"])));
    if wide {
        // tweet_1 has an "excessive" number of columns (933 inferred in the
        // paper): emulate the width with optional, sparsely-populated groups
        // of metadata fields so the inferred schema grows wide.
        let mut extended = Value::empty_object();
        for g in 0..rng.gen_range(3..8) {
            let group = rng.gen_range(0..40);
            extended.set_field(
                format!("meta_{group}_{g}"),
                Value::empty_object()
                    .with_field("v", Value::Int(rng.gen_range(0..1000)))
                    .with_field("s", Value::from(words(rng, 2))),
            );
        }
        user.set_field("extended", extended);
    }
    Value::empty_object()
        .with_field("id", Value::Int(id))
        .with_field("timestamp", Value::Int(1_450_000_000_000 + id))
        .with_field("text", Value::from(words(rng, text_len)))
        .with_field("lang", Value::from(pick(rng, &["en", "es", "ja", "ar", "pt"])))
        .with_field("retweet_count", Value::Int(rng.gen_range(0..10_000)))
        .with_field("favorite_count", Value::Int(rng.gen_range(0..50_000)))
        .with_field("user", user)
        .with_field(
            "entities",
            Value::empty_object().with_field("hashtags", Value::Array(hashtags)),
        )
        .with_field(
            "coordinates",
            if rng.gen_bool(0.15) {
                Value::from(vec![
                    Value::Double(rng.gen_range(-180.0..180.0)),
                    Value::Double(rng.gen_range(-90.0..90.0)),
                ])
            } else {
                Value::Null
            },
        )
}

// --- wos: publications with heterogeneous (union-typed) address field -------

fn wos_record(id: i64, rng: &mut StdRng) -> Value {
    let author_count = rng.gen_range(1..6);
    let abstract_words = rng.gen_range(60..220);
    let title_words = rng.gen_range(6..16);
    fn make_address(rng: &mut StdRng) -> Value {
        const COUNTRIES: [&str; 10] = [
            "USA", "China", "Germany", "UK", "Japan", "France", "Canada", "Brazil", "India",
            "Korea",
        ];
        Value::empty_object().with_field(
            "address_spec",
            Value::empty_object()
                .with_field("country", Value::from(pick(rng, &COUNTRIES)))
                .with_field("city", Value::from(words(rng, 1))),
        )
    }
    // The XML→JSON conversion produced a union: a single-authored paper has
    // an *object* address_name, a multi-authored one has an *array* of them.
    let address_name = if author_count == 1 {
        make_address(rng)
    } else {
        Value::Array((0..author_count).map(|_| make_address(rng)).collect())
    };
    let subjects: Vec<Value> = (0..rng.gen_range(1..4))
        .map(|_| {
            Value::empty_object()
                .with_field("ascatype", Value::from(pick(rng, &["extended", "traditional"])))
                .with_field(
                    "value",
                    Value::from(pick(rng, &[
                        "Computer Science",
                        "Physics",
                        "Biology",
                        "Mathematics",
                        "Chemistry",
                        "Medicine",
                    ])),
                )
        })
        .collect();
    Value::empty_object()
        .with_field("id", Value::Int(id))
        .with_field("year", Value::Int(rng.gen_range(1980..2015)))
        .with_field(
            "static_data",
            Value::empty_object().with_field(
                "fullrecord_metadata",
                Value::empty_object()
                    .with_field("abstract", Value::from(words(rng, abstract_words)))
                    .with_field(
                        "addresses",
                        Value::empty_object().with_field("address_name", address_name),
                    )
                    .with_field(
                        "category_info",
                        Value::empty_object().with_field(
                            "subjects",
                            Value::empty_object().with_field("subject", Value::Array(subjects)),
                        ),
                    ),
            ),
        )
        .with_field("title", Value::from(words(rng, title_words)))
}

/// Summary statistics of a generated dataset, used to print Table 1.
#[derive(Debug, Clone)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: &'static str,
    /// Number of records generated.
    pub records: usize,
    /// Total JSON text size in bytes.
    pub json_bytes: u64,
    /// Average record size in bytes.
    pub avg_record_bytes: u64,
    /// Number of columns the schema crate infers.
    pub inferred_columns: usize,
}

/// Compute the Table-1 style summary for a generated dataset.
pub fn summarize(kind: DatasetKind, records: &[Value]) -> DatasetSummary {
    let mut builder = schema::SchemaBuilder::new(Some(kind.key_field().to_string()));
    let mut json_bytes = 0u64;
    for r in records {
        json_bytes += docmodel::to_json(r).len() as u64;
        builder.observe(r);
    }
    let columns = schema::columns_of(builder.schema()).len();
    DatasetSummary {
        name: kind.name(),
        records: records.len(),
        json_bytes,
        avg_record_bytes: if records.is_empty() {
            0
        } else {
            json_bytes / records.len() as u64
        },
        inferred_columns: columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for kind in DatasetKind::ALL {
            let a = generate(&DatasetSpec::new(kind, 50));
            let b = generate(&DatasetSpec::new(kind, 50));
            assert_eq!(a, b, "{kind:?}");
            assert_eq!(a.len(), 50);
        }
    }

    #[test]
    fn every_record_has_an_integer_key() {
        for kind in DatasetKind::ALL {
            let records = generate(&DatasetSpec::new(kind, 30));
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.get_field("id"), Some(&Value::Int(i as i64)), "{kind:?}");
            }
        }
    }

    #[test]
    fn structural_characteristics_match_the_paper() {
        let cell = summarize(DatasetKind::Cell, &generate(&DatasetSpec::new(DatasetKind::Cell, 200)));
        let sensors =
            summarize(DatasetKind::Sensors, &generate(&DatasetSpec::new(DatasetKind::Sensors, 200)));
        let tweet1 =
            summarize(DatasetKind::Tweet1, &generate(&DatasetSpec::new(DatasetKind::Tweet1, 400)));
        let tweet2 =
            summarize(DatasetKind::Tweet2, &generate(&DatasetSpec::new(DatasetKind::Tweet2, 200)));
        let wos = summarize(DatasetKind::Wos, &generate(&DatasetSpec::new(DatasetKind::Wos, 200)));

        // cell is 1NF with the fewest columns and the smallest records.
        assert!(cell.inferred_columns <= 10);
        assert!(cell.avg_record_bytes < sensors.avg_record_bytes);
        // tweet_1 has far more columns than tweet_2 (933 vs 275 in Table 1).
        assert!(tweet1.inferred_columns > tweet2.inferred_columns * 2);
        // wos records are the largest on average (long abstracts).
        assert!(wos.avg_record_bytes > tweet2.avg_record_bytes);
    }

    #[test]
    fn wos_contains_heterogeneous_address_field() {
        let records = generate(&DatasetSpec::new(DatasetKind::Wos, 100));
        let mut builder = schema::SchemaBuilder::new(Some("id".to_string()));
        builder.observe_all(records.iter());
        let schema = builder.into_schema();
        let node = schema
            .resolve_path(&docmodel::Path::parse(
                "static_data.fullrecord_metadata.addresses.address_name",
            ))
            .unwrap();
        assert!(
            matches!(schema.node(node), schema::SchemaNode::Union { .. }),
            "address_name should infer as a union of object and array"
        );
    }

    #[test]
    fn update_stream_reuses_existing_keys() {
        let spec = DatasetSpec::new(DatasetKind::Tweet2, 100);
        let updates = generate_updates(&spec, 0.5);
        assert_eq!(updates.len(), 50);
        for u in &updates {
            let id = u.get_field("id").and_then(Value::as_int).unwrap();
            assert!((0..100).contains(&id));
        }
    }

    #[test]
    fn tweet2_timestamps_are_monotone_in_id() {
        let records = generate(&DatasetSpec::new(DatasetKind::Tweet2, 100));
        let ts: Vec<i64> = records
            .iter()
            .map(|r| r.get_field("timestamp").and_then(Value::as_int).unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }
}
