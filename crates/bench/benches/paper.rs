//! Criterion benchmarks wrapping the paper's experiments.
//!
//! Every table/figure has a corresponding benchmark group so `cargo bench`
//! regenerates statistically sound timings for the hot paths; the
//! `experiments` binary prints the full matrices (including storage sizes,
//! which are not timings). Scales are kept small so the whole suite runs in
//! minutes on a laptop.

use bench::{build_dataset, default_records, queries_for};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use datagen::{generate, DatasetKind, DatasetSpec};
use docmodel::Path;
use lsm::{DatasetConfig, LsmDataset};
use query::{Aggregate, ExecMode, Expr, PlannerOptions, Query, QueryEngine};
use storage::LayoutKind;

const BENCH_SCALE: f64 = 0.25;

fn scaled_records(kind: DatasetKind) -> usize {
    ((default_records(kind) as f64) * BENCH_SCALE).max(200.0) as usize
}

/// Figure 13a: ingestion throughput per layout (sensors as the representative
/// insert-only dataset).
fn bench_ingestion(c: &mut Criterion) {
    let kind = DatasetKind::Sensors;
    let records = scaled_records(kind);
    let docs = generate(&DatasetSpec::new(kind, records));
    let mut group = c.benchmark_group("fig13_ingestion_sensors");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in LayoutKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(layout.name()), &layout, |b, &layout| {
            b.iter(|| {
                let dataset = LsmDataset::new(
                    DatasetConfig::new("bench", layout)
                        .with_memtable_budget(256 * 1024)
                        .with_page_size(32 * 1024),
                );
                for doc in docs.clone() {
                    dataset.insert(doc).unwrap();
                }
                dataset.flush().unwrap();
                dataset.component_count()
            })
        });
    }
    group.finish();
}

/// Figure 14: the query suites per dataset and layout (compiled engine).
fn bench_queries(c: &mut Criterion) {
    for kind in [
        DatasetKind::Cell,
        DatasetKind::Sensors,
        DatasetKind::Tweet1,
        DatasetKind::Wos,
    ] {
        let records = scaled_records(kind);
        let mut group = c.benchmark_group(format!("fig14_queries_{}", kind.name()));
        group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
        for layout in LayoutKind::ALL {
            let (dataset, _) = build_dataset(kind, layout, records, false);
            for (name, query) in queries_for(kind) {
                let engine = QueryEngine::new(ExecMode::Compiled);
                group.bench_function(BenchmarkId::new(name, layout.name()), |b| {
                    b.iter(|| engine.execute(&dataset, &query).unwrap())
                });
            }
        }
        group.finish();
    }
}

/// Figure 10: interpreted vs compiled execution of the group-by query.
fn bench_codegen(c: &mut Criterion) {
    let kind = DatasetKind::Sensors;
    let records = scaled_records(kind);
    let q2 = Query::new()
        .with_unnest("readings")
        .group_by("sensor_id")
        .aggregate_element(Aggregate::Max(Path::parse("temp")))
        .top_k(10);
    let mut group = c.benchmark_group("fig10_codegen_sensors_q2");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in LayoutKind::ALL {
        let (dataset, _) = build_dataset(kind, layout, records, false);
        group.bench_function(BenchmarkId::new("interpreted", layout.name()), |b| {
            let engine = QueryEngine::new(ExecMode::Interpreted);
            b.iter(|| engine.execute(&dataset, &q2).unwrap())
        });
        group.bench_function(BenchmarkId::new("compiled", layout.name()), |b| {
            let engine = QueryEngine::new(ExecMode::Compiled);
            b.iter(|| engine.execute(&dataset, &q2).unwrap())
        });
    }
    group.finish();
}

/// Figure 15: secondary-index range queries at low and high selectivity.
fn bench_secondary_index(c: &mut Criterion) {
    let kind = DatasetKind::Tweet2;
    let records = scaled_records(kind);
    let base_ts = 1_450_000_000_000i64;
    let mut group = c.benchmark_group("fig15_secondary_index_tweet2");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in LayoutKind::ALL {
        let (dataset, _) = build_dataset(kind, layout, records, true);
        for selectivity in [0.001, 1.0] {
            let span = ((records as f64) * selectivity / 100.0).max(1.0) as i64;
            // The cost-based planner routes the range filter through the
            // timestamp index or a zone-map-pruned scan, per its estimate.
            let q = Query::count_star().with_filter(Expr::between(
                "timestamp",
                base_ts,
                base_ts + span - 1,
            ));
            let engine = QueryEngine::new(ExecMode::Compiled);
            group.bench_function(
                BenchmarkId::new(format!("sel_{selectivity}pct"), layout.name()),
                |b| b.iter(|| engine.execute(&dataset, &q).unwrap()),
            );
        }
    }
    group.finish();
}

/// Figure 15 crossover: the same range query forced through the index,
/// forced to scan, and left to the cost-based Auto policy, at both
/// selectivity extremes. Auto should track the better of the forced pair.
fn bench_fig15_crossover(c: &mut Criterion) {
    use query::AccessPathChoice;

    let kind = DatasetKind::Tweet2;
    let records = scaled_records(kind);
    let base_ts = 1_450_000_000_000i64;
    let mut group = c.benchmark_group("fig15_crossover_tweet2");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let (dataset, _) = build_dataset(kind, layout, records, true);
        dataset.compact_fully().unwrap();
        for selectivity in [0.001, 10.0] {
            let span = ((records as f64) * selectivity / 100.0).max(1.0) as i64;
            let q = Query::count_star().with_filter(Expr::between(
                "timestamp",
                base_ts,
                base_ts + span - 1,
            ));
            for (label, choice) in [
                ("force_index", AccessPathChoice::ForceIndex),
                ("force_scan", AccessPathChoice::ForceScan),
                ("auto", AccessPathChoice::Auto),
            ] {
                let engine = QueryEngine::with_options(
                    ExecMode::Compiled,
                    PlannerOptions::with_access_path(choice),
                );
                group.bench_function(
                    BenchmarkId::new(format!("sel_{selectivity}pct_{label}"), layout.name()),
                    |b| b.iter(|| engine.execute(&dataset, &q).unwrap()),
                );
            }
        }
    }
    group.finish();
}

/// Figure 16: scans reading a varying number of columns (APAX vs AMAX).
fn bench_column_count(c: &mut Criterion) {
    let kind = DatasetKind::Tweet2;
    let records = scaled_records(kind);
    let columns = ["text", "user.name", "retweet_count", "lang", "favorite_count"];
    let mut group = c.benchmark_group("fig16_column_count_tweet2");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in [LayoutKind::Apax, LayoutKind::Amax] {
        let (dataset, _) = build_dataset(kind, layout, records, false);
        let engine = QueryEngine::new(ExecMode::Compiled);
        for n in [1usize, 3, 5] {
            group.bench_function(BenchmarkId::new(format!("{n}_columns"), layout.name()), |b| {
                b.iter(|| {
                    for col in &columns[..n] {
                        let q = Query::select([Aggregate::CountNonNull(Path::parse(col))]);
                        engine.execute(&dataset, &q).unwrap();
                    }
                })
            });
        }
    }
    group.finish();
}

/// Raw-column SELECT with ORDER BY key LIMIT k: the streaming pipeline
/// terminates after the k-th match, so the limited query should beat the
/// full projection by a wide margin (it reads a handful of leaves instead
/// of every page). The unlimited run is the baseline.
fn bench_select_limit(c: &mut Criterion) {
    let kind = DatasetKind::Tweet1;
    let records = scaled_records(kind);
    let select = Query::select_paths(["text", "retweet_count"])
        .with_filter(Expr::ge("retweet_count", 1))
        .order_by_key();
    let mut group = c.benchmark_group("select_limit_tweet1");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    let docs = generate(&DatasetSpec::new(kind, records));
    for layout in [LayoutKind::Apax, LayoutKind::Amax] {
        // Small pages and AMAX mega leaves (as in the `--only streaming`
        // experiment): at the default record_limit a component is one mega
        // leaf and a limited scan has no tail of leaves to skip.
        let mut config = DatasetConfig::new("bench", layout)
            .with_key_field(kind.key_field())
            .with_memtable_budget(128 * 1024)
            .with_page_size(8 * 1024);
        config.amax.record_limit = 64;
        let dataset = LsmDataset::new(config);
        for doc in docs.clone() {
            dataset.insert(doc).unwrap();
        }
        dataset.flush().unwrap();
        let engine = QueryEngine::new(ExecMode::Compiled);
        for (label, query) in [
            ("full", select.clone()),
            ("limit_10", select.clone().with_limit(10)),
            ("limit_1", select.clone().with_limit(1)),
        ] {
            group.bench_function(BenchmarkId::new(label, layout.name()), |b| {
                b.iter(|| engine.execute(&dataset, &query).unwrap())
            });
        }
    }
    group.finish();
}

/// Figure 12a is a storage-size measurement rather than a timing; the bench
/// measures the flush (component write) path that produces those sizes.
fn bench_flush_write(c: &mut Criterion) {
    let kind = DatasetKind::Tweet1;
    let records = scaled_records(kind);
    let docs = generate(&DatasetSpec::new(kind, records));
    let mut group = c.benchmark_group("fig12_component_write_tweet1");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in LayoutKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(layout.name()), &layout, |b, &layout| {
            b.iter(|| {
                let dataset = LsmDataset::new(
                    DatasetConfig::new("bench", layout)
                        .with_memtable_budget(usize::MAX)
                        .with_page_size(32 * 1024),
                );
                for doc in docs.clone() {
                    dataset.insert(doc).unwrap();
                }
                dataset.flush().unwrap();
                dataset.primary_stored_bytes()
            })
        });
    }
    group.finish();
}

/// Durability on/off: the same ingest workload against an in-memory dataset
/// and a directory-backed one (WAL append per insert, page-file sync and
/// manifest commit per flush).
fn bench_durability(c: &mut Criterion) {
    let kind = DatasetKind::Sensors;
    let records = scaled_records(kind);
    let docs = generate(&DatasetSpec::new(kind, records));
    let dir = std::env::temp_dir().join(format!("paper-bench-durability-{}", std::process::id()));
    let mut group = c.benchmark_group("durability_ingestion_sensors");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let config = || {
            DatasetConfig::new("bench", layout)
                .with_memtable_budget(256 * 1024)
                .with_page_size(32 * 1024)
        };
        // iter_batched so directory cleanup and dataset construction happen
        // outside the measured region — both arms time only ingest + flush.
        group.bench_function(BenchmarkId::new("in_memory", layout.name()), |b| {
            b.iter_batched(
                || LsmDataset::new(config()),
                |dataset| {
                    for doc in docs.clone() {
                        dataset.insert(doc).unwrap();
                    }
                    dataset.flush().unwrap();
                    dataset.component_count()
                },
                criterion::BatchSize::PerIteration,
            )
        });
        group.bench_function(BenchmarkId::new("durable", layout.name()), |b| {
            b.iter_batched(
                || {
                    let subdir = dir.join(layout.name());
                    let _ = std::fs::remove_dir_all(&subdir);
                    LsmDataset::open(&subdir, config()).unwrap()
                },
                |dataset| {
                    for doc in docs.clone() {
                        dataset.insert(doc).unwrap();
                    }
                    dataset.flush().unwrap();
                    dataset.component_count()
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The query-API experiment: a multi-aggregate plan with projection
/// pushdown on vs off over the redesigned planner.
fn bench_query_api(c: &mut Criterion) {
    let kind = DatasetKind::Tweet1;
    let records = scaled_records(kind);
    let q = Query::select([
        Aggregate::Count,
        Aggregate::Max(Path::parse("retweet_count")),
        Aggregate::Avg(Path::parse("favorite_count")),
    ])
    .with_filter(Expr::and([
        Expr::ge("retweet_count", 1),
        Expr::exists("entities"),
    ]))
    .group_by("user.name")
    .top_k(10);
    let mut group = c.benchmark_group("query_api_pushdown_tweet1");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for layout in [LayoutKind::Apax, LayoutKind::Amax] {
        let (dataset, _) = build_dataset(kind, layout, records, false);
        for (label, options) in [
            ("pushdown_on", PlannerOptions::default()),
            (
                "pushdown_off",
                PlannerOptions { projection_pushdown: false, ..Default::default() },
            ),
        ] {
            let engine = QueryEngine::with_options(ExecMode::Compiled, options);
            group.bench_function(BenchmarkId::new(label, layout.name()), |b| {
                b.iter(|| engine.execute(&dataset, &q).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ingestion,
    bench_queries,
    bench_codegen,
    bench_secondary_index,
    bench_fig15_crossover,
    bench_column_count,
    bench_select_limit,
    bench_query_api,
    bench_flush_write,
    bench_durability
);
criterion_main!(benches);
