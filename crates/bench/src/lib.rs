//! # bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§6). Each
//! function builds the required datasets at a laptop-scale record count,
//! runs the measurement and returns printable rows with the same structure
//! as the paper's figures: dataset × layout for storage/ingestion, query ×
//! layout for execution times, selectivity × layout for index experiments,
//! column-count sweeps for Figure 16.
//!
//! Absolute numbers differ from the paper (simulated disk, scaled data,
//! different language/runtime); EXPERIMENTS.md records the *shapes* we check
//! against the paper: who wins, by roughly what factor, where the crossovers
//! are.
//!
//! The `experiments` binary (`cargo run -p bench --release --bin experiments`)
//! prints every table; the Criterion benches under `benches/` wrap the same
//! functions for statistically sound timing of the hot paths.

use std::time::{Duration, Instant};

use datagen::{generate, generate_updates, summarize, DatasetKind, DatasetSpec};
use docmodel::Path;
use lsm::{CompactionSpec, DatasetConfig, LsmDataset};
use query::{AccessPathChoice, Aggregate, ExecMode, Expr, PlannerOptions, Query, QueryEngine};
use storage::LayoutKind;

/// Run a query on one dataset in the given mode (default planner options).
pub fn run_query(dataset: &LsmDataset, query: &Query, mode: ExecMode) -> Vec<query::QueryRow> {
    QueryEngine::new(mode).execute(dataset, query).expect("query")
}

/// Default record counts per dataset (scaled from the paper's 17M–1.43B).
pub fn default_records(kind: DatasetKind) -> usize {
    match kind {
        DatasetKind::Cell => 8_000,
        DatasetKind::Sensors => 3_000,
        DatasetKind::Tweet1 => 2_000,
        DatasetKind::Wos => 1_500,
        DatasetKind::Tweet2 => 4_000,
    }
}

/// Build an LSM dataset containing the given synthetic dataset in the given
/// layout. Returns the dataset together with the wall-clock ingestion time.
pub fn build_dataset(
    kind: DatasetKind,
    layout: LayoutKind,
    records: usize,
    secondary_index: bool,
) -> (LsmDataset, Duration) {
    let spec = DatasetSpec::new(kind, records);
    let docs = generate(&spec);
    let mut config = DatasetConfig::new(kind.name(), layout)
        .with_key_field(kind.key_field())
        .with_memtable_budget(256 * 1024)
        .with_page_size(32 * 1024);
    if secondary_index {
        config = config.with_secondary_index(Path::parse("timestamp"));
    }
    let dataset = LsmDataset::new(config);
    let started = Instant::now();
    for doc in docs {
        dataset.insert(doc).expect("ingest");
    }
    dataset.flush().expect("flush");
    (dataset, started.elapsed())
}

/// Like [`build_dataset`], but with durability enabled: the dataset is
/// opened in (a fresh subdirectory of) `dir`, so every insert pays the WAL
/// append and every flush pays the page-file sync + manifest commit. Used by
/// the durability on/off ingest comparison.
pub fn build_durable_dataset(
    kind: DatasetKind,
    layout: LayoutKind,
    records: usize,
    dir: &std::path::Path,
) -> (LsmDataset, Duration) {
    let spec = DatasetSpec::new(kind, records);
    let docs = generate(&spec);
    let config = DatasetConfig::new(kind.name(), layout)
        .with_key_field(kind.key_field())
        .with_memtable_budget(256 * 1024)
        .with_page_size(32 * 1024);
    let subdir = dir.join(format!("{}-{}", kind.name(), layout.name()));
    let _ = std::fs::remove_dir_all(&subdir);
    let dataset = LsmDataset::open(&subdir, config).expect("open durable dataset");
    let started = Instant::now();
    for doc in docs {
        dataset.insert(doc).expect("ingest");
    }
    dataset.flush().expect("flush");
    let elapsed = started.elapsed();
    (dataset, elapsed)
}

/// Measure ingest wall time with durability off vs on (per layout), the
/// overhead of the WAL + manifest + file-backed pages on the write path.
pub fn run_durability_comparison(kind: DatasetKind, records: usize) -> Vec<Measurement> {
    let dir = std::env::temp_dir().join(format!("bench-durability-{}", std::process::id()));
    let mut out = Vec::new();
    for layout in LayoutKind::ALL {
        let (_, in_memory) = build_dataset(kind, layout, records, false);
        let (durable_ds, durable) = build_durable_dataset(kind, layout, records, &dir);
        drop(durable_ds);
        out.push(Measurement {
            row: "in-memory".to_string(),
            column: layout.name().to_string(),
            value: in_memory.as_secs_f64() * 1e3,
            unit: "ms",
        });
        out.push(Measurement {
            row: "durable".to_string(),
            column: layout.name().to_string(),
            value: durable.as_secs_f64() * 1e3,
            unit: "ms",
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Acknowledged-ingest group-commit cadence of the concurrency experiment:
/// the WAL is fsynced every this many records, as a durable service
/// acknowledging client batches would.
pub const CONCURRENCY_GROUP_COMMIT: usize = 64;

/// Concurrency experiment: the same durable, group-committed, insert-only
/// workload (WAL fsync every [`CONCURRENCY_GROUP_COMMIT`] records) ingested
/// three ways on identical LSM settings —
///
/// * **blocking**: the seed behaviour, flushes and merges (including their
///   page-file and manifest fsyncs) run inside `insert()` on the writer
///   thread, serialising with the group-commit fsyncs;
/// * **background**: one writer thread, flushes/merges on the dataset's
///   background worker (the paper's background-job LSM lifecycle) — the
///   worker's encode/compress/fsync work overlaps with ingestion and with
///   the writer's group-commit waits;
/// * **sharded xN**: N hash partitions, one writer thread and one
///   background worker per shard — N independent WAL/flush streams whose
///   I/O waits overlap each other even on a single core.
///
/// All three modes ingest through the facade's group-commit batching API
/// ([`docstore::Datastore::ingest_batch`] with a
/// [`CONCURRENCY_GROUP_COMMIT`]-record sync cadence) instead of hand-rolled
/// per-K-records `sync()` loops. Reported as wall time and throughput. The
/// background gain is bounded by the overlap between the writer's fsync
/// waits and the worker's flush work on one core, and grows with core
/// count; sharding adds scaling on top.
pub fn run_concurrency_comparison(
    kind: DatasetKind,
    records: usize,
    shards: usize,
) -> Vec<Measurement> {
    use docstore::{DatasetOptions, Datastore};

    let dir = std::env::temp_dir().join(format!(
        "bench-concurrency-{}-{}",
        std::process::id(),
        kind.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let docs = generate(&DatasetSpec::new(kind, records));
    let layout = LayoutKind::Amax;
    let budget = 64 * 1024;
    let mut out = Vec::new();
    let mut report = |row: &str, elapsed: Duration| {
        out.push(Measurement {
            row: row.to_string(),
            column: "wall".to_string(),
            value: elapsed.as_secs_f64() * 1e3,
            unit: "ms",
        });
        out.push(Measurement {
            row: row.to_string(),
            column: "krec/s".to_string(),
            value: records as f64 / elapsed.as_secs_f64() / 1e3,
            unit: "krec/s",
        });
    };

    // (mode label, shard count, background workers on/off).
    let modes = [
        ("blocking".to_string(), 1usize, false),
        ("background".to_string(), 1, true),
        (format!("sharded x{shards}"), shards, true),
    ];
    for (label, n_shards, background) in modes {
        let mut store = Datastore::new();
        store
            .open_dataset(
                &label,
                dir.join(&label),
                DatasetOptions::new(layout)
                    .key(kind.key_field())
                    .memtable_budget(budget)
                    .page_size(32 * 1024)
                    .shards(n_shards)
                    .background(background)
                    .max_sealed(8),
            )
            .expect("open dataset");
        let started = Instant::now();
        store
            .ingest_batch(&label, docs.clone(), CONCURRENCY_GROUP_COMMIT)
            .expect("group-committed ingest");
        store.flush(&label).expect("flush");
        report(&label, started.elapsed());

        let count = store
            .query(&label, &Query::count_star(), ExecMode::Compiled)
            .expect("fan-out count");
        assert_eq!(count[0].agg(), &docmodel::Value::Int(records as i64));
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// One measured cell of a figure: a labelled value.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Row label (dataset or query).
    pub row: String,
    /// Column label (layout, engine, selectivity, ...).
    pub column: String,
    /// The measured value.
    pub value: f64,
    /// Unit for printing ("MiB", "ms", "pages", ...).
    pub unit: &'static str,
}

impl Measurement {
    fn new(row: impl Into<String>, column: impl Into<String>, value: f64, unit: &'static str) -> Self {
        Measurement {
            row: row.into(),
            column: column.into(),
            value,
            unit,
        }
    }
}

/// Print a list of measurements as an aligned matrix (rows × columns).
pub fn print_matrix(title: &str, measurements: &[Measurement]) {
    println!("\n== {title} ==");
    let mut rows: Vec<String> = Vec::new();
    let mut cols: Vec<String> = Vec::new();
    for m in measurements {
        if !rows.contains(&m.row) {
            rows.push(m.row.clone());
        }
        if !cols.contains(&m.column) {
            cols.push(m.column.clone());
        }
    }
    let unit = measurements.first().map(|m| m.unit).unwrap_or("");
    print!("{:<22}", format!("({unit})"));
    for c in &cols {
        print!("{c:>14}");
    }
    println!();
    for r in &rows {
        print!("{r:<22}");
        for c in &cols {
            let v = measurements
                .iter()
                .find(|m| &m.row == r && &m.column == c)
                .map(|m| m.value);
            match v {
                Some(v) => print!("{v:>14.2}"),
                None => print!("{:>14}", "-"),
            }
        }
        println!();
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed().as_secs_f64() * 1000.0)
}

// ---------------------------------------------------------------------------
// Table 1 — dataset summary.
// ---------------------------------------------------------------------------

/// Regenerate Table 1 (dataset characteristics) at the scaled record counts.
pub fn table1(scale: f64) -> Vec<Measurement> {
    let mut out = Vec::new();
    for kind in DatasetKind::ALL {
        let records = ((default_records(kind) as f64) * scale).max(100.0) as usize;
        let docs = generate(&DatasetSpec::new(kind, records));
        let summary = summarize(kind, &docs);
        out.push(Measurement::new(kind.name(), "records", summary.records as f64, "count"));
        out.push(Measurement::new(
            kind.name(),
            "avg_record_bytes",
            summary.avg_record_bytes as f64,
            "count",
        ));
        out.push(Measurement::new(
            kind.name(),
            "columns",
            summary.inferred_columns as f64,
            "count",
        ));
        out.push(Measurement::new(
            kind.name(),
            "json_MiB",
            summary.json_bytes as f64 / (1 << 20) as f64,
            "count",
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 12a — storage size after ingestion.
// ---------------------------------------------------------------------------

/// Total on-disk size per dataset and layout (tweet_2 includes its secondary
/// indexes, as in the paper).
pub fn fig12_storage(scale: f64) -> Vec<Measurement> {
    let mut out = Vec::new();
    for kind in DatasetKind::ALL {
        let records = ((default_records(kind) as f64) * scale).max(100.0) as usize;
        let secondary = kind == DatasetKind::Tweet2;
        for layout in LayoutKind::ALL {
            let (dataset, _) = build_dataset(kind, layout, records, secondary);
            let label = if secondary {
                format!("{}*", kind.name())
            } else {
                kind.name().to_string()
            };
            out.push(Measurement::new(
                label,
                layout.name(),
                dataset.total_stored_bytes() as f64 / (1 << 20) as f64,
                "MiB",
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 13a — ingestion time.
// ---------------------------------------------------------------------------

/// Ingestion wall time per dataset and layout. `tweet_2*` runs the
/// update-intensive workload (50% updates) with a timestamp secondary index
/// and a primary-key index, as in §6.3.2.
pub fn fig13_ingestion(scale: f64) -> Vec<Measurement> {
    let mut out = Vec::new();
    for kind in [
        DatasetKind::Cell,
        DatasetKind::Sensors,
        DatasetKind::Tweet1,
        DatasetKind::Wos,
    ] {
        let records = ((default_records(kind) as f64) * scale).max(100.0) as usize;
        for layout in LayoutKind::ALL {
            let (_, elapsed) = build_dataset(kind, layout, records, false);
            out.push(Measurement::new(
                kind.name(),
                layout.name(),
                elapsed.as_secs_f64() * 1000.0,
                "ms",
            ));
        }
    }
    // Update-intensive tweet_2 with secondary index.
    let records = ((default_records(DatasetKind::Tweet2) as f64) * scale).max(100.0) as usize;
    let spec = DatasetSpec::new(DatasetKind::Tweet2, records);
    for layout in LayoutKind::ALL {
        let (dataset, base) = build_dataset(DatasetKind::Tweet2, layout, records, true);
        let updates = generate_updates(&spec, 0.5);
        let started = Instant::now();
        for doc in updates {
            dataset.insert(doc).expect("update");
        }
        dataset.flush().expect("flush");
        let elapsed = base + started.elapsed();
        out.push(Measurement::new(
            "tweet_2*",
            layout.name(),
            elapsed.as_secs_f64() * 1000.0,
            "ms",
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 14 — scan-query execution times per dataset.
// ---------------------------------------------------------------------------

/// The query suite of Table 2, expressed as logical plans.
pub fn queries_for(kind: DatasetKind) -> Vec<(&'static str, Query)> {
    match kind {
        DatasetKind::Cell => vec![
            ("Q1", Query::count_star()),
            (
                "Q2",
                Query::select([Aggregate::Max(Path::parse("duration"))])
                    .group_by("caller")
                    .top_k(10),
            ),
            (
                "Q3",
                Query::count_star().with_filter(Expr::ge("duration", 600)),
            ),
        ],
        DatasetKind::Sensors => vec![
            ("Q1", Query::count_star()),
            (
                "Q2",
                Query::new()
                    .with_unnest("readings")
                    .aggregate_element(Aggregate::Max(Path::parse("temp"))),
            ),
            (
                "Q3",
                Query::new()
                    .with_unnest("readings")
                    .group_by("sensor_id")
                    .aggregate_element(Aggregate::Max(Path::parse("temp")))
                    .top_k(10),
            ),
            (
                "Q4",
                Query::new()
                    .with_filter(Expr::between(
                        "report_time",
                        1_556_400_000_000i64,
                        1_556_400_000_000i64 + 24 * 60 * 60 * 1000,
                    ))
                    .with_unnest("readings")
                    .group_by("sensor_id")
                    .aggregate_element(Aggregate::Max(Path::parse("temp")))
                    .top_k(10),
            ),
        ],
        DatasetKind::Tweet1 | DatasetKind::Tweet2 => vec![
            ("Q1", Query::count_star()),
            (
                "Q2",
                Query::select([Aggregate::MaxLength(Path::parse("text"))])
                    .group_by("user.name")
                    .top_k(10),
            ),
            (
                "Q3",
                Query::count_star()
                    .with_filter(Expr::contains("entities.hashtags[*].text", "jobs"))
                    .group_by("user.name")
                    .top_k(10),
            ),
        ],
        DatasetKind::Wos => vec![
            ("Q1", Query::count_star()),
            (
                "Q2",
                Query::count_star()
                    .with_unnest("static_data.fullrecord_metadata.category_info.subjects.subject")
                    .group_by_element("value")
                    .top_k(10),
            ),
            (
                "Q3",
                Query::count_star()
                    .with_unnest("static_data.fullrecord_metadata.addresses.address_name")
                    .group_by_element("address_spec.country")
                    .top_k(10),
            ),
            (
                "Q4",
                Query::count_star()
                    .with_unnest("static_data.fullrecord_metadata.addresses.address_name")
                    .group_by_element("address_spec.country")
                    .top_k(10),
            ),
        ],
    }
}

/// Execution time of every Table-2 query, per layout (Figure 14a–d), using
/// the compiled engine (the paper reports code-generation numbers for this
/// figure).
pub fn fig14_queries(kind: DatasetKind, scale: f64) -> Vec<Measurement> {
    let records = ((default_records(kind) as f64) * scale).max(100.0) as usize;
    let mut out = Vec::new();
    let engine = QueryEngine::new(ExecMode::Compiled);
    for layout in LayoutKind::ALL {
        let (dataset, _) = build_dataset(kind, layout, records, false);
        for (name, q) in queries_for(kind) {
            let (_, ms) = time(|| engine.execute(&dataset, &q).expect("query"));
            out.push(Measurement::new(name, layout.name(), ms, "ms"));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 10 — interpreted vs. code-generated execution.
// ---------------------------------------------------------------------------

/// Q1 (COUNT(*)) and Q2 (group-by over an unnested array), interpreted vs
/// compiled, across the four layouts.
pub fn fig10_codegen(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Sensors;
    let records = ((default_records(kind) as f64) * scale).max(100.0) as usize;
    let q1 = Query::count_star();
    let q2 = Query::new()
        .with_unnest("readings")
        .group_by("sensor_id")
        .aggregate_element(Aggregate::Max(Path::parse("temp")))
        .top_k(10);
    let mut out = Vec::new();
    for layout in LayoutKind::ALL {
        let (dataset, _) = build_dataset(kind, layout, records, false);
        let (_, ms) = time(|| run_query(&dataset, &q1, ExecMode::Compiled));
        out.push(Measurement::new("Q1 COUNT(*)", layout.name(), ms, "ms"));
        let (_, ms) = time(|| run_query(&dataset, &q2, ExecMode::Interpreted));
        out.push(Measurement::new("Q2 (Interpreted)", layout.name(), ms, "ms"));
        let (_, ms) = time(|| run_query(&dataset, &q2, ExecMode::Compiled));
        out.push(Measurement::new("Q2 (CodeGen)", layout.name(), ms, "ms"));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 15 — secondary-index range queries at different selectivities.
// ---------------------------------------------------------------------------

/// Range COUNT queries on the timestamp index at different selectivities,
/// plus the full-scan alternative, per layout. The *same* logical query is
/// executed both ways: the planner routes the range filter through the
/// index, and an engine with index routing disabled scans.
pub fn fig15_secondary(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Tweet2;
    let records = ((default_records(kind) as f64) * scale).max(200.0) as usize;
    let base_ts = 1_450_000_000_000i64;
    let selectivities = [0.001, 0.01, 0.1, 1.0, 10.0];
    let probe = QueryEngine::with_options(
        ExecMode::Compiled,
        PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
    );
    let scan = QueryEngine::with_options(
        ExecMode::Compiled,
        PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
    );
    let mut out = Vec::new();
    for layout in LayoutKind::ALL {
        let (dataset, _) = build_dataset(kind, layout, records, true);
        for sel in selectivities {
            let span = ((records as f64) * sel / 100.0).max(1.0) as i64;
            let q = Query::count_star().with_filter(Expr::between(
                "timestamp",
                base_ts,
                base_ts + span - 1,
            ));
            let (_, ms) = time(|| probe.execute(&dataset, &q).unwrap());
            out.push(Measurement::new(format!("{sel}% (index)"), layout.name(), ms, "ms"));
        }
        // Scan-based execution of the 10% query (index routing disabled).
        let span = ((records as f64) * 0.1).max(1.0) as i64;
        let q = Query::count_star().with_filter(Expr::between(
            "timestamp",
            base_ts,
            base_ts + span - 1,
        ));
        let (_, ms) = time(|| scan.execute(&dataset, &q).unwrap());
        out.push(Measurement::new("10% (scan)", layout.name(), ms, "ms"));
    }
    out
}

/// Figure 15 crossover sweep: the same range-`COUNT` query at several
/// selectivities, executed three ways — forced through the secondary index,
/// forced to a (zone-map-pruned) scan, and with the cost-based `Auto`
/// policy — per layout. Every cell is also a differential check: the three
/// policies must return identical counts. `Auto`'s choice per selectivity
/// is recorded as `auto picks index` rows (1 = probe, 0 = scan), so the
/// crossover is visible in the emitted `BENCH_fig15.json`.
pub fn fig15_crossover(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Tweet2;
    let records = ((default_records(kind) as f64) * scale).max(200.0) as usize;
    let base_ts = 1_450_000_000_000i64;
    let selectivities = [0.001, 0.01, 0.1, 1.0, 10.0];
    let engines = [
        ("index", AccessPathChoice::ForceIndex),
        ("scan", AccessPathChoice::ForceScan),
        ("auto", AccessPathChoice::Auto),
    ];
    let mut out = Vec::new();
    for layout in [LayoutKind::Vb, LayoutKind::Amax] {
        let (dataset, _) = build_dataset(kind, layout, records, true);
        // Settle the tree so per-component statistics describe one merged
        // component (the steady state the paper measures).
        dataset.compact_fully().expect("compact");
        for sel in selectivities {
            let span = ((records as f64) * sel / 100.0).max(1.0) as i64;
            let q = Query::count_star().with_filter(Expr::between(
                "timestamp",
                base_ts,
                base_ts + span - 1,
            ));
            let mut reference: Option<Vec<query::QueryRow>> = None;
            for (label, choice) in engines {
                let engine = QueryEngine::with_options(
                    ExecMode::Compiled,
                    PlannerOptions::with_access_path(choice),
                );
                let (rows, ms) = time(|| engine.execute(&dataset, &q).unwrap());
                match &reference {
                    None => reference = Some(rows),
                    Some(expected) => {
                        assert_eq!(expected, &rows, "{label} diverged at {sel}% ({layout:?})")
                    }
                }
                out.push(Measurement::new(
                    format!("{sel}% ({label})"),
                    layout.name(),
                    ms,
                    "ms",
                ));
            }
            let auto = QueryEngine::new(ExecMode::Compiled);
            let picked_index = auto
                .explain(&dataset, &q)
                .unwrap()
                .contains("secondary-index range probe");
            out.push(Measurement::new(
                format!("{sel}% (auto picks index)"),
                layout.name(),
                if picked_index { 1.0 } else { 0.0 },
                "bool",
            ));
        }
    }
    out
}

/// Serialize measurements as a small JSON document (hand-rolled: the
/// container has no serde) so perf sweeps leave a machine-readable trail.
pub fn write_measurements_json(
    path: &std::path::Path,
    figure: &str,
    scale: f64,
    rows: &[Measurement],
) -> std::io::Result<()> {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"figure\": \"{}\", \"scale\": {scale}, \"measurements\": [",
        escape(figure)
    ));
    for (i, m) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"row\": \"{}\", \"column\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}",
            escape(&m.row),
            escape(&m.column),
            if m.value.is_finite() { m.value } else { -1.0 },
            escape(m.unit)
        ));
    }
    out.push_str("\n]}\n");
    std::fs::write(path, out)
}

// ---------------------------------------------------------------------------
// Figure 16 — impact of the number of columns accessed.
// ---------------------------------------------------------------------------

/// Count-non-null queries reading 1..=10 columns, scan-based (APAX vs AMAX),
/// plus index-based variants at a fixed selectivity.
pub fn fig16_column_count(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Tweet2;
    let records = ((default_records(kind) as f64) * scale).max(200.0) as usize;
    let columns = [
        "text",
        "lang",
        "retweet_count",
        "favorite_count",
        "user.name",
        "user.followers_count",
        "user.verified",
        "user.lang",
        "entities.hashtags[*].text",
        "coordinates[*]",
    ];
    let engine = QueryEngine::new(ExecMode::Compiled);
    let mut out = Vec::new();
    for layout in [LayoutKind::Apax, LayoutKind::Amax] {
        let (dataset, _) = build_dataset(kind, layout, records, true);
        for n in 1..=columns.len() {
            // Count the non-null values of the first n columns, one query
            // each (the paper picks n random columns; we use a fixed prefix
            // so runs are comparable). A multi-aggregate query could read
            // all n in one pass; one query per column keeps the per-column
            // page counts of the figure.
            let (_, ms) = time(|| {
                for col in &columns[..n] {
                    let qn = Query::select([Aggregate::CountNonNull(Path::parse(col))]);
                    engine.execute(&dataset, &qn).unwrap();
                }
            });
            out.push(Measurement::new(
                format!("{n} columns (scan)"),
                layout.name(),
                ms,
                "ms",
            ));
        }
        // Index-based variant at 1% selectivity reading all ten columns: the
        // range filter on the indexed timestamp routes through the index.
        let base_ts = 1_450_000_000_000i64;
        let span = ((records as f64) * 0.01).max(1.0) as i64;
        let (_, ms) = time(|| {
            for col in &columns {
                let qn = Query::select([Aggregate::CountNonNull(Path::parse(col))])
                    .with_filter(Expr::between("timestamp", base_ts, base_ts + span - 1));
                engine.execute(&dataset, &qn).unwrap();
            }
        });
        out.push(Measurement::new("10 columns (index, 1%)", layout.name(), ms, "ms"));
    }
    out
}

// ---------------------------------------------------------------------------
// Query-API experiment: projection pushdown over the new planner.
// ---------------------------------------------------------------------------

/// Compositional-query experiment over the redesigned planner: a
/// multi-aggregate query (`SELECT user.name, COUNT(*), MAX(retweet_count),
/// AVG(favorite_count) WHERE retweet_count >= k AND EXISTS(entities)`)
/// executed with projection pushdown **on** (the planner derives the touched
/// columns from the expression tree) vs **off** (full-record assembly), in
/// both execution modes, per columnar layout. The gap is what §5 of the
/// paper attributes to reading only the referenced columns' megapages.
pub fn run_query_api_comparison(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Tweet1;
    let records = ((default_records(kind) as f64) * scale).max(200.0) as usize;
    let q = Query::select([
        Aggregate::Count,
        Aggregate::Max(Path::parse("retweet_count")),
        Aggregate::Avg(Path::parse("favorite_count")),
    ])
    .with_filter(Expr::and([
        Expr::ge("retweet_count", 1),
        Expr::exists("entities"),
    ]))
    .group_by("user.name")
    .top_k(10);

    let engines = [
        ("pushdown on", PlannerOptions::default()),
        (
            "pushdown off",
            PlannerOptions { projection_pushdown: false, ..Default::default() },
        ),
    ];
    let mut out = Vec::new();
    for layout in [LayoutKind::Apax, LayoutKind::Amax] {
        let (dataset, _) = build_dataset(kind, layout, records, false);
        let mut reference: Option<Vec<query::QueryRow>> = None;
        for (row, options) in engines {
            for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
                let engine = QueryEngine::with_options(mode, options);
                let (rows, ms) = time(|| engine.execute(&dataset, &q).unwrap());
                // Pushdown must never change the answer.
                match &reference {
                    None => reference = Some(rows),
                    Some(expected) => assert_eq!(expected, &rows, "{row} {mode:?}"),
                }
                let column = format!(
                    "{} ({})",
                    layout.name(),
                    if mode == ExecMode::Compiled { "codegen" } else { "interp" }
                );
                out.push(Measurement::new(row, column, ms, "ms"));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Streaming execution: materialised vs cursor-based scans.
// ---------------------------------------------------------------------------

/// Streaming-execution experiment: the same tweet_1 queries run through the
/// materialised batch oracle (`query::oracle` — the seed's
/// "scan into a Vec, then process" model) and the streaming engine (the
/// pull-based cursor pipeline), per columnar layout. Reported per mode:
///
/// * **wall time** for a filtered multi-aggregate query;
/// * **peak live rows** — the peak-RSS proxy: the largest record batch ever
///   resident. The oracle's is the whole reconciled dataset; the streaming
///   engine's is the merge cursor's high-water mark (at most one decoded
///   leaf per component), read off `ScanCursor::peak_buffered`;
/// * **`SELECT ... ORDER BY key LIMIT 10` pages** — pages the limited
///   streaming scan reads vs the full scan (early termination), plus a
///   cross-check that both modes agree on every answer.
pub fn run_streaming_comparison(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Tweet1;
    let records = ((default_records(kind) as f64) * scale).max(200.0) as usize;
    let agg_query = Query::select([
        Aggregate::Count,
        Aggregate::Max(Path::parse("retweet_count")),
        Aggregate::Avg(Path::parse("favorite_count")),
    ])
    .with_filter(Expr::ge("retweet_count", 1))
    .group_by("user.name")
    .top_k(10);
    let select_limited = Query::select_paths(["text", "retweet_count"])
        .with_filter(Expr::ge("retweet_count", 1))
        .order_by_key()
        .with_limit(10);
    let select_full = Query::select_paths(["text", "retweet_count"])
        .with_filter(Expr::ge("retweet_count", 1))
        .order_by_key();

    let engine = QueryEngine::new(ExecMode::Compiled);
    let mut out = Vec::new();
    for layout in [LayoutKind::Apax, LayoutKind::Amax] {
        // Smaller pages and AMAX mega leaves than `build_dataset`'s
        // defaults: the point of the experiment is early termination, which
        // needs components with a *tail* of leaves to skip.
        let docs = generate(&DatasetSpec::new(kind, records));
        let mut config = DatasetConfig::new(kind.name(), layout)
            .with_key_field(kind.key_field())
            .with_memtable_budget(128 * 1024)
            .with_page_size(8 * 1024);
        config.amax.record_limit = 64;
        let dataset = LsmDataset::new(config);
        for doc in docs {
            dataset.insert(doc).expect("ingest");
        }
        dataset.flush().expect("flush");
        let snapshot = dataset.snapshot();

        // Wall time: batch oracle vs streaming engine, same answer required.
        let (batch_rows, batch_ms) =
            time(|| query::oracle::execute_batch(&snapshot, &agg_query).expect("oracle"));
        let (stream_rows, stream_ms) =
            time(|| engine.execute(&snapshot, &agg_query).expect("streaming"));
        assert_eq!(batch_rows, stream_rows, "streaming diverged from the batch oracle");
        out.push(Measurement::new("materialized wall", layout.name(), batch_ms, "ms"));
        out.push(Measurement::new("streaming wall", layout.name(), stream_ms, "ms"));

        // Peak live rows: whole dataset vs the cursor's high-water mark.
        let materialized_peak = snapshot.scan(None).expect("scan").len();
        let mut cursor = snapshot.cursor(None).expect("cursor");
        let mut streamed = 0usize;
        for entry in cursor.by_ref() {
            entry.expect("entry");
            streamed += 1;
        }
        assert_eq!(streamed, materialized_peak, "cursor row count");
        out.push(Measurement::new(
            "materialized peak rows",
            layout.name(),
            materialized_peak as f64,
            "rows",
        ));
        out.push(Measurement::new(
            "streaming peak rows",
            layout.name(),
            cursor.peak_buffered() as f64,
            "rows",
        ));

        // LIMIT pushdown: pages read by the limited vs the full select.
        let pages_for = |q: &Query| {
            dataset.cache().clear();
            dataset.cache().store().reset_stats();
            let rows = engine.execute(&dataset, q).expect("select");
            (rows, dataset.io_stats().pages_read)
        };
        let (full_rows, full_pages) = pages_for(&select_full);
        let (limited_rows, limited_pages) = pages_for(&select_limited);
        assert_eq!(
            &full_rows[..limited_rows.len()],
            &limited_rows[..],
            "LIMIT must return the first matches"
        );
        out.push(Measurement::new("select full pages", layout.name(), full_pages as f64, "pages"));
        out.push(Measurement::new(
            "select limit10 pages",
            layout.name(),
            limited_pages as f64,
            "pages",
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Observability: telemetry overhead and metric trustworthiness.
// ---------------------------------------------------------------------------

/// Observability experiment: the same tweet_1 ingest + query workload with
/// the telemetry registry on vs off. Self-asserting on two fronts: the
/// instrumentation overhead stays inside a generous bound (hot-path cost is
/// one branch plus a few relaxed atomic adds; events only fire on flush and
/// merge), and the derived `amp.*` gauges are *exactly* recomputable from
/// the raw counters in the same snapshot — the contract downstream
/// consumers (compaction tuning, cache sizing) rely on.
pub fn run_observability_comparison(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Tweet1;
    let records = ((default_records(kind) as f64) * scale).max(300.0) as usize;
    let docs = generate(&DatasetSpec::new(kind, records));
    let agg_query = Query::select([
        Aggregate::Count,
        Aggregate::Max(Path::parse("retweet_count")),
        Aggregate::Avg(Path::parse("favorite_count")),
    ])
    .with_filter(Expr::ge("retweet_count", 1))
    .group_by("user.name")
    .top_k(10);
    let engine = QueryEngine::new(ExecMode::Compiled);

    let mut out = Vec::new();
    let mut total = [0.0f64; 2];
    for (slot, telemetry_on) in [(0usize, true), (1, false)] {
        let column = if telemetry_on { "telemetry on" } else { "telemetry off" };
        let mut config = DatasetConfig::new(kind.name(), LayoutKind::Amax)
            .with_key_field(kind.key_field())
            .with_memtable_budget(64 * 1024)
            .with_page_size(8 * 1024)
            .with_telemetry(telemetry_on);
        config.amax.record_limit = 64;
        let dataset = LsmDataset::new(config);
        let (_, ingest_ms) = time(|| {
            for doc in docs.clone() {
                dataset.insert(doc).expect("ingest");
            }
            dataset.flush().expect("flush");
        });
        let (rows, query_ms) = time(|| {
            let mut rows = Vec::new();
            for _ in 0..5 {
                rows = engine.execute(&dataset, &agg_query).expect("query");
            }
            rows
        });
        assert!(!rows.is_empty(), "the workload query must return groups");
        out.push(Measurement::new("ingest wall", column, ingest_ms, "ms"));
        out.push(Measurement::new("query wall x5", column, query_ms, "ms"));
        total[slot] = ingest_ms + query_ms;

        let metrics = dataset.metrics();
        if telemetry_on {
            // The counters must reflect the workload exactly...
            assert_eq!(metrics.counter("ingest.records"), records as u64);
            assert!(metrics.counter("flush.count") >= 1);
            assert_eq!(
                metrics.histogram("flush.duration_micros").expect("flush histogram").count,
                metrics.counter("flush.count")
            );
            // ...and every amp gauge recomputes from the raw counters and
            // gauges of the *same* snapshot, to the bit.
            let write_amp = metrics.gauge("amp.write").expect("amp.write");
            let expect = metrics.counter("storage.bytes_written") as f64
                / metrics.counter("ingest.bytes") as f64;
            assert!((write_amp - expect).abs() < 1e-9, "amp.write {write_amp} != {expect}");
            let read_amp = metrics.gauge("amp.read").expect("amp.read");
            let expect = metrics.counter("storage.bytes_read") as f64
                / metrics.counter("ingest.bytes") as f64;
            assert!((read_amp - expect).abs() < 1e-9, "amp.read {read_amp} != {expect}");
            let space_amp = metrics.gauge("amp.space").expect("amp.space");
            let expect = metrics.gauge("storage.allocated_bytes").unwrap()
                / metrics.gauge("lsm.live_stored_bytes").unwrap();
            assert!((space_amp - expect).abs() < 1e-9, "amp.space {space_amp} != {expect}");
            out.push(Measurement::new("write amplification", column, write_amp, "x"));
            out.push(Measurement::new("space amplification", column, space_amp, "x"));
        } else {
            assert_eq!(
                metrics.counter("ingest.records"),
                0,
                "disabled telemetry must record nothing"
            );
            assert!(dataset.recent_events(16).is_empty());
        }
    }

    // The overhead bound: on-wall must stay within 50% of off-wall, with a
    // floor that absorbs timer noise at smoke scales where both runs finish
    // in a few milliseconds.
    let (on, off) = (total[0], total[1]);
    assert!(
        on <= off * 1.5 + 50.0,
        "telemetry overhead out of bounds: on={on:.1}ms off={off:.1}ms"
    );
    out.push(Measurement::new(
        "overhead",
        "on vs off",
        if off > 0.0 { (on / off - 1.0) * 100.0 } else { 0.0 },
        "%",
    ));
    out
}

// ---------------------------------------------------------------------------
// Decoded-leaf cache: cold vs warm latency, hit rate, budget sweep.
// ---------------------------------------------------------------------------

/// Decoded-leaf cache experiment (tweet_2, AMAX): the same scan and
/// point-read workloads with and without a budget-backed [`LeafCache`].
/// Self-asserting on the tentpole's acceptance criteria:
///
/// * a warm repeated scan reads **zero pages**, and its cache hits equal
///   exactly the leaves the cold scan decoded;
/// * warm cached point reads beat uncached ones by at least 2x;
/// * across a budget sweep the cache's resident bytes never exceed its
///   capacity, and the hit rate on a re-scanned hot range is monotone.
///
/// [`LeafCache`]: storage::LeafCache
pub fn run_cache_comparison(scale: f64) -> Vec<Measurement> {
    use std::sync::Arc;
    use storage::LeafCache;

    let kind = DatasetKind::Tweet2;
    let records = ((default_records(kind) as f64) * scale).max(300.0) as usize;
    let docs = generate(&DatasetSpec::new(kind, records));
    let keys: Vec<docmodel::Value> = docs
        .iter()
        .map(|d| d.get_field(kind.key_field()).expect("key field").clone())
        .collect();
    let build = |cache: Option<Arc<LeafCache>>| {
        let mut config = DatasetConfig::new(kind.name(), LayoutKind::Amax)
            .with_key_field(kind.key_field())
            .with_memtable_budget(64 * 1024)
            .with_page_size(8 * 1024);
        if let Some(cache) = cache {
            config = config.with_memory_budget(16 << 20).with_leaf_cache(cache);
        }
        config.amax.record_limit = 64;
        let dataset = LsmDataset::new(config);
        for doc in docs.clone() {
            dataset.insert(doc).expect("ingest");
        }
        dataset.flush().expect("flush");
        dataset
    };
    let mut out = Vec::new();
    let engine = QueryEngine::new(ExecMode::Compiled);
    let scan = Query::count_star().with_filter(Expr::ge("timestamp", 0));

    // Cold vs warm scan through one cache: the warm pass must touch no
    // page and score a hit on every leaf the cold pass decoded.
    let cache = Arc::new(LeafCache::new(8 << 20));
    let cached = build(Some(cache.clone()));
    cache.clear();
    let before = cached.io_stats();
    let (cold_rows, cold_scan) = time(|| engine.execute(&cached, &scan).expect("cold scan"));
    let mid = cached.io_stats();
    let (warm_rows, warm_scan) = time(|| engine.execute(&cached, &scan).expect("warm scan"));
    let after = cached.io_stats();
    assert_eq!(cold_rows, warm_rows, "the cache must never change answers");
    let cold_misses = mid.leaf_cache_misses - before.leaf_cache_misses;
    assert!(cold_misses > 0, "the cold scan must decode leaves");
    assert_eq!(after.pages_read, mid.pages_read, "a warm re-scan must read zero pages");
    assert_eq!(
        after.leaf_cache_hits - mid.leaf_cache_hits,
        cold_misses,
        "warm hits must equal the leaves the cold scan decoded"
    );
    out.push(Measurement::new("hot-range scan", "cold", cold_scan, "ms"));
    out.push(Measurement::new("hot-range scan", "warm", warm_scan, "ms"));

    // Point reads: a warm cache vs no cache at all, same keys, same order.
    // Several rounds amortise timer noise at smoke scales.
    const ROUNDS: usize = 3;
    let uncached = build(None);
    let probe: Vec<&docmodel::Value> = keys.iter().step_by(3).collect();
    for key in &probe {
        cached.lookup(key, None).expect("warmup lookup").expect("present");
    }
    let point_pass = |dataset: &LsmDataset| {
        for _ in 0..ROUNDS {
            for key in &probe {
                dataset.lookup(key, None).expect("lookup").expect("present");
            }
        }
    };
    let ((), warm_points) = time(|| point_pass(&cached));
    let ((), cold_points) = time(|| point_pass(&uncached));
    let speedup = cold_points / warm_points.max(1e-6);
    assert!(
        speedup >= 2.0,
        "cached point reads must be at least 2x faster: cold {cold_points:.2}ms vs warm {warm_points:.2}ms"
    );
    out.push(Measurement::new("point reads", "uncached", cold_points, "ms"));
    out.push(Measurement::new("point reads", "warm cache", warm_points, "ms"));
    out.push(Measurement::new("point reads", "speedup", speedup, "x"));

    // Budget sweep: residency must stay bounded at every capacity, and a
    // re-scan of the same hot range can only raise the hit rate.
    for budget in [32usize << 10, 256 << 10, 4 << 20] {
        let cache = Arc::new(LeafCache::new(budget));
        let dataset = build(Some(cache.clone()));
        cache.clear();
        let rate = |s: storage::LeafCacheStats| {
            s.hits as f64 / (s.hits + s.misses).max(1) as f64
        };
        engine.execute(&dataset, &scan).expect("sweep scan");
        let first = rate(cache.stats());
        engine.execute(&dataset, &scan).expect("sweep re-scan");
        let stats = cache.stats();
        assert!(
            stats.resident_bytes <= stats.capacity_bytes,
            "resident bytes must honour the budget: {stats:?}"
        );
        let second = rate(stats);
        assert!(second >= first, "hit rate must be monotone: {first} -> {second}");
        let label = format!("budget {} KiB", budget >> 10);
        out.push(Measurement::new(label.clone(), "resident", (stats.resident_bytes >> 10) as f64, "KiB"));
        out.push(Measurement::new(label, "hit rate", second * 100.0, "%"));
    }
    out
}

// ---------------------------------------------------------------------------
// Filter pushdown (late materialization): selectivity × layout sweep.
// ---------------------------------------------------------------------------

/// Filter-pushdown experiment: a narrow sortable filter column (`ts`) next
/// to a fat payload column, scanned at 0.1% / 1% / 10% / 100% selectivity
/// per layout (VB / APAX / AMAX) with pushdown on vs off.
///
/// Self-asserting on the tentpole's acceptance criteria:
///
/// * pushdown never changes the answer, at any cell of the sweep;
/// * at ≤ 1% selectivity on the columnar layouts, the pushed scan reads
///   **strictly fewer pages**, assembles ≈ the matching records instead of
///   the dataset, and improves wall time by at least 2x;
/// * at 100% selectivity (nothing filterable) the pushed scan's overhead —
///   the extra filter-column decode + per-record evaluation — stays ≤ 10%.
pub fn run_pushdown_comparison(scale: f64) -> Vec<Measurement> {
    use docmodel::doc;

    const ROUNDS: usize = 3;
    let records = ((8_000f64 * scale).max(640.0)) as usize;
    let build = |layout: LayoutKind| {
        let mut config = DatasetConfig::new("pushdown", layout)
            .with_key_field("id")
            .with_memtable_budget(usize::MAX)
            .with_page_size(8 * 1024);
        config.amax.record_limit = 64;
        let dataset = LsmDataset::new(config);
        for i in 0..records as i64 {
            dataset
                .insert(doc!({
                    "id": i,
                    "ts": i,
                    "payload": (format!("fat payload column for record {i}: {}", "x".repeat(120)))
                }))
                .expect("ingest");
        }
        dataset.flush().expect("flush");
        dataset
    };
    let pushed_engine = QueryEngine::new(ExecMode::Compiled);
    let unpushed_engine = QueryEngine::with_options(
        ExecMode::Compiled,
        PlannerOptions {
            filter_pushdown: false,
            ..Default::default()
        },
    );

    // One cold measured pass: clear the cache so every engine pays its real
    // page reads, take the best of `ROUNDS` for timing robustness, and
    // report the I/O counters of the final pass.
    let measure = |dataset: &LsmDataset, engine: &QueryEngine, query: &Query| {
        let mut wall = f64::MAX;
        let mut rows = Vec::new();
        let mut stats = dataset.io_stats();
        for _ in 0..ROUNDS {
            dataset.cache().clear();
            dataset.cache().store().reset_stats();
            let (r, ms) = time(|| engine.execute(dataset, query).expect("scan"));
            wall = wall.min(ms);
            rows = r;
            stats = dataset.io_stats();
        }
        (rows, wall, stats)
    };

    let mut out = Vec::new();
    for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
        let dataset = build(layout);
        let columnar = matches!(layout, LayoutKind::Apax | LayoutKind::Amax);
        for (label, selectivity) in [("0.1%", 0.001), ("1%", 0.01), ("10%", 0.1), ("100%", 1.0)]
        {
            let matched = ((records as f64 * selectivity).round() as i64).max(1);
            let query = Query::count_star().with_filter(Expr::lt("ts", matched));
            let (on_rows, on_ms, on) = measure(&dataset, &pushed_engine, &query);
            let (off_rows, off_ms, off) = measure(&dataset, &unpushed_engine, &query);
            assert_eq!(
                on_rows, off_rows,
                "pushdown must never change answers: {} {label}",
                layout.name()
            );

            if columnar && selectivity <= 0.01 {
                assert!(
                    on.pages_read < off.pages_read,
                    "{} {label}: pushdown must read strictly fewer pages ({} vs {})",
                    layout.name(),
                    on.pages_read,
                    off.pages_read
                );
                // Assembly tracks matches (± the one live leaf the filter
                // evaluates record by record), not the dataset.
                assert!(
                    on.records_assembled <= matched as u64 + 64,
                    "{} {label}: assembled {} for {} matches",
                    layout.name(),
                    on.records_assembled,
                    matched
                );
                assert_eq!(off.records_assembled, records as u64);
                assert!(
                    off_ms >= on_ms * 2.0,
                    "{} {label}: pushdown must be at least 2x faster ({on_ms:.2}ms vs {off_ms:.2}ms)",
                    layout.name()
                );
            }
            if columnar && selectivity >= 1.0 {
                assert!(
                    on_ms <= off_ms * 1.10 + 1.0,
                    "{} 100%: pushdown overhead above 10% ({on_ms:.2}ms vs {off_ms:.2}ms)",
                    layout.name()
                );
            }

            let row = format!("{} {label}", layout.name());
            out.push(Measurement::new(row.clone(), "pushed", on_ms, "ms"));
            out.push(Measurement::new(row.clone(), "unpushed", off_ms, "ms"));
            out.push(Measurement::new(row.clone(), "pages on", on.pages_read as f64, "pages"));
            out.push(Measurement::new(row.clone(), "pages off", off.pages_read as f64, "pages"));
            out.push(Measurement::new(row.clone(), "assembled", on.records_assembled as f64, "records"));
            out.push(Measurement::new(row.clone(), "filtered", on.records_filtered_pre_assembly as f64, "records"));
            out.push(Measurement::new(row, "skip leaves", on.leaves_skipped as f64, "leaves"));
        }
    }
    out
}

/// Compaction-strategy sweep: tiered vs leveled vs lazy-leveled under an
/// update-heavy and an append-only workload (tweet_1, AMAX).
///
/// Per strategy × workload the sweep reports ingest wall time, merge count,
/// and the `amp.write` / `amp.space` gauges from the metrics snapshot (the
/// telemetry groundwork: every gauge recomputes from raw counters of the
/// same snapshot). The update-heavy leg additionally drives the page-space
/// GC: after the churn settles, `reclaim_space` must leave a **fully
/// packed** page file — zero free slots, every page referenced by a live
/// component — so the reported space amplification reflects live data, not
/// freed-slot or orphaned-page leaks.
pub fn run_compaction_comparison(scale: f64) -> Vec<Measurement> {
    const UPDATE_ROUNDS: usize = 4;
    let kind = DatasetKind::Tweet1;
    let records = ((default_records(kind) as f64) * scale).max(300.0) as usize;
    let spec = DatasetSpec::new(kind, records);
    let docs = generate(&spec);
    let strategies: [(&str, CompactionSpec); 3] = [
        ("tiered", CompactionSpec::tiered(1.2, 5)),
        ("leveled", CompactionSpec::leveled()),
        ("lazy-leveled", CompactionSpec::lazy_leveled()),
    ];

    let mut out = Vec::new();
    for workload in ["append-only", "update-heavy"] {
        for (name, compaction) in &strategies {
            let config = DatasetConfig::new(kind.name(), LayoutKind::Amax)
                .with_key_field(kind.key_field())
                .with_memtable_budget(32 * 1024)
                .with_page_size(8 * 1024)
                .with_compaction(*compaction);
            let dataset = LsmDataset::new(config);
            let (_, ingest_ms) = time(|| {
                let rounds = if workload == "update-heavy" { UPDATE_ROUNDS } else { 1 };
                for _ in 0..rounds {
                    for doc in docs.clone() {
                        dataset.insert(doc).expect("ingest");
                    }
                    dataset.flush().expect("flush");
                }
            });
            assert_eq!(dataset.count().expect("count"), records, "{name}/{workload}");

            if workload == "update-heavy" {
                // The GC must leave no dead slots behind: the page file is
                // exactly the live components, so the amp.space gauge below
                // measures fragmentation, not leaks.
                dataset.reclaim_space().expect("reclaim");
                let store = dataset.cache().store();
                assert_eq!(
                    store.free_page_count(),
                    0,
                    "{name}: reclaim_space must fully pack the page file"
                );
            }

            let metrics = dataset.metrics();
            let row = |what: &str| format!("{workload}: {what}");
            out.push(Measurement::new(row("ingest wall"), *name, ingest_ms, "ms"));
            out.push(Measurement::new(
                row("merges"),
                *name,
                metrics.counter("merge.count") as f64,
                "x",
            ));
            out.push(Measurement::new(
                row("write amplification"),
                *name,
                metrics.gauge("amp.write").expect("amp.write"),
                "x",
            ));
            out.push(Measurement::new(
                row("space amplification"),
                *name,
                metrics.gauge("amp.space").expect("amp.space"),
                "x",
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Network front-end: RESP wire-protocol load generator.
// ---------------------------------------------------------------------------

/// Requests each load-generator connection issues per grid cell, before
/// scaling.
const SERVER_BENCH_REQUESTS: f64 = 4_000.0;

/// Load-generate the RESP server over localhost TCP: a connections ×
/// pipeline-depth grid ({1, 8} × {1, 16}) at a 70% GET / 30% SET mix over a
/// preloaded keyspace. Each cell starts a fresh in-memory server, preloads
/// the keys with group-committed `MSET` batches, then hammers it with one
/// client thread per connection; per-burst round-trip latency goes into a
/// shared [`telemetry::Histogram`] and the cell reports throughput plus
/// p50/p95/p99 (per burst — at depth 1 that is per request).
///
/// Self-asserting: every reply is checked (`+OK` for writes, a bulk
/// document for reads — the keyspace is fully preloaded so misses are
/// bugs), and the server's own `server.*` counters must agree exactly with
/// the client-side issue counts.
pub fn run_server_benchmark(scale: f64) -> Vec<Measurement> {
    use std::sync::Arc;

    use server::{CommandKind, RespClient, Server, ServerConfig};
    use telemetry::Histogram;

    let keyspace = ((2_000.0 * scale) as i64).max(200);
    // A multiple of the deepest pipeline so every burst is full.
    let requests_per_conn = (((SERVER_BENCH_REQUESTS * scale) as usize).max(320) / 16) * 16;
    let grid = [(1usize, 1usize), (1, 16), (8, 1), (8, 16)];

    let doc = |key: i64| format!(r#"{{"num": {}, "nested": {{"tag": "t{}"}}}}"#, key % 977, key % 13);
    let mut out = Vec::new();
    for (connections, depth) in grid {
        let handle = Server::start(ServerConfig { shards: 4, ..ServerConfig::default() })
            .expect("start server");

        // Preload the whole keyspace so every GET hits.
        let mut admin = RespClient::connect(handle.addr()).expect("connect");
        for chunk in (0..keyspace).collect::<Vec<_>>().chunks(128) {
            let pairs: Vec<(String, String)> =
                chunk.iter().map(|&k| (k.to_string(), doc(k))).collect();
            let borrowed: Vec<(&str, &str)> =
                pairs.iter().map(|(k, d)| (k.as_str(), d.as_str())).collect();
            let reply = admin.mset(&borrowed).expect("preload");
            assert_eq!(reply.as_integer(), Some(chunk.len() as i64), "preload ack");
        }

        let latency = Arc::new(Histogram::default());
        let started = Instant::now();
        let workers: Vec<_> = (0..connections)
            .map(|conn| {
                let addr = handle.addr();
                let latency = Arc::clone(&latency);
                std::thread::spawn(move || {
                    let mut client = RespClient::connect(addr).expect("connect");
                    let mut sets = 0u64;
                    let mut gets = 0u64;
                    let mut burst: Vec<Vec<String>> = Vec::with_capacity(depth);
                    for i in 0..requests_per_conn {
                        // Deterministic mix and key choice (Weyl-ish mixing
                        // so threads don't march in lockstep).
                        let n = (conn * requests_per_conn + i) as i64;
                        let key = (n.wrapping_mul(2_654_435_761) as u64 % keyspace as u64) as i64;
                        if n % 10 < 3 {
                            sets += 1;
                            burst.push(vec!["SET".into(), key.to_string(), doc(key)]);
                        } else {
                            gets += 1;
                            burst.push(vec!["GET".into(), key.to_string()]);
                        }
                        if burst.len() == depth {
                            let t = Instant::now();
                            let replies = client.pipeline(&burst).expect("pipeline");
                            latency.record(t.elapsed().as_micros() as u64);
                            for (reply, req) in replies.iter().zip(&burst) {
                                match req[0].as_str() {
                                    "SET" => assert_eq!(reply.as_text(), Some("OK"), "{reply:?}"),
                                    _ => assert!(
                                        reply.as_text().is_some(),
                                        "preloaded key missed: {req:?} -> {reply:?}"
                                    ),
                                }
                            }
                            burst.clear();
                        }
                    }
                    (sets, gets)
                })
            })
            .collect();
        let mut issued_sets = 0u64;
        let mut issued_gets = 0u64;
        for worker in workers {
            let (sets, gets) = worker.join().expect("load thread");
            issued_sets += sets;
            issued_gets += gets;
        }
        let elapsed = started.elapsed();

        // The wire-side counters must agree exactly with what we issued.
        let metrics = handle.metrics();
        assert_eq!(metrics.requests_for(CommandKind::Set), issued_sets, "SET count");
        assert_eq!(metrics.requests_for(CommandKind::Get), issued_gets, "GET count");

        let total = (issued_sets + issued_gets) as f64;
        let snap = latency.snapshot();
        let row = format!("{connections} conn x {depth} deep");
        out.push(Measurement::new(&row, "kreq/s", total / elapsed.as_secs_f64() / 1e3, "mixed"));
        out.push(Measurement::new(&row, "p50_us", snap.quantile(0.50) as f64, "mixed"));
        out.push(Measurement::new(&row, "p95_us", snap.quantile(0.95) as f64, "mixed"));
        out.push(Measurement::new(&row, "p99_us", snap.quantile(0.99) as f64, "mixed"));
        handle.shutdown();
        handle.join();
    }
    out
}

// ---------------------------------------------------------------------------
// Ablations called out in DESIGN.md.
// ---------------------------------------------------------------------------

/// Ablation: AMAX storage size as a function of the empty-page tolerance.
pub fn ablation_empty_page_tolerance(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Tweet2;
    let records = ((default_records(kind) as f64) * scale).max(200.0) as usize;
    let docs = generate(&DatasetSpec::new(kind, records));
    let mut out = Vec::new();
    for tolerance in [0.0, 0.1, 0.2, 0.5, 1.0] {
        let mut config = DatasetConfig::new("ablation", LayoutKind::Amax)
            .with_memtable_budget(256 * 1024)
            .with_page_size(32 * 1024);
        config.amax.empty_page_tolerance = tolerance;
        let dataset = LsmDataset::new(config);
        for doc in docs.clone() {
            dataset.insert(doc).unwrap();
        }
        dataset.flush().unwrap();
        out.push(Measurement::new(
            format!("tolerance {tolerance}"),
            "AMAX",
            dataset.primary_stored_bytes() as f64 / 1024.0,
            "KiB",
        ));
    }
    out
}

/// Ablation: page-level compression on/off per layout (storage size).
pub fn ablation_compression(scale: f64) -> Vec<Measurement> {
    let kind = DatasetKind::Sensors;
    let records = ((default_records(kind) as f64) * scale).max(200.0) as usize;
    let docs = generate(&DatasetSpec::new(kind, records));
    let mut out = Vec::new();
    for layout in LayoutKind::ALL {
        for compress in [true, false] {
            let mut config = DatasetConfig::new("ablation", layout)
                .with_memtable_budget(256 * 1024)
                .with_page_size(32 * 1024);
            config.compress_pages = compress;
            let dataset = LsmDataset::new(config);
            for doc in docs.clone() {
                dataset.insert(doc).unwrap();
            }
            dataset.flush().unwrap();
            let row = if compress { "compressed" } else { "raw" };
            out.push(Measurement::new(
                row,
                layout.name(),
                dataset.primary_stored_bytes() as f64 / 1024.0,
                "KiB",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_functions_run_at_tiny_scale() {
        // Smoke-test every experiment at 5% scale so regressions in the
        // harness itself show up in `cargo test`.
        assert!(!table1(0.05).is_empty());
        assert!(!fig12_storage(0.05).is_empty());
        assert!(!fig10_codegen(0.05).is_empty());
        let cell = fig14_queries(DatasetKind::Cell, 0.05);
        assert_eq!(cell.len(), 3 * LayoutKind::ALL.len());
        assert!(!fig15_secondary(0.05).is_empty());
        assert!(!ablation_compression(0.05).is_empty());
        // 2 workloads x 3 strategies x 4 measurements (self-asserting: count
        // integrity per cell, fully-packed page file after update-heavy GC).
        assert_eq!(run_compaction_comparison(0.05).len(), 2 * 3 * 4);
    }

    #[test]
    fn fig15_crossover_sweeps_and_agrees_across_policies() {
        // The sweep itself asserts index == scan == auto per cell; here we
        // additionally check the crossover shape is recorded: Auto must pick
        // the probe somewhere and the scan somewhere (tweet_2's timestamp is
        // dense and unique, so 0.001% is a handful of records and 10% is
        // hundreds), and at the extremes it must side with the winner.
        let rows = fig15_crossover(0.25);
        // 2 layouts x 5 selectivities x (3 timings + 1 choice).
        assert_eq!(rows.len(), 2 * 5 * 4);
        let choices: Vec<&Measurement> = rows
            .iter()
            .filter(|m| m.row.contains("auto picks index"))
            .collect();
        assert_eq!(choices.len(), 10);
        for layout in ["VB", "AMAX"] {
            let lowest = choices
                .iter()
                .find(|m| m.row.starts_with("0.001%") && m.column == layout)
                .unwrap();
            let highest = choices
                .iter()
                .find(|m| m.row.starts_with("10%") && m.column == layout)
                .unwrap();
            // At 10% a scan always wins (matches outnumber leaves).
            assert_eq!(highest.value, 0.0, "{layout}: auto must scan at 10%");
            // At 0.001% the probe wins wherever lookups are cheaper than a
            // leaf-wide scan; VB components have many single-page leaves, so
            // the crossover must be visible there.
            if layout == "VB" {
                assert_eq!(lowest.value, 1.0, "{layout}: auto must probe at 0.001%");
            }
        }
    }

    #[test]
    fn measurements_json_is_well_formed_enough() {
        let rows = vec![
            Measurement::new("0.1% (auto)", "VB", 1.25, "ms"),
            Measurement::new("quote\"row", "AMAX", 0.0, "bool"),
        ];
        let path = std::env::temp_dir().join(format!(
            "bench-json-test-{}.json",
            std::process::id()
        ));
        write_measurements_json(&path, "fig15", 0.25, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"figure\": \"fig15\""), "{text}");
        assert!(text.contains("\"value\": 1.25"), "{text}");
        assert!(text.contains("quote\\\"row"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn query_api_comparison_runs_and_validates_pushdown() {
        let rows = run_query_api_comparison(0.1);
        // 2 planner settings x 2 engines x 2 layouts.
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|m| m.row == "pushdown on"));
        assert!(rows.iter().any(|m| m.row == "pushdown off"));
    }

    #[test]
    fn streaming_comparison_bounds_memory_and_pages() {
        let rows = run_streaming_comparison(0.25);
        // 2 layouts x 6 measurements.
        assert_eq!(rows.len(), 12);
        let get = |row: &str, col: &str| {
            rows.iter()
                .find(|m| m.row == row && m.column == col)
                .map(|m| m.value)
                .unwrap_or_else(|| panic!("missing {row}/{col}"))
        };
        for layout in ["APAX", "AMAX"] {
            // The streaming peak is a small fraction of the materialised one
            // (one leaf per component vs the whole dataset).
            assert!(
                get("streaming peak rows", layout) < get("materialized peak rows", layout),
                "{layout}: streaming must hold fewer rows than materialisation"
            );
            // LIMIT 10 must read strictly fewer pages than the full select.
            assert!(
                get("select limit10 pages", layout) < get("select full pages", layout),
                "{layout}: LIMIT must terminate the scan early"
            );
        }
    }

    #[test]
    fn observability_comparison_self_asserts_and_reports_both_settings() {
        // The run itself asserts the overhead bound and the amp-gauge
        // recomputation; here we check the matrix shape: 2 walls per
        // setting, 2 amp gauges (telemetry on only), 1 overhead row.
        let rows = run_observability_comparison(0.1);
        assert_eq!(rows.len(), 7);
        for column in ["telemetry on", "telemetry off"] {
            for row in ["ingest wall", "query wall x5"] {
                assert!(
                    rows.iter().any(|m| m.row == row && m.column == column),
                    "missing {row}/{column}"
                );
            }
        }
        let amp = rows
            .iter()
            .find(|m| m.row == "write amplification")
            .expect("write amplification row");
        assert!(amp.value > 0.0);
        assert!(rows.iter().any(|m| m.row == "overhead"));
    }

    #[test]
    fn concurrency_comparison_runs_and_reports_all_modes() {
        let rows = run_concurrency_comparison(DatasetKind::Cell, 600, 4);
        // Three ingest modes x (wall, throughput).
        assert_eq!(rows.len(), 6);
        for mode in ["blocking", "background", "sharded x4"] {
            let wall = rows
                .iter()
                .find(|m| m.row == mode && m.column == "wall")
                .unwrap_or_else(|| panic!("missing wall measurement for {mode}"));
            assert!(wall.value > 0.0);
        }
    }

    #[test]
    fn server_benchmark_self_asserts_and_reports_the_grid() {
        // The run itself asserts reply correctness and the exact agreement
        // between issued and wire-counted requests; here we check the
        // matrix shape: 4 grid cells x (throughput + 3 percentiles).
        let rows = run_server_benchmark(0.05);
        assert_eq!(rows.len(), 4 * 4);
        for cell in ["1 conn x 1 deep", "1 conn x 16 deep", "8 conn x 1 deep", "8 conn x 16 deep"] {
            let throughput = rows
                .iter()
                .find(|m| m.row == cell && m.column == "kreq/s")
                .unwrap_or_else(|| panic!("missing throughput for {cell}"));
            assert!(throughput.value > 0.0);
            let p50 = rows.iter().find(|m| m.row == cell && m.column == "p50_us").unwrap();
            let p99 = rows.iter().find(|m| m.row == cell && m.column == "p99_us").unwrap();
            assert!(p50.value <= p99.value, "{cell}: p50 {} > p99 {}", p50.value, p99.value);
        }
    }

    #[test]
    fn storage_shape_matches_the_paper_on_sensors() {
        // AMAX/APAX beat the row layouts by a wide margin on numeric data.
        let rows = fig12_storage(0.2);
        let get = |row: &str, col: &str| {
            rows.iter()
                .find(|m| m.row == row && m.column == col)
                .map(|m| m.value)
                .unwrap()
        };
        assert!(get("sensors", "AMAX") < get("sensors", "VB"));
        assert!(get("sensors", "APAX") < get("sensors", "Open"));
    }

    #[test]
    fn print_matrix_does_not_panic() {
        print_matrix("test", &table1(0.05));
    }
}
