//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin experiments            # everything, default scale
//! cargo run --release -p bench --bin experiments -- --scale 0.5 --only fig12,fig14
//! cargo run --release -p bench --bin experiments -- --only fig15 --smoke
//! ```
//!
//! Output is a set of aligned matrices, one per table/figure, with the same
//! rows and columns the paper reports. See EXPERIMENTS.md for the comparison
//! against the paper's numbers. `--smoke` caps the scale at 0.05 so CI can
//! exercise a sweep end-to-end in seconds. The `fig15` selection
//! additionally runs the scan-vs-index crossover sweep (ForceIndex vs
//! ForceScan vs the cost-based Auto) and writes it to `BENCH_fig15.json`.

use bench::*;
use datagen::DatasetKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut only: Option<Vec<String>> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number");
                i += 2;
            }
            "--only" => {
                only = Some(
                    args.get(i + 1)
                        .expect("--only needs a list")
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if smoke {
        scale = scale.min(0.05);
    }
    let wanted = |name: &str| only.as_ref().map(|o| o.iter().any(|x| x == name)).unwrap_or(true);

    println!("Columnar Formats for Schemaless LSM-based Document Stores — reproduction harness");
    println!("scale factor: {scale}");

    if wanted("table1") {
        print_matrix("Table 1: dataset summary", &table1(scale));
    }
    if wanted("fig10") {
        print_matrix(
            "Figure 10: interpreted vs code-generated execution (sensors)",
            &fig10_codegen(scale),
        );
    }
    if wanted("fig12") {
        print_matrix("Figure 12a: on-disk storage size", &fig12_storage(scale));
    }
    if wanted("fig13") {
        print_matrix("Figure 13a: ingestion time", &fig13_ingestion(scale));
    }
    if wanted("fig14") {
        for kind in [
            DatasetKind::Cell,
            DatasetKind::Sensors,
            DatasetKind::Tweet1,
            DatasetKind::Wos,
        ] {
            print_matrix(
                &format!("Figure 14: query times ({})", kind.name()),
                &fig14_queries(kind, scale),
            );
        }
    }
    if wanted("fig15") {
        print_matrix(
            "Figure 15: secondary-index range queries (tweet_2)",
            &fig15_secondary(scale),
        );
        let crossover = fig15_crossover(scale);
        print_matrix(
            "Figure 15 crossover: index vs scan vs cost-based Auto (tweet_2)",
            &crossover,
        );
        let out = std::path::Path::new("BENCH_fig15.json");
        match write_measurements_json(out, "fig15_crossover", scale, &crossover) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
    if wanted("fig16") {
        print_matrix(
            "Figure 16: impact of number of columns accessed (tweet_2)",
            &fig16_column_count(scale),
        );
    }
    if wanted("concurrency") {
        let records = (8_000_f64 * scale).max(500.0) as usize;
        let shards = std::thread::available_parallelism()
            .map(|n| n.get().clamp(2, 8))
            .unwrap_or(4);
        print_matrix(
            "Concurrency: blocking vs background flush/merge vs sharded parallel ingest (cell)",
            &run_concurrency_comparison(DatasetKind::Cell, records, shards),
        );
    }
    if wanted("compaction") {
        let rows = run_compaction_comparison(scale);
        print_matrix(
            "Compaction: tiered vs leveled vs lazy-leveled, amp + GC packing (tweet_1)",
            &rows,
        );
        let out = std::path::Path::new("BENCH_compaction.json");
        match write_measurements_json(out, "compaction_strategies", scale, &rows) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
    if wanted("cache") {
        let rows = run_cache_comparison(scale);
        print_matrix(
            "Decoded-leaf cache: cold vs warm latency, hit rate, budget sweep (tweet_2)",
            &rows,
        );
        let out = std::path::Path::new("BENCH_cache.json");
        match write_measurements_json(out, "leaf_cache", scale, &rows) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
    if wanted("pushdown") {
        let rows = run_pushdown_comparison(scale);
        print_matrix(
            "Filter pushdown: selectivity x layout, pushed vs unpushed scans",
            &rows,
        );
        let out = std::path::Path::new("BENCH_pushdown.json");
        match write_measurements_json(out, "pushdown_selectivity", scale, &rows) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
    if wanted("streaming") {
        print_matrix(
            "Streaming execution: materialised batch vs cursor pipeline (tweet_1)",
            &run_streaming_comparison(scale),
        );
    }
    if wanted("observability") {
        print_matrix(
            "Observability: telemetry on vs off, overhead and amplification gauges (tweet_1)",
            &run_observability_comparison(scale),
        );
    }
    if wanted("query_api") {
        print_matrix(
            "Query API: projection pushdown on vs off over the planner (tweet_1)",
            &run_query_api_comparison(scale),
        );
    }
    if wanted("server") {
        let rows = run_server_benchmark(scale);
        print_matrix(
            "Server: RESP front-end load generator, connections x pipeline depth",
            &rows,
        );
        let out = std::path::Path::new("BENCH_server.json");
        match write_measurements_json(out, "server_load", scale, &rows) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
    if wanted("durability") {
        let records = (3_000_f64 * scale).max(200.0) as usize;
        print_matrix(
            "Durability: ingest wall time with WAL+manifest off vs on (sensors)",
            &run_durability_comparison(DatasetKind::Sensors, records),
        );
    }
    if wanted("ablations") {
        print_matrix(
            "Ablation: AMAX empty-page tolerance",
            &ablation_empty_page_tolerance(scale),
        );
        print_matrix(
            "Ablation: page compression on/off (sensors)",
            &ablation_compression(scale),
        );
    }
}
