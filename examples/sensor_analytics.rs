//! Sensor analytics: the numeric-heavy workload where columnar layouts shine.
//!
//! Builds the synthetic `sensors` dataset in all four layouts, compares their
//! on-disk footprint, and runs the paper's sensors queries (Table 2) in both
//! execution modes, printing per-layout timings and page I/O.
//!
//! ```text
//! cargo run --release --example sensor_analytics
//! ```

use std::time::Instant;

use lsm_columnar::datagen::{generate, DatasetKind, DatasetSpec};
use lsm_columnar::lsm::{DatasetConfig, LsmDataset};
use lsm_columnar::query::{Aggregate, ExecMode, Query, QueryEngine};
use lsm_columnar::storage::LayoutKind;
use lsm_columnar::Path;

fn main() {
    let records = 4_000;
    let docs = generate(&DatasetSpec::new(DatasetKind::Sensors, records));
    println!("generated {records} sensor reports");

    // Q3 of the sensors suite: top-10 sensors by maximum reading.
    let top_sensors = Query::new()
        .with_unnest("readings")
        .group_by("sensor_id")
        .aggregate_element(Aggregate::Max(Path::parse("temp")))
        .top_k(10);

    println!(
        "\n{:<8} {:>12} {:>14} {:>14} {:>12}",
        "layout", "size (KiB)", "interp (ms)", "compiled (ms)", "pages read"
    );
    for layout in LayoutKind::ALL {
        let dataset = LsmDataset::new(
            DatasetConfig::new("sensors", layout)
                .with_memtable_budget(512 * 1024)
                .with_page_size(32 * 1024),
        );
        for doc in docs.clone() {
            dataset.insert(doc).unwrap();
        }
        dataset.flush().unwrap();
        let size_kib = dataset.primary_stored_bytes() as f64 / 1024.0;

        let started = Instant::now();
        let interp = QueryEngine::new(ExecMode::Interpreted)
            .execute(&dataset, &top_sensors)
            .unwrap();
        let interp_ms = started.elapsed().as_secs_f64() * 1000.0;

        dataset.cache().store().reset_stats();
        let started = Instant::now();
        let compiled = QueryEngine::new(ExecMode::Compiled)
            .execute(&dataset, &top_sensors)
            .unwrap();
        let compiled_ms = started.elapsed().as_secs_f64() * 1000.0;
        let pages = dataset.io_stats().pages_read;

        assert_eq!(interp, compiled, "both engines must agree");
        println!(
            "{:<8} {:>12.1} {:>14.2} {:>14.2} {:>12}",
            layout.name(),
            size_kib,
            interp_ms,
            compiled_ms,
            pages
        );
    }

    println!("\n(the hottest sensor of the run is sensor_id {:?})",
        QueryEngine::new(ExecMode::Compiled)
            .execute(
                &{
                    let d = LsmDataset::new(DatasetConfig::new("sensors", LayoutKind::Amax));
                    for doc in docs.clone() {
                        d.insert(doc).unwrap();
                    }
                    d.flush().unwrap();
                    d
                },
                &top_sensors,
            )
            .unwrap()
            .first()
            .and_then(|r| r.group.clone())
    );
}
