//! Memory budget: one knob bounds memtables, page caches, and the shared
//! decoded-leaf cache — and a warm re-scan reads zero pages.
//!
//! ```text
//! cargo run --release --example memory_budget
//! ```
//!
//! `DatasetOptions::memory_budget(bytes)` splits one budget across the
//! dataset's memory consumers: **half** funds a decoded-leaf cache shared by
//! every shard (leaves decoded once are served to later scans and point
//! reads without touching a page), a **quarter** funds the page buffer
//! caches, and a **quarter** funds the memtables. The per-shard slice is
//! persisted in durable manifests, so a reopened dataset keeps the same
//! caching behaviour. `EXPLAIN` shows the planner's cache-residency
//! discount; `EXPLAIN ANALYZE` reports the exact hits and misses.

use lsm_columnar::docstore::{Datastore, DatasetOptions, Layout};
use lsm_columnar::query::{ExecMode, Expr, Query};
use lsm_columnar::{doc, Value};

fn main() {
    let mut store = Datastore::new();
    store
        .create_dataset(
            "events",
            DatasetOptions::new(Layout::Amax)
                .key("id")
                .page_size(8 * 1024)
                .shards(2)
                // 16 MiB total: 8 MiB shared leaf cache, 4 MiB page
                // caches, 4 MiB memtables (each split across the shards).
                .memory_budget(16 << 20),
        )
        .expect("create dataset");

    let docs: Vec<Value> = (0..2_000i64)
        .map(|i| doc!({"id": i, "severity": (i % 7), "service": (format!("svc-{}", i % 13))}))
        .collect();
    store.ingest_all("events", docs).expect("ingest");
    store.flush("events").expect("flush");

    let ds = store.dataset("events").expect("dataset");
    let cache = ds.leaf_cache().expect("a budget configures the shared cache");
    println!("leaf-cache capacity: {} KiB\n", cache.capacity_bytes() >> 10);

    // Cold scan: every leaf is decoded from pages and cached.
    let q = Query::count_star().with_filter(Expr::ge("severity", 0));
    let cold = ds.explain_analyze(&q, ExecMode::Compiled).expect("cold run");
    println!(
        "cold : {} rows, {} pages read, cache {} hits / {} misses",
        cold.rows[0].agg(),
        cold.pages_read(),
        cold.cache_hits(),
        cold.cache_misses(),
    );

    // Warm re-scan: every leaf is served from the cache — zero page reads,
    // hits equal to the leaves the cold scan decoded.
    let warm = ds.explain_analyze(&q, ExecMode::Compiled).expect("warm run");
    println!(
        "warm : {} rows, {} pages read, cache {} hits / {} misses",
        warm.rows[0].agg(),
        warm.pages_read(),
        warm.cache_hits(),
        warm.cache_misses(),
    );
    assert_eq!(warm.pages_read(), 0);
    assert_eq!(warm.cache_hits(), cold.cache_misses());

    // The planner sees the resident leaves and discounts the scan cost.
    let plan = ds.explain(&q).expect("explain");
    println!("\n{plan}");

    // The cache's residency and traffic also surface in the metrics
    // snapshot: per-shard cache.* counters plus one set of global gauges.
    let stats = cache.stats();
    println!(
        "cache stats: {} leaves / {} KiB resident (budget {} KiB), {} hits, {} misses, {} evictions",
        stats.resident_leaves,
        stats.resident_bytes >> 10,
        stats.capacity_bytes >> 10,
        stats.hits,
        stats.misses,
        stats.evictions,
    );
}
