//! Metrics tour: the telemetry subsystem end to end — metrics snapshots,
//! health, lifecycle events, and EXPLAIN ANALYZE.
//!
//! ```text
//! cargo run --release --example metrics_tour
//! ```

use lsm_columnar::docstore::{Datastore, DatasetOptions, Layout};
use lsm_columnar::query::{ExecMode, Expr, Query};
use lsm_columnar::{doc, Value};

fn main() {
    let mut store = Datastore::new();
    store
        .create_dataset(
            "events",
            DatasetOptions::new(Layout::Amax)
                .key("id")
                .memtable_budget(32 * 1024)
                .page_size(8 * 1024)
                .shards(2),
        )
        .expect("create dataset");

    for i in 0..500i64 {
        store
            .ingest(
                "events",
                doc!({
                    "id": i,
                    "kind": (format!("k{}", i % 4)),
                    "size": (i % 100),
                    "note": (format!("event number {i} with some payload text"))
                }),
            )
            .expect("ingest");
    }
    store.flush("events").expect("flush");
    store.delete("events", Value::Int(13)).expect("delete");
    store.compact("events").expect("compact");

    // -- Metrics snapshot ---------------------------------------------------
    // Counters and histograms from the registry, sampled storage.* I/O
    // counters, current-state gauges (lsm.*, wal.*) and the derived
    // amplification gauges — merged across both shards.
    let metrics = store.metrics("events").expect("metrics");
    println!("== metrics (text) ==\n{}", metrics.to_text());

    // Individual values are addressable by name; the amp gauges are always
    // recomputable from the raw counters in the same snapshot.
    println!(
        "flushed {} times, write amplification {:.2}x",
        metrics.counter("flush.count"),
        metrics.gauge("amp.write").unwrap_or(f64::NAN),
    );
    let p95 = metrics
        .histogram("flush.duration_micros")
        .map(|h| h.p95())
        .unwrap_or(0);
    println!("flush p95 <= {p95}us");

    // The same snapshot exports as JSON for scraping.
    println!("\n== metrics (json, truncated) ==");
    let json = metrics.to_json();
    println!("{}...", &json[..json.len().min(200)]);

    // -- Health -------------------------------------------------------------
    // Per-shard worker state, last background error, pending maintenance.
    println!("\n== health ==");
    for (dataset, shards) in store.health() {
        for (i, h) in shards.iter().enumerate() {
            println!(
                "{dataset}/shard{i}: worker {:?}, pending {}, stalls {}, last error {:?}",
                h.worker, h.pending_maintenance, h.stalls, h.last_error
            );
        }
    }

    // -- Lifecycle events ---------------------------------------------------
    // The bounded in-memory flight recorder: flushes, merges, WAL and
    // manifest activity, recovery summaries, worker errors.
    println!("\n== recent events ==");
    let sharded = store.dataset("events").expect("dataset");
    for (shard, event) in sharded.recent_events(8) {
        println!("shard{shard} #{:<3} {}", event.seq, event.kind.describe());
    }

    // -- EXPLAIN ANALYZE ----------------------------------------------------
    // Runs the query for real and annotates the plan with actual counters:
    // rows pulled, pages read (I/O deltas), components pruned vs scanned,
    // and the early-termination point of limited queries.
    let q = Query::select_paths(["kind", "size"])
        .with_filter(Expr::ge("size", 10))
        .order_by_key()
        .with_limit(5);
    let report = store
        .explain_analyze("events", &q, ExecMode::Compiled)
        .expect("explain analyze");
    println!("\n== explain analyze ==\n{}", report.describe());
    println!("result rows: {}", report.rows.len());
}
