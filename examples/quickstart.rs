//! Quickstart: create a dataset, ingest schemaless JSON, query it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsm_columnar::docstore::{Datastore, DatasetOptions, Layout};
use lsm_columnar::query::{Aggregate, ExecMode, Expr, Query};
use lsm_columnar::{Path, Value};

fn main() {
    let mut store = Datastore::new();
    store
        .create_dataset("gamers", DatasetOptions::new(Layout::Amax).key("id"))
        .expect("create dataset");

    // The four records of the paper's Figure 4a — schemaless, nested,
    // with missing fields.
    let feed = r#"
        {"id": 0, "games": [{"title": "NFL"}]}
        {"id": 1, "name": {"last": "Brown"},
         "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]}
        {"id": 2, "name": {"first": "John", "last": "Smith"},
         "games": [{"title": "NBA", "consoles": ["PS4", "PC"]},
                   {"title": "NFL", "consoles": ["XBOX"]}]}
        {"id": 3}
    "#;
    let ingested = store.ingest_json("gamers", feed).expect("ingest");
    store.flush("gamers").expect("flush");
    println!("ingested {ingested} records");

    // The schema was inferred during the flush (tuple compactor).
    println!("\ninferred schema:\n{}", store.describe_schema("gamers").unwrap());

    // COUNT(*) — on AMAX this reads only Page 0 of each mega leaf.
    let count = store
        .query("gamers", &Query::count_star(), ExecMode::Compiled)
        .unwrap();
    println!("COUNT(*) = {}", count[0].agg());

    // The paper's Figure 11 query: titles of owned games with their counts.
    let per_title = store
        .query(
            "gamers",
            &Query::count_star()
                .with_unnest("games")
                .group_by_element("title")
                .top_k(10),
            ExecMode::Compiled,
        )
        .unwrap();
    println!("\ngames per title:");
    for row in &per_title {
        println!("  {:>6} -> {}", row.group.clone().unwrap_or(Value::Null), row.agg());
    }

    // Point lookup by primary key.
    let rec = store.get("gamers", &Value::Int(2)).unwrap().unwrap();
    println!("\nrecord 2: {rec}");

    // A compositional multi-aggregate query: per last name, how many
    // records and how many games, for gamers that own any game at all.
    let q = Query::select([Aggregate::Count, Aggregate::CountNonNull(Path::parse("games"))])
        .with_filter(Expr::exists("games"))
        .group_by("name.last")
        .top_k(3);
    println!("\nplan:\n{}", store.explain("gamers", &q).unwrap());
    let per_name = store.query("gamers", &q, ExecMode::Interpreted).unwrap();
    println!("records / games per last name: {per_name:?}");
}
