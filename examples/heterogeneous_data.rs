//! Heterogeneous (union-typed) data: the paper's §3.2.2 scenario.
//!
//! Ingests records whose fields change type between records (a string `name`
//! vs an object `name`; array elements that are strings or nested arrays),
//! shows the inferred schema with its union nodes, and queries across both
//! alternatives — the capability that plain Parquet/Dremel lacks.
//!
//! ```text
//! cargo run --release --example heterogeneous_data
//! ```

use lsm_columnar::docstore::{Datastore, DatasetOptions, Layout};
use lsm_columnar::query::{ExecMode, Query};
use lsm_columnar::{Path, Value};

fn main() {
    let mut store = Datastore::new();
    store
        .create_dataset("mixed", DatasetOptions::new(Layout::Apax).key("id"))
        .unwrap();

    // The two records of the paper's Figure 6, plus a few more variants.
    let feed = r#"
        {"id": 1, "name": "John", "games": ["NBA", ["FIFA", "PES"], "NFL"]}
        {"id": 2, "name": {"first": "Ann", "last": "Brown"}, "games": ["NFL", "NBA"]}
        {"id": 3, "name": {"first": "Lee"}, "games": [["Chess"]]}
        {"id": 4, "age": 25}
        {"id": 5, "age": "old"}
    "#;
    store.ingest_json("mixed", feed).unwrap();
    store.flush("mixed").unwrap();

    println!("inferred schema (note the union nodes):\n");
    println!("{}", store.describe_schema("mixed").unwrap());

    // Accessing name.last only needs column 3 of Figure 7: records where the
    // name is a plain string simply contribute nothing.
    let by_last = store
        .query(
            "mixed",
            &Query::count_star().group_by(Path::parse("name.last")).top_k(5),
            ExecMode::Compiled,
        )
        .unwrap();
    println!("records per name.last: {by_last:?}");

    // Records where age is an integer vs. a string coexist.
    for id in 1..=5i64 {
        if let Some(doc) = store.get("mixed", &Value::Int(id)).unwrap() {
            println!("record {id}: {doc}");
        }
    }

    // Full-record assembly restores the heterogeneous games array, including
    // the nested-array alternative of the union.
    let rec = store.get("mixed", &Value::Int(1)).unwrap().unwrap();
    let games = rec.get_field("games").unwrap();
    println!("\nrecord 1 games (mixed strings and arrays): {games}");
    assert_eq!(games.as_array().unwrap().len(), 3);
}
