//! Server quickstart: the RESP network front-end end to end — start a
//! server in-process, speak the wire protocol with the blocking client,
//! and drain it gracefully.
//!
//! ```text
//! cargo run --release --example server_quickstart
//! ```
//!
//! The standalone binary does the same behind flags:
//! `cargo run --release -p server --bin server -- --addr 127.0.0.1:6399`.

use lsm_columnar::server::{RespClient, Server, ServerConfig};

fn main() {
    // Port 0 picks a free port; `durability_dir: None` serves an in-memory
    // store (pass `Some(dir)` for a WAL-backed one that survives restarts).
    let handle = Server::start(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    println!("serving on {}", handle.addr());

    let mut client = RespClient::connect(handle.addr()).expect("connect");

    // Point writes and lookups. Documents are JSON objects; the server
    // stamps the primary key into the dataset's key field ("id").
    client.set("1", r#"{"name": "ada", "score": 92}"#).expect("SET");
    client.set("2", r#"{"name": "grace", "score": 97}"#).expect("SET");
    let hit = client.get("2").expect("GET");
    println!("GET 2      -> {}", hit.as_text().expect("hit"));
    let miss = client.get("42").expect("GET");
    println!("GET 42     -> {:?} (miss)", miss.as_text());

    // MSET is group-committed batch ingest: one reply acknowledges the
    // whole durable batch.
    let pairs: Vec<(String, String)> = (3..100i64)
        .map(|i| (i.to_string(), format!(r#"{{"name": "user{i}", "score": {}}}"#, i % 50)))
        .collect();
    let borrowed: Vec<(&str, &str)> =
        pairs.iter().map(|(k, d)| (k.as_str(), d.as_str())).collect();
    let acked = client.mset(&borrowed).expect("MSET");
    println!("MSET       -> {} records acknowledged", acked.as_integer().expect("count"));

    // Chunked key-ordered scan: 25 documents per round trip. Between
    // chunks the server re-pins fresh snapshots, so a slow client never
    // pins retired components.
    let all = client.scan_all(25).expect("SCAN");
    println!("SCAN       -> {} documents, first key {}", all.len(), all[0].0);

    // Analytical query over the same wire: the JSON spec maps onto the
    // engine's planner (filter + aggregate select list + group-by).
    let rows = client
        .query(
            r#"{"select": [{"agg": "count"}, {"agg": "avg", "path": "score"}],
                "filter": {"ge": {"path": "score", "value": 10}}}"#,
        )
        .expect("QUERY");
    for row in rows.as_array().expect("rows") {
        println!("QUERY      -> {}", row.as_text().expect("row"));
    }

    // Observability over the wire: merged engine + server.* metrics.
    let metrics = client.metrics("TEXT").expect("METRICS");
    let report = metrics.as_text().expect("text");
    for line in report.lines().filter(|l| l.starts_with("server.")).take(5) {
        println!("METRICS    -> {line}");
    }
    let health = client.health().expect("HEALTH");
    println!("HEALTH     -> {}", health.as_text().expect("text").lines().next().unwrap());

    // Graceful drain: stop accepting, finish in-flight pipelines, sync the
    // store, join the workers.
    client.shutdown().expect("SHUTDOWN");
    handle.join();
    println!("server drained and stopped");
}
