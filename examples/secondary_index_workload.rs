//! The update-intensive secondary-index workload of §6.3.2 / §6.4.5.
//!
//! Ingests the synthetic `tweet_2` dataset with a timestamp secondary index
//! and a primary-key index, applies a 50% uniform update stream, and then
//! answers range COUNT queries at several selectivities both through the
//! index (sorted batched point lookups) and by scanning.
//!
//! ```text
//! cargo run --release --example secondary_index_workload
//! ```

use std::time::Instant;

use lsm_columnar::datagen::{generate, generate_updates, DatasetKind, DatasetSpec};
use lsm_columnar::lsm::{DatasetConfig, LsmDataset};
use lsm_columnar::query::{AccessPathChoice, ExecMode, Expr, PlannerOptions, Query, QueryEngine};
use lsm_columnar::storage::LayoutKind;
use lsm_columnar::Path;

fn main() {
    let records = 3_000;
    let spec = DatasetSpec::new(DatasetKind::Tweet2, records);
    let docs = generate(&spec);
    let updates = generate_updates(&spec, 0.5);
    let base_ts = 1_450_000_000_000i64;

    for layout in [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax] {
        let dataset = LsmDataset::new(
            DatasetConfig::new("tweet_2", layout)
                .with_memtable_budget(256 * 1024)
                .with_page_size(32 * 1024)
                .with_secondary_index(Path::parse("timestamp")),
        );

        let started = Instant::now();
        for doc in docs.clone() {
            dataset.insert(doc).unwrap();
        }
        let insert_ms = started.elapsed().as_secs_f64() * 1000.0;

        let started = Instant::now();
        for doc in updates.clone() {
            dataset.insert(doc).unwrap();
        }
        dataset.flush().unwrap();
        let update_ms = started.elapsed().as_secs_f64() * 1000.0;

        println!(
            "\n[{}] insert {insert_ms:.1} ms, 50% updates {update_ms:.1} ms, \
             maintenance lookups {}, stored {:.1} KiB",
            layout.name(),
            dataset.stats().maintenance_lookups,
            dataset.total_stored_bytes() as f64 / 1024.0
        );

        // The same logical query runs both ways: one engine forced through
        // the timestamp index, one forced to scan. (The default engine
        // would pick between them with its cost model.)
        let probe = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceIndex),
        );
        let scan = QueryEngine::with_options(
            ExecMode::Compiled,
            PlannerOptions::with_access_path(AccessPathChoice::ForceScan),
        );
        for selectivity in [0.01, 0.1, 1.0] {
            let span = ((records as f64) * selectivity / 100.0).max(1.0) as i64;
            let query = Query::count_star().with_filter(Expr::between(
                "timestamp",
                base_ts,
                base_ts + span - 1,
            ));

            let started = Instant::now();
            let via_index = probe.execute(&dataset, &query).unwrap();
            let index_ms = started.elapsed().as_secs_f64() * 1000.0;

            let started = Instant::now();
            let via_scan = scan.execute(&dataset, &query).unwrap();
            let scan_ms = started.elapsed().as_secs_f64() * 1000.0;

            assert_eq!(via_index[0].agg(), via_scan[0].agg(), "index and scan must agree");
            println!(
                "  selectivity {selectivity:>5}%: count={:<6} index {index_ms:>7.2} ms | scan {scan_ms:>7.2} ms",
                via_index[0].agg()
            );
        }
    }
}
