//! Durable restart: ingest into a directory-backed dataset, "crash" (drop it
//! without flushing), and recover everything on reopen.
//!
//! ```text
//! cargo run --release --example durable_restart
//! ```
//!
//! The dataset directory holds three files managed by the `persist` crate:
//! `pages.dat` (file-backed component pages), `wal.log` (CRC-framed
//! write-ahead log) and `MANIFEST` (versioned component lineage + the
//! inferred schema). Acknowledged writes survive a restart whether or not
//! they were flushed: flushed records come back from components listed in
//! the manifest, unflushed ones from WAL replay.

use lsm_columnar::lsm::{DatasetConfig, LsmDataset};
use lsm_columnar::query::{ExecMode, Query, QueryEngine};
use lsm_columnar::storage::LayoutKind;
use lsm_columnar::{doc, Value};

fn main() {
    let dir = std::env::temp_dir().join(format!("durable-restart-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = || {
        DatasetConfig::new("sensor_log", LayoutKind::Amax)
            .with_memtable_budget(64 * 1024)
            .with_page_size(16 * 1024)
    };

    // --- Session 1: ingest, flush some, leave the tail in the WAL ---------
    println!("session 1: ingesting into {}", dir.display());
    {
        let ds = LsmDataset::open(&dir, config()).expect("open dataset directory");
        for i in 0..2_000i64 {
            ds.insert(doc!({
                "id": i,
                "sensor": (i % 25),
                "reading": {"temp": ((i % 400) as f64 / 10.0), "ok": (i % 7 != 0)},
                "ts": (1_700_000_000_000i64 + i)
            }))
            .expect("insert");
        }
        ds.flush().expect("flush");
        println!(
            "  flushed: {} components, manifest v{}, WAL {} bytes",
            ds.component_count(),
            ds.manifest_version(),
            ds.wal_bytes()
        );

        // More writes after the flush — these stay in the WAL only.
        for i in 2_000..2_500i64 {
            ds.insert(doc!({"id": i, "sensor": (i % 25), "late": true})).expect("insert");
        }
        ds.delete(Value::Int(0)).expect("delete");
        ds.delete(Value::Int(1_999)).expect("delete");
        ds.sync().expect("sync WAL");
        println!(
            "  unflushed tail: 500 inserts + 2 deletes in {} WAL bytes",
            ds.wal_bytes()
        );
        // The dataset is dropped here WITHOUT flushing — a "crash".
    }

    // --- Session 2: reopen from the directory alone -----------------------
    println!("session 2: recovering from {}", dir.display());
    let ds = LsmDataset::reopen(&dir).expect("reopen from manifest + WAL");
    let live = ds.count().expect("count");
    println!(
        "  recovered {live} live records ({} components, manifest v{})",
        ds.component_count(),
        ds.manifest_version()
    );
    assert_eq!(live, 2_498, "2500 inserts minus 2 deletes");
    assert!(ds.lookup(&Value::Int(0), None).expect("lookup").is_none());
    let late = ds.lookup(&Value::Int(2_100), None).expect("lookup").expect("recovered");
    assert_eq!(late.get_field("late"), Some(&Value::Bool(true)));

    // Queries run against the recovered dataset as if nothing happened.
    let per_sensor = QueryEngine::new(ExecMode::Compiled)
        .execute(&ds, &Query::count_star().group_by("sensor").top_k(3))
        .expect("query");
    println!("  top sensors by record count:");
    for row in per_sensor {
        println!("    sensor {:?}: {:?} records", row.group, row.agg());
    }

    // The schema inferred before the crash survived too.
    assert!(ds.schema().describe().contains("reading"));
    println!("  inferred schema intact ({} columns)", schema::columns_of(&ds.schema()).len());

    let _ = std::fs::remove_dir_all(&dir);
    println!("done: every acknowledged write survived the restart");
}
