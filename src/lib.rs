//! # lsm-columnar — reproduction facade
//!
//! Top-level crate of the workspace. It re-exports the public API of every
//! sub-crate so that the examples under `examples/` and the integration tests
//! under `tests/` can depend on a single crate, mirroring how a downstream
//! user would consume the project.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the system
//! inventory and the per-experiment index.

pub use columnar;
pub use datagen;
pub use docmodel;
pub use docstore;
pub use encoding;
pub use lsm;
pub use persist;
pub use query;
pub use schema;
pub use server;
pub use storage;
pub use telemetry;

pub use docmodel::{doc, parse_json, to_json, Path, Value};
