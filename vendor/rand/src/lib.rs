//! Minimal vendored stand-in for the subset of `rand` 0.8 this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer and float ranges, and `Rng::gen_bool`. The build environment has
//! no registry access, so the real crate cannot be fetched.
//!
//! The generator is a xoshiro256** seeded through splitmix64 — not
//! cryptographic, but statistically solid for synthetic data generation, and
//! deterministic given a seed (which is all `datagen` requires).

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// The standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Expand the seed with splitmix64, as rand does.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let w: u32 = rng.gen_range(1u32..=64);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let _: i64 = rng.gen_range(i64::MIN..i64::MAX);
            let _: u64 = rng.gen_range(0u64..u64::MAX);
        }
    }
}
