//! Test-runner configuration and the deterministic RNG behind strategies.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// When set (via the `PROPTEST_SEED` environment variable), run exactly
    /// one case with this seed — used to replay a reported failure.
    pub replay_seed: Option<u64>,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            replay_seed: std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok()),
        }
    }
}

/// Derive a per-test base seed from the test name, so runs are deterministic
/// and independent tests see independent streams.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Deterministic RNG handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    seed: u64,
    state: u64,
}

impl TestRng {
    /// Build from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { seed, state: seed }
    }

    /// The seed this generator started from (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_reported() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        assert_eq!(a.seed(), 5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.usize_inclusive(2, 5);
            assert!((2..=5).contains(&v));
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn name_seeds_differ() {
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("same"), seed_for("same"));
    }
}
