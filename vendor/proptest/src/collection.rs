//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_inclusive(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_bounds() {
        let mut rng = TestRng::from_seed(2);
        let ranged = vec(0i64..10, 2..5);
        let exact = vec(0i64..10, 3);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
            assert_eq!(exact.generate(&mut rng).len(), 3);
        }
    }
}
