//! `any::<T>()` — strategies for primitive types, with a bias toward the
//! edge values that most often expose bugs.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Full-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // 1-in-8 cases draw from the edge set; otherwise random bits.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX - 1];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        if rng.below(8) == 0 {
            const EDGES: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MAX,
                f64::MIN_POSITIVE,
            ];
            let pick = rng.below(EDGES.len() as u64 + 1) as usize;
            if pick == EDGES.len() {
                f64::NAN
            } else {
                EDGES[pick]
            }
        } else {
            // Arbitrary bit patterns cover subnormals, NaN payloads, etc.
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f64::arbitrary_value(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_cover_edges_and_bulk() {
        let mut rng = TestRng::from_seed(8);
        let s = any::<u64>();
        let values: Vec<u64> = (0..400).map(|_| s.generate(&mut rng)).collect();
        assert!(values.contains(&0));
        assert!(values.contains(&u64::MAX));
        assert!(values.iter().any(|v| !matches!(*v, 0 | 1 | u64::MAX)));
    }

    #[test]
    fn floats_include_specials() {
        let mut rng = TestRng::from_seed(9);
        let s = any::<f64>();
        let values: Vec<f64> = (0..600).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_nan()));
        assert!(values.iter().any(|v| v.is_infinite()));
        assert!(values.iter().any(|v| v.is_finite()));
    }
}
