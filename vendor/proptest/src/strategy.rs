//! The `Strategy` trait and the combinators the workspace's tests use.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates the leaves, and `recurse`
    /// wraps an inner strategy into one more level of structure. At each of
    /// the `depth` levels the generator chooses between stopping (the
    /// shallower strategy) and recursing, so generated values bottom out.
    ///
    /// The `_desired_size` and `_expected_branch_size` hints of the real
    /// proptest API are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let expanded = recurse(current.clone()).boxed();
            current = Union::new(vec![current, expanded]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy on an empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "strategy on an empty range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// ---------------------------------------------------------------------------
// String literals as regex-lite strategies.
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::from_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_map_union_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = Union::new(vec![
            Just(1i64).boxed(),
            (10i64..20).prop_map(|v| v * 10).boxed(),
        ]);
        let mut seen_just = false;
        let mut seen_range = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                1 => seen_just = true,
                v if (100..200).contains(&v) && v % 10 == 0 => seen_range = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen_just && seen_range);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_seed(4);
        let s = (0i64..5, 10u32..=12, "x{2,2}");
        for _ in 0..50 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((0..5).contains(&a));
            assert!((10..=12).contains(&b));
            assert_eq!(c, "xx");
        }
    }
}
