//! Minimal vendored stand-in for the subset of `proptest` this workspace
//! uses. The build environment has no registry access, so the real crate
//! cannot be fetched.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `pattern in strategy` parameters;
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and `boxed`;
//! * [`prop_oneof!`], [`strategy::Just`], [`arbitrary::any`], ranges and
//!   string-literal (regex-lite) strategies, tuple strategies, and
//!   [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! The one deliberate simplification: failing cases are *not shrunk*. The
//! runner reports the failing case's seed so a failure is reproducible (set
//! `PROPTEST_SEED` to replay), which preserves the tests' bug-finding role
//! without reimplementing proptest's shrinking machinery.

pub mod arbitrary;
pub mod collection;
pub mod string;
pub mod strategy;
pub mod test_runner;

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports, so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Declare property tests. Accepts an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( #[test] fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base_seed = $crate::test_runner::seed_for(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::from_seed(
                        base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let case_seed = rng.seed();
                    let run = || {
                        $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case} of {} failed (replay with PROPTEST_SEED={case_seed})",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Assert within a property (maps to `assert!`; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, String)> {
        (0i64..100, "[a-c]{1,4}")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_strings(v in 0usize..10, s in "[a-z]{2,5}", (n, t) in arb_pair()) {
            prop_assert!(v < 10);
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((0..100).contains(&n));
            prop_assert!(!t.is_empty() && t.len() <= 4);
        }

        #[test]
        fn oneof_maps_and_vectors(values in prop::collection::vec(prop_oneof![
            Just(-1i64),
            (0i64..10).prop_map(|v| v * 2),
        ], 0..8)) {
            prop_assert!(values.len() < 8);
            for v in values {
                prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
            }
        }

        #[test]
        fn recursive_strategies_bottom_out(v in (0i64..5).prop_map(Count::Leaf).boxed()
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Count::Node)
            }))
        {
            prop_assert!(v.depth() <= 4);
        }
    }

    #[derive(Debug, Clone)]
    enum Count {
        Leaf(#[allow(dead_code)] i64),
        Node(Vec<Count>),
    }

    impl Count {
        fn depth(&self) -> usize {
            match self {
                Count::Leaf(_) => 1,
                Count::Node(children) => {
                    1 + children.iter().map(Count::depth).max().unwrap_or(0)
                }
            }
        }
    }
}
