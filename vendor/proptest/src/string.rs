//! Regex-lite string generation for string-literal strategies.
//!
//! Supports the fragment of regex syntax the workspace's tests use: a
//! sequence of atoms, where an atom is a character class (`[a-z0-9 _\-é]`),
//! the "printable" category escape `\PC` (anything outside Unicode category
//! C, i.e. non-control), an escaped literal (`\#`), or a literal character —
//! each optionally followed by a `{n}` or `{m,n}` repetition.

use std::iter::Peekable;
use std::str::Chars;

use crate::test_runner::TestRng;

/// Inclusive codepoint ranges a character is drawn from.
type CharSet = Vec<(u32, u32)>;

/// Generate one string matching `pattern`.
pub fn from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let set: CharSet = match c {
            '[' => parse_class(pattern, &mut chars),
            '\\' => parse_escape(pattern, &mut chars),
            literal => vec![(literal as u32, literal as u32)],
        };
        let (lo, hi) = parse_quantifier(pattern, &mut chars);
        let len = rng.usize_inclusive(lo, hi);
        for _ in 0..len {
            out.push(sample_char(&set, rng));
        }
    }
    out
}

fn parse_escape(pattern: &str, chars: &mut Peekable<Chars>) -> CharSet {
    match chars.next() {
        Some('P') | Some('p') => {
            // Only the category used by the tests is supported: `\PC`
            // ("not a control character" — printable text).
            let category = chars.next();
            assert_eq!(
                category,
                Some('C'),
                "unsupported regex category in pattern {pattern:?}"
            );
            printable_ranges()
        }
        Some(escaped) => vec![(escaped as u32, escaped as u32)],
        None => panic!("dangling backslash in pattern {pattern:?}"),
    }
}

/// `\PC`: printable characters. ASCII is repeated to weight the set toward
/// the common case while still exercising multi-byte UTF-8.
fn printable_ranges() -> CharSet {
    vec![
        (0x20, 0x7E),
        (0x20, 0x7E),
        (0x20, 0x7E),
        (0xA1, 0x24F),   // Latin-1 supplement and extensions
        (0x391, 0x3C9),  // Greek
        (0x4E00, 0x4EFF) // CJK
    ]
}

fn parse_class(pattern: &str, chars: &mut Peekable<Chars>) -> CharSet {
    let mut out: CharSet = Vec::new();
    let mut pending: Option<char> = None;
    let flush = |pending: &mut Option<char>, out: &mut CharSet| {
        if let Some(p) = pending.take() {
            out.push((p as u32, p as u32));
        }
    };
    while let Some(c) = chars.next() {
        match c {
            ']' => {
                flush(&mut pending, &mut out);
                assert!(!out.is_empty(), "empty character class in {pattern:?}");
                return out;
            }
            '\\' => {
                flush(&mut pending, &mut out);
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling backslash in {pattern:?}"));
                pending = Some(escaped);
            }
            '-' => match pending.take() {
                // `a-z` range — unless `-` is last, then it is a literal.
                Some(lo) => match chars.peek() {
                    Some(']') | None => {
                        out.push((lo as u32, lo as u32));
                        pending = Some('-');
                    }
                    Some(_) => {
                        let mut hi = chars.next().unwrap();
                        if hi == '\\' {
                            hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling backslash in {pattern:?}"));
                        }
                        assert!(
                            lo as u32 <= hi as u32,
                            "inverted range {lo}-{hi} in {pattern:?}"
                        );
                        out.push((lo as u32, hi as u32));
                    }
                },
                None => pending = Some('-'),
            },
            literal => {
                flush(&mut pending, &mut out);
                pending = Some(literal);
            }
        }
    }
    panic!("unterminated character class in pattern {pattern:?}");
}

fn parse_quantifier(pattern: &str, chars: &mut Peekable<Chars>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo_text, hi_text) = match body.split_once(',') {
                Some((lo, hi)) => (lo.to_string(), hi.to_string()),
                None => (body.clone(), body.clone()),
            };
            let lo: usize = lo_text
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}"));
            let hi: usize = hi_text
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}"));
            assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
            return (lo, hi);
        }
        body.push(c);
    }
    panic!("unterminated repetition in pattern {pattern:?}");
}

fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
    let (lo, hi) = set[rng.below(set.len() as u64) as usize];
    let code = lo + rng.below((hi - lo + 1) as u64) as u32;
    char::from_u32(code).expect("character sets contain only valid codepoints")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(77)
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let mut rng = rng();
        for _ in 0..300 {
            let s = from_pattern("[a-zA-Z0-9 _\\-é世]{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric()
                        || c == ' '
                        || c == '_'
                        || c == '-'
                        || c == 'é'
                        || c == '世',
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn simple_classes() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = from_pattern("[a-e]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)));

            let t = from_pattern("[a-z#@ ]{0,32}", &mut rng);
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || "#@ ".contains(c)));
        }
    }

    #[test]
    fn printable_category() {
        let mut rng = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = from_pattern("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            for c in s.chars() {
                assert!(!c.is_control(), "control char generated: {c:?}");
                saw_non_ascii |= !c.is_ascii();
            }
        }
        assert!(saw_non_ascii, "\\PC should exercise multi-byte UTF-8");
    }

    #[test]
    fn literals_and_exact_repetition() {
        let mut rng = rng();
        assert_eq!(from_pattern("abc", &mut rng), "abc");
        assert_eq!(from_pattern("x{3}", &mut rng), "xxx");
        assert_eq!(from_pattern("\\[x\\]", &mut rng), "[x]");
    }
}
