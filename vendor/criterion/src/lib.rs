//! Minimal vendored stand-in for the subset of `criterion` this workspace
//! uses. The build environment has no registry access, so the real crate
//! cannot be fetched. This shim keeps the benchmark sources compiling and
//! produces simple wall-clock measurements (median of the collected samples)
//! instead of criterion's full statistical analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark context handed to the functions in a `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &id.to_string(),
            10,
            Duration::from_millis(500),
            Duration::from_millis(100),
            &mut f,
        );
        self
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for groups benchmarking one function over inputs).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Benchmark a closure parameterised by an input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility; nothing to flush here).
    pub fn finish(self) {}
}

/// How batched inputs are grouped (accepted for API compatibility; the shim
/// always runs one input per measurement).
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// One setup per measured routine call.
    #[default]
    PerIteration,
    /// Small batches (treated as PerIteration by the shim).
    SmallInput,
    /// Large batches (treated as PerIteration by the shim).
    LargeInput,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Time the closure repeatedly until the sample or time budget is hit.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let started = Instant::now();
        let t0 = Instant::now();
        std::hint::black_box(f());
        self.samples.push(t0.elapsed());
        while self.samples.len() < self.samples.capacity() && started.elapsed() < self.budget {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    /// Like [`Bencher::iter`], but with a per-iteration `setup` whose cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let started = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= self.samples.capacity() || started.elapsed() >= self.budget {
                return;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) {
    // Warm-up pass: same harness, results discarded.
    let mut warmup = Bencher {
        samples: Vec::with_capacity(1),
        budget: warm_up_time,
    };
    f(&mut warmup);

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        budget: measurement_time,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("bench {label:<60} median {median:>12.3?} ({} samples)", samples.len());
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 3, "warm-up plus samples should have run");
    }
}
