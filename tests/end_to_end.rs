//! Cross-crate integration tests: the full pipeline from JSON text through
//! schema inference, shredding, LSM storage in every layout, and both query
//! engines, checked for mutual consistency.

use lsm_columnar::datagen::{generate, generate_updates, DatasetKind, DatasetSpec};
use lsm_columnar::docstore::{Datastore, DatasetOptions, Layout};
use lsm_columnar::lsm::{DatasetConfig, LsmDataset};
use lsm_columnar::query::{Aggregate, ExecMode, Expr, Query, QueryEngine};
use lsm_columnar::storage::LayoutKind;
use lsm_columnar::{doc, Path, Value};

fn run(dataset: &LsmDataset, query: &Query, mode: ExecMode) -> Vec<lsm_columnar::query::QueryRow> {
    QueryEngine::new(mode).execute(dataset, query).unwrap()
}

fn build(kind: DatasetKind, layout: LayoutKind, records: usize, secondary: bool) -> LsmDataset {
    let docs = generate(&DatasetSpec::new(kind, records));
    let mut config = DatasetConfig::new(kind.name(), layout)
        .with_memtable_budget(128 * 1024)
        .with_page_size(16 * 1024);
    if secondary {
        config = config.with_secondary_index(Path::parse("timestamp"));
    }
    let dataset = LsmDataset::new(config);
    for doc in docs {
        dataset.insert(doc).unwrap();
    }
    dataset.flush().unwrap();
    dataset
}

#[test]
fn all_layouts_agree_on_every_paper_query() {
    // For each dataset and each of the paper's queries, all four layouts and
    // both execution engines must return identical results.
    for kind in [DatasetKind::Cell, DatasetKind::Sensors, DatasetKind::Wos] {
        let records = 600;
        let reference = build(kind, LayoutKind::Open, records, false);
        let others: Vec<LsmDataset> = [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax]
            .into_iter()
            .map(|layout| build(kind, layout, records, false))
            .collect();
        for (name, query) in bench::queries_for(kind) {
            let expected = run(&reference, &query, ExecMode::Compiled);
            let interpreted = run(&reference, &query, ExecMode::Interpreted);
            assert_eq!(expected, interpreted, "{kind:?} {name} interpreted vs compiled");
            for other in &others {
                let got = run(other, &query, ExecMode::Compiled);
                assert_eq!(
                    expected, got,
                    "{kind:?} {name}: {:?} disagrees with Open",
                    other.config().layout
                );
            }
        }
    }
}

#[test]
fn update_intensive_workload_stays_consistent() {
    let records = 800;
    let spec = DatasetSpec::new(DatasetKind::Tweet2, records);
    for layout in LayoutKind::ALL {
        let dataset = build(DatasetKind::Tweet2, layout, records, true);
        for doc in generate_updates(&spec, 0.5) {
            dataset.insert(doc).unwrap();
        }
        for key in [3i64, 99, 500] {
            dataset.delete(Value::Int(key)).unwrap();
        }
        dataset.compact_fully().unwrap();

        assert_eq!(dataset.count().unwrap(), records - 3, "{layout:?}");
        assert!(dataset.lookup(&Value::Int(99), None).unwrap().is_none());
        let doc = dataset.lookup(&Value::Int(100), None).unwrap().unwrap();
        assert_eq!(doc.get_field("id"), Some(&Value::Int(100)));

        // Secondary-index answers match scan-based answers after updates:
        // the same logical query is planner-routed through the index and
        // force-scanned with index routing disabled.
        let base_ts = 1_450_000_000_000i64;
        let q = Query::count_star()
            .with_filter(Expr::between("timestamp", base_ts, base_ts + 200));
        let probe = QueryEngine::with_options(
            ExecMode::Compiled,
            lsm_columnar::query::PlannerOptions::with_access_path(
                lsm_columnar::query::AccessPathChoice::ForceIndex,
            ),
        );
        assert!(probe
            .explain(&dataset, &q)
            .unwrap()
            .contains("secondary-index range probe"));
        let via_index = probe.execute(&dataset, &q).unwrap();
        let scan = QueryEngine::with_options(
            ExecMode::Compiled,
            lsm_columnar::query::PlannerOptions::with_access_path(
                lsm_columnar::query::AccessPathChoice::ForceScan,
            ),
        );
        let via_scan = scan.execute(&dataset, &q).unwrap();
        assert_eq!(via_index[0].agg(), via_scan[0].agg(), "{layout:?}");
        // The cost-based default picks one of the two and must agree.
        let auto = QueryEngine::new(ExecMode::Compiled).execute(&dataset, &q).unwrap();
        assert_eq!(auto[0].agg(), via_scan[0].agg(), "{layout:?}");
    }
}

#[test]
fn amax_count_star_reads_far_fewer_pages_than_row_scan() {
    let records = 2_000;
    let amax = build(DatasetKind::Tweet1, LayoutKind::Amax, records, false);
    let open = build(DatasetKind::Tweet1, LayoutKind::Open, records, false);

    amax.cache().clear();
    amax.cache().store().reset_stats();
    let count = run(&amax, &Query::count_star(), ExecMode::Compiled);
    assert_eq!(count[0].agg(), &Value::Int(records as i64));
    let amax_pages = amax.io_stats().pages_read;

    open.cache().clear();
    open.cache().store().reset_stats();
    let count = run(&open, &Query::count_star(), ExecMode::Compiled);
    assert_eq!(count[0].agg(), &Value::Int(records as i64));
    let open_pages = open.io_stats().pages_read;

    assert!(
        amax_pages * 3 < open_pages,
        "AMAX COUNT(*) should read far fewer pages ({amax_pages}) than Open ({open_pages})"
    );
}

#[test]
fn heterogeneous_wos_records_roundtrip_through_all_layouts() {
    let records = 300;
    for layout in LayoutKind::ALL {
        let dataset = build(DatasetKind::Wos, layout, records, false);
        let docs = dataset.scan(None).unwrap();
        assert_eq!(docs.len(), records);
        // The union-typed address field survives: some records have an
        // object, others an array of objects.
        let mut saw_object = false;
        let mut saw_array = false;
        for doc in &docs {
            let addr = doc
                .get_path_str("static_data.fullrecord_metadata.addresses.address_name")
                .expect("address_name present");
            match addr {
                Value::Array(_) => saw_array = true,
                Value::Object(_) => saw_object = true,
                other => panic!("unexpected address_name type: {other}"),
            }
        }
        assert!(saw_object && saw_array, "{layout:?} lost the union typing");
    }
}

#[test]
fn facade_end_to_end_with_json_feed() {
    let mut store = Datastore::new();
    store
        .create_dataset(
            "events",
            DatasetOptions::new(Layout::Amax)
                .key("id")
                .memtable_budget(64 * 1024)
                .page_size(16 * 1024),
        )
        .unwrap();
    let mut feed = String::new();
    for i in 0..500 {
        feed.push_str(&format!(
            "{{\"id\": {i}, \"kind\": \"k{}\", \"payload\": {{\"n\": {}}}}}\n",
            i % 7,
            i * 3
        ));
    }
    assert_eq!(store.ingest_json("events", &feed).unwrap(), 500);
    store.compact("events").unwrap();

    let rows = store
        .query(
            "events",
            &Query::select([Aggregate::Max(Path::parse("payload.n"))])
                .group_by("kind")
                .top_k(3),
            ExecMode::Compiled,
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].agg(), &Value::Int(499 * 3));
    assert!(store.stored_bytes("events").unwrap() > 0);
}

#[test]
fn sharded_end_to_end_with_reopen() {
    // Ingest across shards with background workers, answer a fan-out query,
    // reopen the whole sharded dataset from disk, and re-verify.
    let dir = std::env::temp_dir()
        .join(format!("e2e-sharded-{}", std::process::id()))
        .join("store");
    let _ = std::fs::remove_dir_all(&dir);
    let records = 600usize;
    let docs = generate(&DatasetSpec::new(DatasetKind::Cell, records));

    let expected_groups = {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "reference",
                DatasetOptions::new(Layout::Amax)
                    .key("id")
                    .memtable_budget(64 * 1024)
                    .page_size(16 * 1024),
            )
            .unwrap();
        store.ingest_all("reference", docs.clone()).unwrap();
        store.flush("reference").unwrap();
        store
            .query(
                "reference",
                &Query::select([Aggregate::Max(Path::parse("duration"))])
                    .group_by("caller")
                    .top_k(5),
                ExecMode::Compiled,
            )
            .unwrap()
    };

    {
        let mut store = Datastore::new();
        store
            .open_dataset(
                "calls",
                &dir,
                DatasetOptions::new(Layout::Amax)
                    .key("id")
                    .memtable_budget(64 * 1024)
                    .page_size(16 * 1024)
                    .shards(4)
                    .background(true),
            )
            .unwrap();
        // Parallel ingest: partitioned by primary key, one thread per shard.
        assert_eq!(store.ingest_parallel("calls", docs).unwrap(), records);
        store.flush("calls").unwrap();

        let sharded = store.dataset("calls").unwrap();
        assert_eq!(sharded.shard_count(), 4);
        for shard in sharded.shards() {
            assert!(shard.count().unwrap() > 0, "every shard owns records");
        }

        // Fan-out COUNT(*) and grouped top-k agree with the reference.
        let count = store
            .query("calls", &Query::count_star(), ExecMode::Compiled)
            .unwrap();
        assert_eq!(count[0].agg(), &Value::Int(records as i64));
        let groups = store
            .query(
                "calls",
                &Query::select([Aggregate::Max(Path::parse("duration"))])
                    .group_by("caller")
                    .top_k(5),
                ExecMode::Compiled,
            )
            .unwrap();
        assert_eq!(groups, expected_groups);
        // Dropped here: every shard must recover from its own directory.
    }

    let mut store = Datastore::new();
    store.reopen_dataset("calls", &dir).unwrap();
    assert_eq!(store.dataset("calls").unwrap().shard_count(), 4);
    let count = store
        .query("calls", &Query::count_star(), ExecMode::Compiled)
        .unwrap();
    assert_eq!(count[0].agg(), &Value::Int(records as i64));
    let groups = store
        .query(
            "calls",
            &Query::select([Aggregate::Max(Path::parse("duration"))])
                .group_by("caller")
                .top_k(5),
            ExecMode::Compiled,
        )
        .unwrap();
    assert_eq!(groups, expected_groups, "reopened shards must answer identically");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compositional_query_agrees_across_all_execution_paths() {
    // The acceptance query of the API redesign: filter
    // `And(Ge(score, 50), Exists(tags))`, group-by, and aggregates
    // `[COUNT(*), MAX(score), AVG(score)]` must return identical rows via
    // interpreted, compiled, sharded(4) and index-probe execution.
    let docs: Vec<Value> = (0..600i64)
        .map(|i| {
            let mut d = doc!({
                "id": i,
                "grp": (format!("g{}", i % 6)),
                "score": (i % 120),
            });
            if i % 3 != 0 {
                d.set_field("tags", doc!([(format!("t{}", i % 4))]));
            }
            d
        })
        .collect();

    let config = |name: &str| {
        DatasetConfig::new(name, LayoutKind::Amax)
            .with_memtable_budget(32 * 1024)
            .with_page_size(8 * 1024)
    };
    let reference = LsmDataset::new(config("reference"));
    let indexed = LsmDataset::new(config("indexed").with_secondary_index(Path::parse("score")));
    let shards: Vec<LsmDataset> = (0..4)
        .map(|i| LsmDataset::new(config(&format!("shard-{i}"))))
        .collect();
    for (i, d) in docs.iter().enumerate() {
        reference.insert(d.clone()).unwrap();
        indexed.insert(d.clone()).unwrap();
        shards[i % 4].insert(d.clone()).unwrap();
    }
    reference.flush().unwrap();
    indexed.flush().unwrap();
    for s in &shards {
        s.flush().unwrap();
    }

    let q = Query::select([
        Aggregate::Count,
        Aggregate::Max(Path::parse("score")),
        Aggregate::Avg(Path::parse("score")),
    ])
    .with_filter(Expr::and([Expr::ge("score", 50), Expr::exists("tags")]))
    .group_by("grp");

    let interpreted = QueryEngine::new(ExecMode::Interpreted)
        .execute(&reference, &q)
        .unwrap();
    let compiled = QueryEngine::new(ExecMode::Compiled)
        .execute(&reference, &q)
        .unwrap();
    let shard_refs: Vec<&LsmDataset> = shards.iter().collect();
    let sharded = QueryEngine::new(ExecMode::Compiled)
        .execute(&shard_refs[..], &q)
        .unwrap();
    let via_index = QueryEngine::new(ExecMode::Compiled)
        .execute(&indexed, &q)
        .unwrap();

    assert_eq!(interpreted, compiled);
    assert_eq!(compiled, sharded);
    assert_eq!(compiled, via_index);
    // Groups g0 and g3 hold only multiples of 3, which never carry tags.
    assert_eq!(compiled.len(), 4);
    for row in &compiled {
        assert_eq!(row.aggs.len(), 3);
        assert!(row.aggs[1].as_int().unwrap() >= 50);
    }

    // explain() shows the chosen access path and the pushed-down projection.
    let scan_plan = q
        .explain(&lsm_columnar::query::PlanContext::for_dataset(&reference))
        .unwrap();
    assert!(scan_plan.contains("full scan"), "{scan_plan}");
    assert!(scan_plan.contains("score, tags, grp"), "{scan_plan}");
    // `score >= 50` matches about half the records: the cost model keeps
    // the scan and says so with its estimate; forcing the index shows the
    // probe plan it decided against.
    let index_plan = q
        .explain(&lsm_columnar::query::PlanContext::for_dataset(&indexed))
        .unwrap();
    assert!(index_plan.contains("selectivity"), "{index_plan}");
    let forced_plan = QueryEngine::with_options(
        ExecMode::Compiled,
        lsm_columnar::query::PlannerOptions::with_access_path(
            lsm_columnar::query::AccessPathChoice::ForceIndex,
        ),
    )
    .explain(&indexed, &q)
    .unwrap();
    assert!(
        forced_plan.contains("secondary-index range probe on `score` over [50, +inf)"),
        "{forced_plan}"
    );
}
