//! Cross-crate integration tests: the full pipeline from JSON text through
//! schema inference, shredding, LSM storage in every layout, and both query
//! engines, checked for mutual consistency.

use lsm_columnar::datagen::{generate, generate_updates, DatasetKind, DatasetSpec};
use lsm_columnar::docstore::{Datastore, DatasetOptions, Layout};
use lsm_columnar::lsm::{DatasetConfig, LsmDataset};
use lsm_columnar::query::{run, run_with_secondary_index, Aggregate, ExecMode, Predicate, Query};
use lsm_columnar::storage::LayoutKind;
use lsm_columnar::{Path, Value};

fn build(kind: DatasetKind, layout: LayoutKind, records: usize, secondary: bool) -> LsmDataset {
    let docs = generate(&DatasetSpec::new(kind, records));
    let mut config = DatasetConfig::new(kind.name(), layout)
        .with_memtable_budget(128 * 1024)
        .with_page_size(16 * 1024);
    if secondary {
        config = config.with_secondary_index(Path::parse("timestamp"));
    }
    let dataset = LsmDataset::new(config);
    for doc in docs {
        dataset.insert(doc).unwrap();
    }
    dataset.flush().unwrap();
    dataset
}

#[test]
fn all_layouts_agree_on_every_paper_query() {
    // For each dataset and each of the paper's queries, all four layouts and
    // both execution engines must return identical results.
    for kind in [DatasetKind::Cell, DatasetKind::Sensors, DatasetKind::Wos] {
        let records = 600;
        let reference = build(kind, LayoutKind::Open, records, false);
        let others: Vec<LsmDataset> = [LayoutKind::Vb, LayoutKind::Apax, LayoutKind::Amax]
            .into_iter()
            .map(|layout| build(kind, layout, records, false))
            .collect();
        for (name, query) in bench::queries_for(kind) {
            let expected = run(&reference, &query, ExecMode::Compiled).unwrap();
            let interpreted = run(&reference, &query, ExecMode::Interpreted).unwrap();
            assert_eq!(expected, interpreted, "{kind:?} {name} interpreted vs compiled");
            for other in &others {
                let got = run(other, &query, ExecMode::Compiled).unwrap();
                assert_eq!(
                    expected, got,
                    "{kind:?} {name}: {:?} disagrees with Open",
                    other.config().layout
                );
            }
        }
    }
}

#[test]
fn update_intensive_workload_stays_consistent() {
    let records = 800;
    let spec = DatasetSpec::new(DatasetKind::Tweet2, records);
    for layout in LayoutKind::ALL {
        let dataset = build(DatasetKind::Tweet2, layout, records, true);
        for doc in generate_updates(&spec, 0.5) {
            dataset.insert(doc).unwrap();
        }
        for key in [3i64, 99, 500] {
            dataset.delete(Value::Int(key)).unwrap();
        }
        dataset.compact_fully().unwrap();

        assert_eq!(dataset.count().unwrap(), records - 3, "{layout:?}");
        assert!(dataset.lookup(&Value::Int(99), None).unwrap().is_none());
        let doc = dataset.lookup(&Value::Int(100), None).unwrap().unwrap();
        assert_eq!(doc.get_field("id"), Some(&Value::Int(100)));

        // Secondary-index answers match scan-based answers after updates.
        let base_ts = 1_450_000_000_000i64;
        let lo = Value::Int(base_ts);
        let hi = Value::Int(base_ts + 200);
        let via_index =
            run_with_secondary_index(&dataset, &lo, &hi, &Query::count_star()).unwrap();
        let via_scan = run(
            &dataset,
            &Query::count_star().with_filter(Predicate::Range {
                path: Path::parse("timestamp"),
                lo: lo.clone(),
                hi: hi.clone(),
            }),
            ExecMode::Compiled,
        )
        .unwrap();
        assert_eq!(via_index[0].agg, via_scan[0].agg, "{layout:?}");
    }
}

#[test]
fn amax_count_star_reads_far_fewer_pages_than_row_scan() {
    let records = 2_000;
    let amax = build(DatasetKind::Tweet1, LayoutKind::Amax, records, false);
    let open = build(DatasetKind::Tweet1, LayoutKind::Open, records, false);

    amax.cache().clear();
    amax.cache().store().reset_stats();
    let count = run(&amax, &Query::count_star(), ExecMode::Compiled).unwrap();
    assert_eq!(count[0].agg, Value::Int(records as i64));
    let amax_pages = amax.io_stats().pages_read;

    open.cache().clear();
    open.cache().store().reset_stats();
    let count = run(&open, &Query::count_star(), ExecMode::Compiled).unwrap();
    assert_eq!(count[0].agg, Value::Int(records as i64));
    let open_pages = open.io_stats().pages_read;

    assert!(
        amax_pages * 3 < open_pages,
        "AMAX COUNT(*) should read far fewer pages ({amax_pages}) than Open ({open_pages})"
    );
}

#[test]
fn heterogeneous_wos_records_roundtrip_through_all_layouts() {
    let records = 300;
    for layout in LayoutKind::ALL {
        let dataset = build(DatasetKind::Wos, layout, records, false);
        let docs = dataset.scan(None).unwrap();
        assert_eq!(docs.len(), records);
        // The union-typed address field survives: some records have an
        // object, others an array of objects.
        let mut saw_object = false;
        let mut saw_array = false;
        for doc in &docs {
            let addr = doc
                .get_path_str("static_data.fullrecord_metadata.addresses.address_name")
                .expect("address_name present");
            match addr {
                Value::Array(_) => saw_array = true,
                Value::Object(_) => saw_object = true,
                other => panic!("unexpected address_name type: {other}"),
            }
        }
        assert!(saw_object && saw_array, "{layout:?} lost the union typing");
    }
}

#[test]
fn facade_end_to_end_with_json_feed() {
    let mut store = Datastore::new();
    store
        .create_dataset(
            "events",
            DatasetOptions::new(Layout::Amax)
                .key("id")
                .memtable_budget(64 * 1024)
                .page_size(16 * 1024),
        )
        .unwrap();
    let mut feed = String::new();
    for i in 0..500 {
        feed.push_str(&format!(
            "{{\"id\": {i}, \"kind\": \"k{}\", \"payload\": {{\"n\": {}}}}}\n",
            i % 7,
            i * 3
        ));
    }
    assert_eq!(store.ingest_json("events", &feed).unwrap(), 500);
    store.compact("events").unwrap();

    let rows = store
        .query(
            "events",
            &Query::count_star()
                .group_by(Path::parse("kind"))
                .aggregate(Aggregate::Max(Path::parse("payload.n")))
                .top_k(3),
            ExecMode::Compiled,
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].agg, Value::Int(499 * 3));
    assert!(store.stored_bytes("events").unwrap() > 0);
}

#[test]
fn sharded_end_to_end_with_reopen() {
    // Ingest across shards with background workers, answer a fan-out query,
    // reopen the whole sharded dataset from disk, and re-verify.
    let dir = std::env::temp_dir()
        .join(format!("e2e-sharded-{}", std::process::id()))
        .join("store");
    let _ = std::fs::remove_dir_all(&dir);
    let records = 600usize;
    let docs = generate(&DatasetSpec::new(DatasetKind::Cell, records));

    let expected_groups = {
        let mut store = Datastore::new();
        store
            .create_dataset(
                "reference",
                DatasetOptions::new(Layout::Amax)
                    .key("id")
                    .memtable_budget(64 * 1024)
                    .page_size(16 * 1024),
            )
            .unwrap();
        store.ingest_all("reference", docs.clone()).unwrap();
        store.flush("reference").unwrap();
        store
            .query(
                "reference",
                &Query::count_star()
                    .group_by(Path::parse("caller"))
                    .aggregate(Aggregate::Max(Path::parse("duration")))
                    .top_k(5),
                ExecMode::Compiled,
            )
            .unwrap()
    };

    {
        let mut store = Datastore::new();
        store
            .open_dataset(
                "calls",
                &dir,
                DatasetOptions::new(Layout::Amax)
                    .key("id")
                    .memtable_budget(64 * 1024)
                    .page_size(16 * 1024)
                    .shards(4)
                    .background(true),
            )
            .unwrap();
        // Parallel ingest: partitioned by primary key, one thread per shard.
        assert_eq!(store.ingest_parallel("calls", docs).unwrap(), records);
        store.flush("calls").unwrap();

        let sharded = store.dataset("calls").unwrap();
        assert_eq!(sharded.shard_count(), 4);
        for shard in sharded.shards() {
            assert!(shard.count().unwrap() > 0, "every shard owns records");
        }

        // Fan-out COUNT(*) and grouped top-k agree with the reference.
        let count = store
            .query("calls", &Query::count_star(), ExecMode::Compiled)
            .unwrap();
        assert_eq!(count[0].agg, Value::Int(records as i64));
        let groups = store
            .query(
                "calls",
                &Query::count_star()
                    .group_by(Path::parse("caller"))
                    .aggregate(Aggregate::Max(Path::parse("duration")))
                    .top_k(5),
                ExecMode::Compiled,
            )
            .unwrap();
        assert_eq!(groups, expected_groups);
        // Dropped here: every shard must recover from its own directory.
    }

    let mut store = Datastore::new();
    store.reopen_dataset("calls", &dir).unwrap();
    assert_eq!(store.dataset("calls").unwrap().shard_count(), 4);
    let count = store
        .query("calls", &Query::count_star(), ExecMode::Compiled)
        .unwrap();
    assert_eq!(count[0].agg, Value::Int(records as i64));
    let groups = store
        .query(
            "calls",
            &Query::count_star()
                .group_by(Path::parse("caller"))
                .aggregate(Aggregate::Max(Path::parse("duration")))
                .top_k(5),
            ExecMode::Compiled,
        )
        .unwrap();
    assert_eq!(groups, expected_groups, "reopened shards must answer identically");
    let _ = std::fs::remove_dir_all(&dir);
}
